#include "graph/ch.h"

#include <algorithm>

#include "util/contracts.h"

namespace smn::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// ---------------------------------------------------------------------------
// Preprocessing. ChBuilder owns the mutable contraction state (the shrinking
// "core" graph, the lazy priority queue, witness-search scratch) and writes
// the finished hierarchy into the ContractionHierarchy it was handed.
// ---------------------------------------------------------------------------

class ChBuilder {
 public:
  ChBuilder(const Digraph& g, std::vector<double> metric, const ChOptions& options,
            ContractionHierarchy& out)
      : g_(g), options_(options), out_(out) {
    out_.options_ = options;
    out_.metric_ = std::move(metric);
    out_.arcs_.clear();
    out_.parallel_pool_.clear();
    out_.stats_ = ChStats{};
    out_.stats_.nodes = g.node_count();
    out_.stats_.fine_edges = g.edge_count();
  }

  void run() {
    const std::size_t n = g_.node_count();
    out_.rank_.assign(n, 0);
    seed_original_arcs();
    contracted_.assign(n, false);
    deleted_neighbors_.assign(n, 0);
    neighbor_mark_.assign(n, 0);
    fwd_lists_.assign(n, {});
    bwd_lists_.assign(n, {});
    wdist_.assign(n, kInf);
    wstamp_.assign(n, 0);
    whop_.assign(n, 0);

    for (NodeId node = 0; node < n; ++node) {
      pq_.push({priority(node), node});
    }
    std::uint32_t next_rank = 0;
    while (next_rank < n) {
      const auto [stale_priority, node] = pq_.pop();
      if (contracted_[node]) continue;
      const double fresh = priority(node);
      while (!pq_.empty() && contracted_[pq_.slots.front().second]) pq_.pop();
      if (!pq_.empty() && std::make_pair(fresh, node) > pq_.slots.front()) {
        pq_.push({fresh, node});
        continue;
      }
      contract(node, next_rank++);
    }
    finalize();
  }

 private:
  struct CoreEntry {
    NodeId node;
    std::uint32_t arc;
  };

  // One query arc per ordered node pair: parallel fine edges share an arc,
  // realized by the cheapest (lowest edge id on ties). The pool keeps every
  // parallel edge so customize()/failure repair can re-realize later.
  void seed_original_arcs() {
    const std::size_t n = g_.node_count();
    out_core_.assign(n, {});
    in_core_.assign(n, {});
    std::vector<std::pair<NodeId, EdgeId>> sorted;
    for (NodeId u = 0; u < n; ++u) {
      sorted.clear();
      for (const EdgeId e : g_.out_edges(u)) sorted.emplace_back(g_.edge(e).to, e);
      std::sort(sorted.begin(), sorted.end());
      std::size_t i = 0;
      while (i < sorted.size()) {
        ContractionHierarchy::Arc arc;
        arc.from = u;
        arc.to = sorted[i].first;
        arc.weight = kInf;
        arc.parallel_begin = static_cast<std::uint32_t>(out_.parallel_pool_.size());
        while (i < sorted.size() && sorted[i].first == arc.to) {
          const EdgeId e = sorted[i].second;
          out_.parallel_pool_.push_back(e);
          if (out_.metric_[e] < arc.weight) {
            arc.weight = out_.metric_[e];
            arc.fine_edge = e;
          }
          ++i;
        }
        arc.parallel_end = static_cast<std::uint32_t>(out_.parallel_pool_.size());
        const auto id = static_cast<std::uint32_t>(out_.arcs_.size());
        out_.arcs_.push_back(arc);
        out_core_[u].push_back({arc.to, id});
        in_core_[arc.to].push_back({u, id});
      }
    }
  }

  std::uint32_t find_core_arc(NodeId from, NodeId to) const {
    for (const CoreEntry& entry : out_core_[from]) {
      if (entry.node == to) return entry.arc;
    }
    return ContractionHierarchy::kNoArc;
  }

  // Bounded Dijkstra from `source` over the core graph, skipping
  // `excluded`, pruned at `cutoff`. Tentative labels are valid upper
  // bounds, so witness_label() may be read for unsettled nodes too.
  void witness_search(NodeId source, NodeId excluded, double cutoff) {
    ++out_.stats_.witness_searches;
    ++wgen_;
    wheap_.clear();
    wdist_[source] = 0.0;
    whop_[source] = 0;
    wstamp_[source] = wgen_;
    wheap_.push({0.0, source});
    std::size_t settled = 0;
    while (!wheap_.empty()) {
      const auto [d, u] = wheap_.pop();
      if (d > wdist_[u]) continue;
      if (d > cutoff) break;
      if (++settled > options_.witness_settled_limit) break;
      if (whop_[u] >= options_.witness_hop_limit) continue;
      for (const CoreEntry& entry : out_core_[u]) {
        if (entry.node == excluded || contracted_[entry.node]) continue;
        const double w = out_.arcs_[entry.arc].weight;
        if (w == kInf) continue;
        const double next = d + w;
        if (next > cutoff) continue;
        if (wstamp_[entry.node] != wgen_ || next < wdist_[entry.node]) {
          wstamp_[entry.node] = wgen_;
          wdist_[entry.node] = next;
          whop_[entry.node] = whop_[u] + 1;
          wheap_.push({next, entry.node});
        }
      }
    }
  }

  double witness_label(NodeId node) const {
    return wstamp_[node] == wgen_ ? wdist_[node] : kInf;
  }

  // Edge-difference heuristic: 2 * (shortcuts the contraction would add -
  // arcs it removes) + already-contracted neighbors, recomputed lazily.
  double priority(NodeId node) {
    const std::size_t removed = in_core_[node].size() + out_core_[node].size();
    std::size_t added = 0;
    for (const CoreEntry& in : in_core_[node]) {
      double cutoff = 0.0;
      bool any = false;
      for (const CoreEntry& out : out_core_[node]) {
        if (out.node == in.node) continue;
        any = true;
        cutoff = std::max(cutoff, out_.arcs_[in.arc].weight + out_.arcs_[out.arc].weight);
      }
      if (!any) continue;
      if (!options_.customizable) witness_search(in.node, node, cutoff);
      for (const CoreEntry& out : out_core_[node]) {
        if (out.node == in.node) continue;
        if (options_.customizable) {
          if (find_core_arc(in.node, out.node) == ContractionHierarchy::kNoArc) ++added;
          continue;
        }
        const double via = out_.arcs_[in.arc].weight + out_.arcs_[out.arc].weight;
        if (witness_label(out.node) > via) ++added;
      }
    }
    return 2.0 * (static_cast<double>(added) - static_cast<double>(removed)) +
           static_cast<double>(deleted_neighbors_[node]);
  }

  void contract(NodeId node, std::uint32_t rank) {
    out_.rank_[node] = rank;
    contracted_[node] = true;
    // Snapshot: the arcs incident to `node` right now are final — every
    // neighbor outranks it, so they form its upward adjacency.
    for (const CoreEntry& out : out_core_[node]) fwd_lists_[node].push_back(out.arc);
    for (const CoreEntry& in : in_core_[node]) bwd_lists_[node].push_back(in.arc);

    for (const CoreEntry& in : in_core_[node]) {
      double cutoff = 0.0;
      bool any = false;
      for (const CoreEntry& out : out_core_[node]) {
        if (out.node == in.node) continue;
        any = true;
        cutoff = std::max(cutoff, out_.arcs_[in.arc].weight + out_.arcs_[out.arc].weight);
      }
      if (!any) continue;
      if (!options_.customizable) witness_search(in.node, node, cutoff);
      for (const CoreEntry& out : out_core_[node]) {
        if (out.node == in.node) continue;
        const double via = out_.arcs_[in.arc].weight + out_.arcs_[out.arc].weight;
        const std::uint32_t existing = find_core_arc(in.node, out.node);
        if (options_.customizable) {
          // Structure-only fill-in; weights come from customize().
          if (existing != ContractionHierarchy::kNoArc) continue;
        } else {
          if (witness_label(out.node) <= via) {
            ++out_.stats_.witness_pruned;
            continue;
          }
          if (existing != ContractionHierarchy::kNoArc &&
              out_.arcs_[existing].weight <= via) {
            ++out_.stats_.witness_pruned;
            continue;
          }
        }
        ContractionHierarchy::Arc arc;
        arc.from = in.node;
        arc.to = out.node;
        arc.weight = via;
        arc.child_down = in.arc;
        arc.child_up = out.arc;
        const auto id = static_cast<std::uint32_t>(out_.arcs_.size());
        out_.arcs_.push_back(arc);
        if (existing != ContractionHierarchy::kNoArc) {
          replace_core_arc(in.node, out.node, id);
        } else {
          out_core_[in.node].push_back({out.node, id});
          in_core_[out.node].push_back({in.node, id});
        }
      }
    }

    // Detach `node` from the core and credit its neighbors' depth terms.
    ++mark_epoch_;
    for (const CoreEntry& in : in_core_[node]) {
      std::erase_if(out_core_[in.node],
                    [node](const CoreEntry& e) { return e.node == node; });
      if (neighbor_mark_[in.node] != mark_epoch_) {
        neighbor_mark_[in.node] = mark_epoch_;
        ++deleted_neighbors_[in.node];
      }
    }
    for (const CoreEntry& out : out_core_[node]) {
      std::erase_if(in_core_[out.node],
                    [node](const CoreEntry& e) { return e.node == node; });
      if (neighbor_mark_[out.node] != mark_epoch_) {
        neighbor_mark_[out.node] = mark_epoch_;
        ++deleted_neighbors_[out.node];
      }
    }
    in_core_[node].clear();
    out_core_[node].clear();
  }

  void replace_core_arc(NodeId from, NodeId to, std::uint32_t arc) {
    for (CoreEntry& entry : out_core_[from]) {
      if (entry.node == to) entry.arc = arc;
    }
    for (CoreEntry& entry : in_core_[to]) {
      if (entry.node == from) entry.arc = arc;
    }
  }

  void finalize() {
    const std::size_t n = g_.node_count();
    out_.fwd_offset_.assign(n + 1, 0);
    out_.bwd_offset_.assign(n + 1, 0);
    for (NodeId u = 0; u < n; ++u) {
      out_.fwd_offset_[u + 1] = out_.fwd_offset_[u] + fwd_lists_[u].size();
      out_.bwd_offset_[u + 1] = out_.bwd_offset_[u] + bwd_lists_[u].size();
    }
    out_.fwd_arcs_.clear();
    out_.fwd_arcs_.reserve(out_.fwd_offset_[n]);
    out_.bwd_arcs_.clear();
    out_.bwd_arcs_.reserve(out_.bwd_offset_[n]);
    for (NodeId u = 0; u < n; ++u) {
      out_.fwd_arcs_.insert(out_.fwd_arcs_.end(), fwd_lists_[u].begin(), fwd_lists_[u].end());
      out_.bwd_arcs_.insert(out_.bwd_arcs_.end(), bwd_lists_[u].begin(), bwd_lists_[u].end());
    }
    out_.stats_.arcs = out_.fwd_arcs_.size() + out_.bwd_arcs_.size();
    std::size_t shortcuts = 0;
    for (const std::uint32_t id : out_.fwd_arcs_) {
      if (out_.arcs_[id].is_shortcut()) ++shortcuts;
    }
    for (const std::uint32_t id : out_.bwd_arcs_) {
      if (out_.arcs_[id].is_shortcut()) ++shortcuts;
    }
    out_.stats_.shortcuts = shortcuts;
    if (options_.customizable) {
      const std::vector<double> metric = out_.metric_;
      out_.customize(metric);
    } else {
      out_.build_coverage_index();
    }
  }

  const Digraph& g_;
  const ChOptions options_;
  ContractionHierarchy& out_;
  std::vector<std::vector<CoreEntry>> out_core_;
  std::vector<std::vector<CoreEntry>> in_core_;
  std::vector<bool> contracted_;
  std::vector<int> deleted_neighbors_;
  std::vector<std::uint32_t> neighbor_mark_;
  std::uint32_t mark_epoch_ = 0;
  std::vector<std::vector<std::uint32_t>> fwd_lists_;
  std::vector<std::vector<std::uint32_t>> bwd_lists_;
  detail::ChHeap pq_;
  detail::ChHeap wheap_;
  std::vector<double> wdist_;
  std::vector<std::uint32_t> wstamp_;
  std::vector<std::uint32_t> whop_;
  std::uint32_t wgen_ = 0;
};

void ContractionHierarchy::build(const Digraph& g, const ChOptions& options) {
  std::vector<double> metric(g.edge_count(), 0.0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) metric[e] = g.edge(e).weight;
  build(g, metric, options);
}

void ContractionHierarchy::build(const Digraph& g, const std::vector<double>& edge_length,
                                 const ChOptions& options) {
  SMN_CHECK(edge_length.size() == g.edge_count(),
            "ch build metric must cover every fine edge");
  ChBuilder builder(g, edge_length, options, *this);
  builder.run();
}

void ContractionHierarchy::customize(const std::vector<double>& edge_length) {
  SMN_CHECK(built(), "customize requires a built hierarchy");
  SMN_CHECK(options_.customizable, "customize requires ChOptions::customizable");
  SMN_CHECK(edge_length.size() == metric_.size(),
            "customize metric must cover every fine edge");
  metric_ = edge_length;
  // Pass 1: base weights from surviving parallel fine edges; fill-in arcs
  // start unreachable until a lower triangle realizes them.
  for (Arc& arc : arcs_) {
    arc.weight = kInf;
    arc.fine_edge = kInvalidEdge;
    if (arc.is_shortcut()) continue;
    for (std::uint32_t i = arc.parallel_begin; i < arc.parallel_end; ++i) {
      const EdgeId e = parallel_pool_[i];
      if (metric_[e] < arc.weight) {
        arc.weight = metric_[e];
        arc.fine_edge = e;
      }
    }
  }
  // Pass 2: ascending-rank lower-triangle relaxation. When node x is
  // processed, every arc incident to x from above is final, so each arc
  // (z -> y) over x converges to the exact distance restricted to interior
  // nodes ranked below both endpoints — the CCH customization invariant.
  const std::size_t n = rank_.size();
  if (order_.size() != n) {
    order_.assign(n, 0);
    for (NodeId node = 0; node < n; ++node) order_[rank_[node]] = node;
  }
  for (std::size_t pos = 0; pos < n; ++pos) {
    const NodeId x = order_[pos];
    for (const std::uint32_t down_id : backward_up(x)) {
      const Arc& down = arcs_[down_id];  // z -> x
      if (down.weight == kInf) continue;
      for (const std::uint32_t up_id : forward_up(x)) {
        const Arc& up = arcs_[up_id];  // x -> y
        if (up.weight == kInf) continue;
        if (down.from == up.to) continue;
        const double via = down.weight + up.weight;
        const std::uint32_t target = find_arc(down.from, up.to);
        SMN_DCHECK(target != kNoArc, "customizable fill-in is missing a triangle arc");
        if (target == kNoArc) continue;
        Arc& t = arcs_[target];
        if (via < t.weight) {
          t.weight = via;
          t.fine_edge = kInvalidEdge;
          t.child_down = down_id;
          t.child_up = up_id;
        }
      }
    }
  }
}

std::uint32_t ContractionHierarchy::find_arc(NodeId from, NodeId to) const {
  if (rank_[from] < rank_[to]) {
    for (const std::uint32_t id : forward_up(from)) {
      if (arcs_[id].to == to) return id;
    }
  } else {
    for (const std::uint32_t id : backward_up(to)) {
      if (arcs_[id].from == from) return id;
    }
  }
  return kNoArc;
}

void ContractionHierarchy::append_unpacked(std::uint32_t arc_id, std::vector<EdgeId>& out,
                                           std::vector<std::uint32_t>& stack) const {
  stack.clear();
  stack.push_back(arc_id);
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    const Arc& arc = arcs_[id];
    if (arc.fine_edge != kInvalidEdge) {
      out.push_back(arc.fine_edge);
      continue;
    }
    SMN_DCHECK(arc.child_down != kNoArc && arc.child_up != kNoArc,
               "unrealized arc on an unpacked path");
    stack.push_back(arc.child_up);
    stack.push_back(arc.child_down);
  }
}

void ContractionHierarchy::build_coverage_index() {
  const std::size_t edges = metric_.size();
  cover_offset_.assign(edges + 1, 0);
  std::vector<EdgeId> expansion;
  std::vector<std::uint32_t> stack;
  std::vector<std::uint32_t> query_arcs;
  query_arcs.reserve(fwd_arcs_.size() + bwd_arcs_.size());
  query_arcs.insert(query_arcs.end(), fwd_arcs_.begin(), fwd_arcs_.end());
  query_arcs.insert(query_arcs.end(), bwd_arcs_.begin(), bwd_arcs_.end());
  for (const std::uint32_t id : query_arcs) {
    if (arcs_[id].weight == kInf) continue;
    expansion.clear();
    append_unpacked(id, expansion, stack);
    for (const EdgeId e : expansion) ++cover_offset_[e + 1];
  }
  for (std::size_t e = 0; e < edges; ++e) cover_offset_[e + 1] += cover_offset_[e];
  cover_arcs_.assign(cover_offset_[edges], 0);
  std::vector<std::size_t> cursor(cover_offset_.begin(), cover_offset_.end() - 1);
  for (const std::uint32_t id : query_arcs) {
    if (arcs_[id].weight == kInf) continue;
    expansion.clear();
    append_unpacked(id, expansion, stack);
    for (const EdgeId e : expansion) cover_arcs_[cursor[e]++] = id;
  }
}

// ---------------------------------------------------------------------------
// Queries.
// ---------------------------------------------------------------------------

ChSearch::ChSearch(const ContractionHierarchy& ch) : ch_(&ch) {
  const std::size_t n = ch.node_count();
  dist_f_.assign(n, kInf);
  dist_b_.assign(n, kInf);
  parent_f_.assign(n, ContractionHierarchy::kNoArc);
  parent_b_.assign(n, ContractionHierarchy::kNoArc);
  stamp_f_.assign(n, 0);
  stamp_b_.assign(n, 0);
}

std::optional<Path> ChSearch::shortest_path(NodeId s, NodeId t) {
  return run(s, t, nullptr);
}

std::optional<Path> ChSearch::shortest_path_masked(NodeId s, NodeId t,
                                                   const detail::ChOverlayView& overlay) {
  return run(s, t, &overlay);
}

void ChSearch::improve(std::vector<double>& dist, std::vector<std::uint32_t>& parent,
                       std::vector<std::uint32_t>& stamp, std::vector<NodeId>& touched,
                       NodeId node, double candidate, std::uint32_t via_arc) {
  if (stamp[node] != generation_) {
    stamp[node] = generation_;
    touched.push_back(node);
    dist[node] = candidate;
    parent[node] = via_arc;
    heap_.push({candidate, node});
    return;
  }
  if (candidate < dist[node]) {
    dist[node] = candidate;
    parent[node] = via_arc;
    heap_.push({candidate, node});
  }
}

void ChSearch::relax_forward(NodeId u, double du, const detail::ChOverlayView* overlay) {
  for (const std::uint32_t id : ch_->forward_up(u)) {
    if (overlay != nullptr && overlay->invalid(id)) continue;
    const ContractionHierarchy::Arc& arc = ch_->arc(id);
    if (arc.weight == kInf) continue;
    improve(dist_f_, parent_f_, stamp_f_, touched_f_, arc.to, du + arc.weight, id);
  }
  if (overlay == nullptr) return;
  const auto base = static_cast<std::uint32_t>(ch_->arc_count());
  for (std::size_t i = 0; i < overlay->repairs.size(); ++i) {
    const detail::ChRepairArc& repair = overlay->repairs[i];
    if (!repair.forward_up || repair.from != u) continue;
    improve(dist_f_, parent_f_, stamp_f_, touched_f_, repair.to, du + repair.weight,
            base + static_cast<std::uint32_t>(i));
  }
}

void ChSearch::relax_backward(NodeId u, double du, const detail::ChOverlayView* overlay) {
  for (const std::uint32_t id : ch_->backward_up(u)) {
    if (overlay != nullptr && overlay->invalid(id)) continue;
    const ContractionHierarchy::Arc& arc = ch_->arc(id);
    if (arc.weight == kInf) continue;
    improve(dist_b_, parent_b_, stamp_b_, touched_b_, arc.from, du + arc.weight, id);
  }
  if (overlay == nullptr) return;
  const auto base = static_cast<std::uint32_t>(ch_->arc_count());
  for (std::size_t i = 0; i < overlay->repairs.size(); ++i) {
    const detail::ChRepairArc& repair = overlay->repairs[i];
    if (repair.forward_up || repair.to != u) continue;
    improve(dist_b_, parent_b_, stamp_b_, touched_b_, repair.from, du + repair.weight,
            base + static_cast<std::uint32_t>(i));
  }
}

void ChSearch::append_arc(std::uint32_t arc_id, const detail::ChOverlayView* overlay,
                          std::vector<EdgeId>& out) {
  const auto base = static_cast<std::uint32_t>(ch_->arc_count());
  if (arc_id >= base) {
    SMN_DCHECK(overlay != nullptr, "repair arc outside a masked query");
    const detail::ChRepairArc& repair = overlay->repairs[arc_id - base];
    for (std::uint32_t i = repair.pool_begin; i < repair.pool_end; ++i) {
      out.push_back(overlay->repair_pool[i]);
    }
    return;
  }
  ch_->append_unpacked(arc_id, out, unpack_stack_);
}

std::optional<Path> ChSearch::run(NodeId s, NodeId t, const detail::ChOverlayView* overlay) {
  SMN_CHECK(ch_->built(), "ChSearch requires a built hierarchy");
  SMN_CHECK(s < ch_->node_count() && t < ch_->node_count(),
            "ChSearch endpoints out of range");
  if (s == t) return Path{};
  const auto base = static_cast<std::uint32_t>(ch_->arc_count());
  ++generation_;
  touched_f_.clear();
  touched_b_.clear();

  heap_.clear();
  improve(dist_f_, parent_f_, stamp_f_, touched_f_, s, 0.0, ContractionHierarchy::kNoArc);
  while (!heap_.empty()) {
    const auto [d, u] = heap_.pop();
    if (d > dist_f_[u]) continue;
    relax_forward(u, d, overlay);
  }
  heap_.clear();
  improve(dist_b_, parent_b_, stamp_b_, touched_b_, t, 0.0, ContractionHierarchy::kNoArc);
  while (!heap_.empty()) {
    const auto [d, u] = heap_.pop();
    if (d > dist_b_[u]) continue;
    relax_backward(u, d, overlay);
  }

  double best = kInf;
  NodeId meet = kInvalidNode;
  for (const NodeId x : touched_f_) {
    if (stamp_b_[x] != generation_) continue;
    const double sum = dist_f_[x] + dist_b_[x];
    if (sum < best || (sum == best && x < meet)) {
      best = sum;
      meet = x;
    }
  }
  if (meet == kInvalidNode || best == kInf) return std::nullopt;

  chain_.clear();
  for (NodeId x = meet; parent_f_[x] != ContractionHierarchy::kNoArc;) {
    const std::uint32_t id = parent_f_[x];
    chain_.push_back(id);
    x = id >= base ? overlay->repairs[id - base].from : ch_->arc(id).from;
  }
  std::reverse(chain_.begin(), chain_.end());
  fine_.clear();
  for (const std::uint32_t id : chain_) append_arc(id, overlay, fine_);
  for (NodeId x = meet; parent_b_[x] != ContractionHierarchy::kNoArc;) {
    const std::uint32_t id = parent_b_[x];
    append_arc(id, overlay, fine_);
    x = id >= base ? overlay->repairs[id - base].to : ch_->arc(id).to;
  }

  // Report the left-fold of fine metrics along the unpacked path — the same
  // association flat Dijkstra uses — not the hierarchy's internal sum.
  Path path;
  path.cost = 0.0;
  const std::span<const double> metric = ch_->metric();
  for (const EdgeId e : fine_) path.cost = path.cost + metric[e];
  path.edges = fine_;
  return path;
}

// ---------------------------------------------------------------------------
// Failure-masked queries.
// ---------------------------------------------------------------------------

ChFailureQuery::ChFailureQuery(const ContractionHierarchy& ch, const Digraph& g)
    : ch_(&ch), graph_(&g), csr_(g), masked_search_(ch), pristine_search_(ch) {
  SMN_CHECK(ch.built(), "ChFailureQuery requires a built hierarchy");
  SMN_CHECK(!ch.options().customizable,
            "failure masking requires a static (witness-pruned) hierarchy");
  SMN_CHECK(ch.node_count() == g.node_count(), "hierarchy/graph node mismatch");
  SMN_CHECK(ch.metric().size() == g.edge_count(), "hierarchy/graph edge mismatch");
  mask_.assign(g.edge_count(), true);
  invalid_stamp_.assign(ch.arc_count(), 0);
  repair_dist_.assign(g.node_count(), kInf);
  repair_parent_.assign(g.node_count(), kInvalidEdge);
  repair_stamp_.assign(g.node_count(), 0);
}

void ChFailureQuery::set_failures(std::span<const EdgeId> dead) {
  for (const EdgeId e : dead_) mask_[e] = true;
  dead_.assign(dead.begin(), dead.end());
  ++epoch_;
  repairs_.clear();
  repair_pool_.clear();
  for (const EdgeId e : dead_) {
    SMN_CHECK(e < mask_.size(), "dead edge id out of range");
    mask_[e] = false;
  }
  for (const EdgeId e : dead_) {
    for (const std::uint32_t id : ch_->covering_arcs(e)) {
      if (invalid_stamp_[id] == epoch_) continue;
      invalid_stamp_[id] = epoch_;
      try_repair(id);
    }
  }
}

void ChFailureQuery::try_repair(std::uint32_t arc_id) {
  const ContractionHierarchy::Arc& arc = ch_->arc(arc_id);
  const bool forward_up = ch_->rank(arc.from) < ch_->rank(arc.to);
  const std::span<const double> metric = ch_->metric();
  if (!arc.is_shortcut()) {
    // Parallel fine edges may survive the scenario: re-realize cheaply.
    double best = kInf;
    EdgeId best_edge = kInvalidEdge;
    const std::span<const EdgeId> pool = ch_->parallel_pool();
    for (std::uint32_t i = arc.parallel_begin; i < arc.parallel_end; ++i) {
      const EdgeId e = pool[i];
      if (mask_[e] && metric[e] < best) {
        best = metric[e];
        best_edge = e;
      }
    }
    if (best_edge == kInvalidEdge) return;
    detail::ChRepairArc repair;
    repair.from = arc.from;
    repair.to = arc.to;
    repair.weight = best;
    repair.forward_up = forward_up;
    repair.pool_begin = static_cast<std::uint32_t>(repair_pool_.size());
    repair_pool_.push_back(best_edge);
    repair.pool_end = static_cast<std::uint32_t>(repair_pool_.size());
    repairs_.push_back(repair);
    return;
  }
  // Bounded local Dijkstra over the masked fine graph: restores equal-cost
  // detours around the dead member edge so certification keeps passing.
  ++counters_.repairs_attempted;
  ++repair_generation_;
  repair_heap_.clear();
  repair_dist_[arc.from] = 0.0;
  repair_parent_[arc.from] = kInvalidEdge;
  repair_stamp_[arc.from] = repair_generation_;
  repair_heap_.push({0.0, arc.from});
  std::size_t settled = 0;
  double found = kInf;
  while (!repair_heap_.empty()) {
    const auto [d, u] = repair_heap_.pop();
    if (d > repair_dist_[u]) continue;
    if (u == arc.to) {
      found = d;
      break;
    }
    if (++settled > ch_->options().repair_settled_limit) break;
    for (const CsrAdjacency::Entry& entry : csr_.out(u)) {
      if (!mask_[entry.edge]) continue;
      const double w = metric[entry.edge];
      if (w == kInf) continue;
      const double next = d + w;
      if (repair_stamp_[entry.to] != repair_generation_ || next < repair_dist_[entry.to]) {
        repair_stamp_[entry.to] = repair_generation_;
        repair_dist_[entry.to] = next;
        repair_parent_[entry.to] = entry.edge;
        repair_heap_.push({next, entry.to});
      }
    }
  }
  if (found == kInf) return;
  repair_path_.clear();
  for (NodeId x = arc.to; x != arc.from;) {
    const EdgeId e = repair_parent_[x];
    repair_path_.push_back(e);
    x = graph_->edge(e).from;
  }
  std::reverse(repair_path_.begin(), repair_path_.end());
  detail::ChRepairArc repair;
  repair.from = arc.from;
  repair.to = arc.to;
  repair.weight = found;
  repair.forward_up = forward_up;
  repair.pool_begin = static_cast<std::uint32_t>(repair_pool_.size());
  repair_pool_.insert(repair_pool_.end(), repair_path_.begin(), repair_path_.end());
  repair.pool_end = static_cast<std::uint32_t>(repair_pool_.size());
  repairs_.push_back(repair);
  ++counters_.repairs_succeeded;
}

std::optional<Path> ChFailureQuery::query(NodeId s, NodeId t,
                                          const std::optional<Path>* pristine) {
  SMN_CHECK(s < graph_->node_count() && t < graph_->node_count(),
            "ChFailureQuery endpoints out of range");
  ++counters_.queries;
  if (pristine == nullptr) {
    pristine_scratch_ = pristine_search_.shortest_path(s, t);
    pristine = &pristine_scratch_;
  }
  // Removing edges never shortens paths, so an unreachable pristine pair
  // stays unreachable and an untouched pristine path stays optimal.
  if (!pristine->has_value()) {
    ++counters_.pristine_hits;
    return std::nullopt;
  }
  bool hit = false;
  for (const EdgeId e : (*pristine)->edges) {
    if (!mask_[e]) {
      hit = true;
      break;
    }
  }
  if (!hit) {
    ++counters_.pristine_hits;
    return *pristine;
  }
  detail::ChOverlayView view;
  view.invalid_stamp = invalid_stamp_.data();
  view.epoch = epoch_;
  view.repairs = repairs_;
  view.repair_pool = repair_pool_;
  std::optional<Path> masked = masked_search_.shortest_path_masked(s, t, view);
  // Certification: masked distances are bounded below by the pristine
  // distance, so a masked path matching the pristine cost is optimal.
  if (masked.has_value() && masked->cost == (*pristine)->cost) {
    ++counters_.certified;
    return masked;
  }
  ++counters_.fallbacks;
  DijkstraWorkspace::Query q;
  q.source = s;
  q.target = t;
  q.edge_length = &ch_->metric_vector();
  q.edge_enabled = &mask_;
  q.csr = &csr_;
  flat_.run(*graph_, q);
  if (!flat_.reached(t)) return std::nullopt;
  Path path;
  path.cost = flat_.distance(t);
  flat_.path_into(*graph_, s, t, path.edges);
  return path;
}

}  // namespace smn::graph
