// Shortest paths: Dijkstra and Yen's k-shortest loopless paths. The TE
// controller routes demands over the k shortest paths between datacenters,
// matching production path-based TE formulations.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace smn::graph {

/// Result of a single-source Dijkstra run.
struct ShortestPathTree {
  std::vector<double> distance;      ///< +inf for unreachable nodes
  std::vector<EdgeId> parent_edge;   ///< kInvalidEdge for source/unreachable
};

/// A concrete path: edge ids in order plus total weight.
struct Path {
  std::vector<EdgeId> edges;
  double cost = 0.0;

  bool empty() const noexcept { return edges.empty(); }
};

/// Single-source shortest paths from `source` using non-negative edge
/// weights. `edge_enabled`, when non-empty, masks edges (false = failed);
/// its size must equal g.edge_count().
ShortestPathTree dijkstra(const Digraph& g, NodeId source,
                          const std::vector<bool>& edge_enabled = {});

/// Shortest path from `source` to `target`; std::nullopt when unreachable.
std::optional<Path> shortest_path(const Digraph& g, NodeId source, NodeId target,
                                  const std::vector<bool>& edge_enabled = {});

/// Yen's algorithm: up to `k` loopless shortest paths, ascending cost.
/// Deterministic tie-breaking by edge sequence.
std::vector<Path> yen_k_shortest_paths(const Digraph& g, NodeId source, NodeId target,
                                       std::size_t k);

/// Node sequence of `path` starting at `source` (length = edges + 1).
std::vector<NodeId> path_nodes(const Digraph& g, const Path& path, NodeId source);

}  // namespace smn::graph
