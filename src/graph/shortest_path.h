// Shortest paths: Dijkstra and Yen's k-shortest loopless paths. The TE
// controller routes demands over the k shortest paths between datacenters,
// matching production path-based TE formulations.
//
// The hot-path entry point is DijkstraWorkspace: persistent dist/parent/heap
// buffers with generation-stamped lazy reset, so callers that run many
// searches (the MCF solver runs thousands per solve) pay O(settled) per
// search instead of O(V + E) allocation + reset. One workspace serves one
// thread; give each pool worker its own.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace smn::graph {

/// Result of a single-source Dijkstra run.
struct ShortestPathTree {
  std::vector<double> distance;      ///< +inf for unreachable nodes
  std::vector<EdgeId> parent_edge;   ///< kInvalidEdge for source/unreachable
};

/// A concrete path: edge ids in order plus total weight.
struct Path {
  std::vector<EdgeId> edges;
  double cost = 0.0;

  bool empty() const noexcept { return edges.empty(); }
};

/// Flattened adjacency snapshot for Dijkstra-heavy callers. One contiguous
/// array of (to, edge, weight) entries replaces the per-node edge-id lists
/// and scattered Edge-struct loads in the relaxation loop — worth ~30% of
/// tree-build time for solvers that run thousands of searches on one graph.
/// Entry order matches Digraph::out_edges, so results are bit-identical.
/// A snapshot goes stale if the graph gains nodes or edges; rebuild it.
class CsrAdjacency {
 public:
  struct Entry {
    NodeId to;
    EdgeId edge;
    double weight;  ///< Edge::weight copy (unused when a length override is set)
  };

  CsrAdjacency() = default;
  explicit CsrAdjacency(const Digraph& g) { build(g); }

  void build(const Digraph& g);

  bool empty() const noexcept { return offset_.empty(); }

  std::span<const Entry> out(NodeId node) const {
    return {entries_.data() + offset_[node], offset_[node + 1] - offset_[node]};
  }

 private:
  std::vector<std::size_t> offset_;  ///< node_count + 1 prefix offsets
  std::vector<Entry> entries_;
};

/// Reusable Dijkstra scratch state. distance()/parent_edge() reflect the
/// most recent run(); stale state from earlier runs is invalidated lazily
/// by a per-node generation stamp, so no O(V) reset happens between runs.
class DijkstraWorkspace {
 public:
  struct Query {
    NodeId source = kInvalidNode;
    /// When valid, the search stops as soon as `target` is settled
    /// (distances to nodes farther than the target are then unreliable).
    /// kInvalidNode computes the full tree.
    NodeId target = kInvalidNode;
    /// Multi-target variant: stop once every listed node is settled (or
    /// proven unreachable by heap exhaustion). Duplicates are fine.
    /// Ignored when null; combine with target == kInvalidNode.
    const std::vector<NodeId>* targets = nullptr;
    /// Per-edge lengths overriding Edge::weight; +inf disables an edge.
    /// Must have size edge_count() when non-null.
    const std::vector<double>* edge_length = nullptr;
    /// Edge mask (false = failed/removed); size edge_count() when non-null.
    const std::vector<bool>* edge_enabled = nullptr;
    /// Optional flattened adjacency built from the same graph; the search
    /// relaxes through it instead of Digraph's edge lists (identical
    /// results, faster memory access).
    const CsrAdjacency* csr = nullptr;
  };

  /// Runs Dijkstra on `g` per `query`. Non-negative lengths assumed.
  void run(const Digraph& g, const Query& query);

  /// Distance from the last run's source; +inf when unreached.
  double distance(NodeId node) const noexcept {
    return node < stamp_.size() && stamp_[node] == generation_
               ? dist_[node]
               : std::numeric_limits<double>::infinity();
  }

  /// Tree parent edge from the last run; kInvalidEdge for source/unreached.
  EdgeId parent_edge(NodeId node) const noexcept {
    return node < stamp_.size() && stamp_[node] == generation_ ? parent_[node] : kInvalidEdge;
  }

  bool reached(NodeId node) const noexcept {
    return distance(node) != std::numeric_limits<double>::infinity();
  }

  /// Edge path source -> target from the last run; empty when unreached or
  /// when target == source.
  std::vector<EdgeId> path_to(const Digraph& g, NodeId source, NodeId target) const;

  /// As path_to, but reuses `out`'s capacity (cleared first). Hot-loop
  /// variant: no allocation once the caller's buffer has grown.
  void path_into(const Digraph& g, NodeId source, NodeId target,
                 std::vector<EdgeId>& out) const;

 private:
  void ensure_size(std::size_t node_count);
  /// Stamps `node` into the current generation (resetting its state).
  void touch(NodeId node);
  /// 4-ary min-heap ops on heap_ (lexicographic (dist, node) order). Every
  /// queued entry is distinct — a node is re-queued only with a strictly
  /// smaller distance — so the pop sequence is exactly the sequence of
  /// unique minima: identical to the binary-heap/priority_queue order.
  void heap_push(std::pair<double, NodeId> value);
  std::pair<double, NodeId> heap_pop();

  std::vector<double> dist_;
  std::vector<EdgeId> parent_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> target_stamp_;  ///< pending-target marks (Query::targets)
  std::uint32_t generation_ = 0;
  std::vector<std::pair<double, NodeId>> heap_;  ///< reused binary-heap storage
};

/// Single-source shortest paths from `source` using non-negative edge
/// weights. `edge_enabled`, when non-empty, masks edges (false = failed);
/// its size must equal g.edge_count().
ShortestPathTree dijkstra(const Digraph& g, NodeId source,
                          const std::vector<bool>& edge_enabled = {});

/// Shortest path from `source` to `target`; std::nullopt when unreachable.
std::optional<Path> shortest_path(const Digraph& g, NodeId source, NodeId target,
                                  const std::vector<bool>& edge_enabled = {});

/// Workspace-reusing variant of shortest_path for hot loops: no allocation
/// beyond workspace growth, early exit once `target` settles.
std::optional<Path> shortest_path(const Digraph& g, NodeId source, NodeId target,
                                  const std::vector<bool>& edge_enabled,
                                  DijkstraWorkspace& workspace);

/// Yen's algorithm: up to `k` loopless shortest paths, ascending cost.
/// Deterministic tie-breaking by edge sequence.
std::vector<Path> yen_k_shortest_paths(const Digraph& g, NodeId source, NodeId target,
                                       std::size_t k);

/// Node sequence of `path` starting at `source` (length = edges + 1).
std::vector<NodeId> path_nodes(const Digraph& g, const Path& path, NodeId source);

}  // namespace smn::graph
