// Strongly connected components (Tarjan). Dependency graphs extracted from
// real systems contain cycles (mutual dependencies); the CDG coarsener can
// optionally collapse SCCs first so the team graph is acyclic.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace smn::graph {

/// component_of[node] = SCC index; components are numbered in reverse
/// topological order of the condensation (Tarjan's natural output order).
struct SccResult {
  std::vector<NodeId> component_of;
  std::size_t component_count = 0;
};

SccResult strongly_connected_components(const Digraph& g);

}  // namespace smn::graph
