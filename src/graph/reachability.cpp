#include "graph/reachability.h"

#include <deque>

namespace smn::graph {
namespace {

std::vector<bool> bfs(const Digraph& g, NodeId start, bool forward) {
  std::vector<bool> seen(g.node_count(), false);
  if (start >= g.node_count()) return seen;
  std::deque<NodeId> frontier{start};
  seen[start] = true;
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop_front();
    const auto edges = forward ? g.out_edges(node) : g.in_edges(node);
    for (const EdgeId e : edges) {
      const NodeId next = forward ? g.edge(e).to : g.edge(e).from;
      if (!seen[next]) {
        seen[next] = true;
        frontier.push_back(next);
      }
    }
  }
  return seen;
}

}  // namespace

std::vector<bool> reachable_from(const Digraph& g, NodeId source) {
  return bfs(g, source, /*forward=*/true);
}

std::vector<bool> reverse_reachable(const Digraph& g, NodeId target) {
  return bfs(g, target, /*forward=*/false);
}

std::vector<std::vector<bool>> reachability_matrix(const Digraph& g) {
  std::vector<std::vector<bool>> matrix;
  matrix.reserve(g.node_count());
  for (NodeId n = 0; n < g.node_count(); ++n) matrix.push_back(reachable_from(g, n));
  return matrix;
}

std::vector<NodeId> topological_sort(const Digraph& g) {
  std::vector<std::size_t> in_degree(g.node_count(), 0);
  for (NodeId n = 0; n < g.node_count(); ++n) in_degree[n] = g.in_edges(n).size();
  std::deque<NodeId> ready;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (in_degree[n] == 0) ready.push_back(n);
  }
  std::vector<NodeId> order;
  order.reserve(g.node_count());
  while (!ready.empty()) {
    const NodeId node = ready.front();
    ready.pop_front();
    order.push_back(node);
    for (const EdgeId e : g.out_edges(node)) {
      const NodeId next = g.edge(e).to;
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  if (order.size() != g.node_count()) order.clear();  // cycle detected
  return order;
}

bool is_dag(const Digraph& g) {
  return g.node_count() == 0 || !topological_sort(g).empty();
}

}  // namespace smn::graph
