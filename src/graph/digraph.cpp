#include "graph/digraph.h"

#include <stdexcept>

namespace smn::graph {

NodeId Digraph::add_node(std::string name) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("Digraph::add_node: duplicate node name: " + name);
  }
  const auto id = static_cast<NodeId>(names_.size());
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

EdgeId Digraph::add_edge(NodeId from, NodeId to, double weight, double capacity) {
  if (from >= names_.size() || to >= names_.size()) {
    throw std::out_of_range("Digraph::add_edge: endpoint does not exist");
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, weight, capacity});
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

std::pair<EdgeId, EdgeId> Digraph::add_bidirectional_edge(NodeId a, NodeId b, double weight,
                                                          double capacity) {
  const EdgeId forward = add_edge(a, b, weight, capacity);
  const EdgeId backward = add_edge(b, a, weight, capacity);
  return {forward, backward};
}

std::optional<NodeId> Digraph::find_node(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<EdgeId> Digraph::find_edge(NodeId from, NodeId to) const {
  if (from >= out_.size()) return std::nullopt;
  for (const EdgeId e : out_[from]) {
    if (edges_[e].to == to) return e;
  }
  return std::nullopt;
}

std::vector<NodeId> Digraph::nodes() const {
  std::vector<NodeId> ids(node_count());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<NodeId>(i);
  return ids;
}

}  // namespace smn::graph
