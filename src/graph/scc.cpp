#include "graph/scc.h"

#include <algorithm>

namespace smn::graph {

// Iterative Tarjan to avoid stack overflow on deep graphs.
SccResult strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.node_count();
  SccResult result;
  result.component_of.assign(n, kInvalidNode);

  std::vector<std::uint32_t> index(n, UINT32_MAX);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::uint32_t next_index = 0;

  struct Frame {
    NodeId node;
    std::size_t edge_pos;
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != UINT32_MAX) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const auto edges = g.out_edges(frame.node);
      if (frame.edge_pos < edges.size()) {
        const NodeId next = g.edge(edges[frame.edge_pos++]).to;
        if (index[next] == UINT32_MAX) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          call_stack.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[next]);
        }
      } else {
        const NodeId node = frame.node;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          lowlink[call_stack.back().node] =
              std::min(lowlink[call_stack.back().node], lowlink[node]);
        }
        if (lowlink[node] == index[node]) {
          const auto component = static_cast<NodeId>(result.component_count++);
          while (true) {
            const NodeId member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            result.component_of[member] = component;
            if (member == node) break;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace smn::graph
