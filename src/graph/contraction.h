// Graph contraction: the structural half of both coarsenings.
//   * Topology coarsening (§4): datacenters -> supernodes/regions.
//   * CDG construction (§5):   microservices -> teams.
// Nodes are grouped by a partition; parallel edges between groups merge
// (capacities add — parallel fibers aggregate; weights take the minimum —
// the best path between regions survives) and intra-group edges vanish.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.h"

namespace smn::graph {

/// Assignment of every fine node to a group, plus group display names.
struct Partition {
  std::vector<NodeId> group_of;          ///< index = fine node, value = group
  std::vector<std::string> group_names;  ///< index = group

  std::size_t group_count() const noexcept { return group_names.size(); }

  /// Validates internal consistency (every node mapped, ids in range).
  bool valid_for(const Digraph& g) const noexcept;
};

/// Result of a contraction: the coarse graph plus bookkeeping to map
/// results back to the fine graph (the paper notes coarsening lacks AE's
/// concretization function; these maps are the pragmatic substitute).
struct ContractedGraph {
  Digraph coarse;
  /// fine node -> coarse node.
  std::vector<NodeId> node_map;
  /// coarse edge -> list of fine edges merged into it.
  std::vector<std::vector<EdgeId>> edge_members;
  /// fine edge -> coarse edge (kInvalidEdge for intra-group edges).
  std::vector<EdgeId> edge_map;
};

/// Contracts `g` by `partition`. Throws std::invalid_argument on an invalid
/// partition.
ContractedGraph contract(const Digraph& g, const Partition& partition);

/// Groups nodes by a name prefix up to `delimiter` (e.g. "us-east/dc3" with
/// '/' groups by region). Nodes without the delimiter form singleton groups.
Partition partition_by_name_prefix(const Digraph& g, char delimiter);

}  // namespace smn::graph
