// Contraction hierarchy (CH) over a Digraph: an ordering-driven coarsening
// of the routing graph. Preprocessing contracts nodes in importance order
// (edge-difference heuristic, lazy-update priority queue, node-id
// tie-breaks), inserting shortcut arcs that record the two child arcs they
// bypass. Queries run a bidirectional upward Dijkstra over the hierarchy —
// a search space of tens of nodes instead of the whole WAN — and unpack
// shortcuts back to fine EdgeId paths, so existing Path consumers are
// untouched.
//
// Two build modes:
//   * static (default): witness searches prune shortcuts that a real path
//     already covers; weights are frozen at build time (Edge::weight or a
//     caller metric). Serves fixed-metric callers: failure sweeps and
//     hierarchical routing evaluation.
//   * customizable (ChOptions::customizable): witness pruning is skipped so
//     the shortcut structure is metric-independent chordal fill-in;
//     customize() re-weights every arc for a new metric in one ascending-
//     rank triangle pass. Serves the MCF solver, whose dual lengths change
//     after every augmentation.
//
// Failure scenarios never rebuild the hierarchy: ChFailureQuery masks downed
// fine edges at query time (arcs whose unpacked expansion contains a dead
// edge are skipped via a precomputed coverage index), runs a bounded local
// repair for invalidated shortcuts, certifies the masked result against the
// pristine distance, and falls back to flat Dijkstra for the rare queries
// the mask invalidates. Results are therefore exactly equal to flat masked
// Dijkstra on every query, by construction.
//
// Determinism: ordering, witness searches, and queries all tie-break by
// node id, so the hierarchy and every returned path are bit-identical
// across runs and thread counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "graph/shortest_path.h"

namespace smn::graph {

/// Build/query knobs. Defaults follow the usual CH literature values scaled
/// for WAN-sized graphs (hundreds to a few thousand nodes).
struct ChOptions {
  /// Witness searches give up after expanding paths this many hops deep.
  std::size_t witness_hop_limit = 16;
  /// Witness searches give up after settling this many nodes.
  std::size_t witness_settled_limit = 512;
  /// Bounded local repair of an invalidated shortcut settles at most this
  /// many nodes before declaring the shortcut unrepairable.
  std::size_t repair_settled_limit = 256;
  /// Skip witness pruning so the arc structure is metric-independent and
  /// customize() can re-weight it for evolving metrics (CCH-style).
  bool customizable = false;
};

/// Build statistics, for benches and DESIGN.md numbers.
struct ChStats {
  std::size_t nodes = 0;
  std::size_t fine_edges = 0;
  std::size_t arcs = 0;       ///< query arcs: original + surviving shortcuts
  std::size_t shortcuts = 0;  ///< arcs realized by two child arcs
  std::size_t witness_searches = 0;
  std::size_t witness_pruned = 0;  ///< candidate shortcuts killed by a witness
};

class ContractionHierarchy {
 public:
  static constexpr std::uint32_t kNoArc = std::numeric_limits<std::uint32_t>::max();

  /// One arc of the hierarchy's query graph. Original arcs carry the fine
  /// edge realizing them plus the range of parallel fine edges between the
  /// same endpoints; shortcuts carry the two child arcs they bypass.
  struct Arc {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    double weight = 0.0;
    /// Fine edge realizing the current weight; kInvalidEdge when the arc is
    /// realized through child_down + child_up.
    EdgeId fine_edge = kInvalidEdge;
    std::uint32_t child_down = kNoArc;  ///< realizing arc from -> middle
    std::uint32_t child_up = kNoArc;    ///< realizing arc middle -> to
    /// Range into parallel_pool(): every fine edge from -> to (original
    /// arcs only; empty for pure shortcuts).
    std::uint32_t parallel_begin = 0;
    std::uint32_t parallel_end = 0;

    bool is_shortcut() const noexcept { return parallel_begin == parallel_end; }
  };

  /// Builds the hierarchy over `g` with metric Edge::weight.
  void build(const Digraph& g, const ChOptions& options = {});

  /// Builds with an explicit per-edge metric (size g.edge_count(); +inf
  /// disables an edge for the static mode).
  void build(const Digraph& g, const std::vector<double>& edge_length,
             const ChOptions& options = {});

  /// Re-weights the fixed arc structure for a new metric in one ascending-
  /// rank lower-triangle pass. Requires a customizable build. +inf lengths
  /// disable edges. Queries issued afterwards are exact for the new metric.
  void customize(const std::vector<double>& edge_length);

  bool built() const noexcept { return !rank_.empty(); }
  std::size_t node_count() const noexcept { return rank_.size(); }
  std::size_t arc_count() const noexcept { return arcs_.size(); }
  const ChStats& stats() const noexcept { return stats_; }
  const ChOptions& options() const noexcept { return options_; }

  /// Contraction position of `node`: 0 = contracted first (least important).
  std::uint32_t rank(NodeId node) const { return rank_.at(node); }

  const Arc& arc(std::uint32_t id) const { return arcs_.at(id); }

  /// Arcs node -> higher-ranked neighbor (relaxed by forward searches).
  std::span<const std::uint32_t> forward_up(NodeId node) const {
    return {fwd_arcs_.data() + fwd_offset_[node], fwd_offset_[node + 1] - fwd_offset_[node]};
  }

  /// Arcs higher-ranked neighbor -> node (relaxed by backward searches).
  std::span<const std::uint32_t> backward_up(NodeId node) const {
    return {bwd_arcs_.data() + bwd_offset_[node], bwd_offset_[node + 1] - bwd_offset_[node]};
  }

  /// Fine edge ids backing the parallel ranges of original arcs.
  std::span<const EdgeId> parallel_pool() const noexcept { return parallel_pool_; }

  /// Current per-fine-edge metric (build metric, or the last customize()).
  std::span<const double> metric() const noexcept { return metric_; }

  /// metric() as a vector, for DijkstraWorkspace::Query::edge_length.
  const std::vector<double>& metric_vector() const noexcept { return metric_; }

  /// Query arcs whose unpacked expansion contains `fine_edge` (static
  /// builds only; empty spans for customizable builds).
  std::span<const std::uint32_t> covering_arcs(EdgeId fine_edge) const {
    return {cover_arcs_.data() + cover_offset_[fine_edge],
            cover_offset_[fine_edge + 1] - cover_offset_[fine_edge]};
  }

  /// Appends the fine-edge expansion of `arc_id` (in from -> to order) to
  /// `out`, using `stack` as scratch to avoid recursion.
  void append_unpacked(std::uint32_t arc_id, std::vector<EdgeId>& out,
                       std::vector<std::uint32_t>& stack) const;

 private:
  friend class ChBuilder;

  /// Query arc from -> to, if present in either upward adjacency; kNoArc
  /// otherwise. Used by the customize() triangle pass.
  std::uint32_t find_arc(NodeId from, NodeId to) const;

  ChOptions options_;
  ChStats stats_;
  std::vector<std::uint32_t> rank_;  ///< node -> contraction position
  std::vector<NodeId> order_;        ///< rank -> node (built on first customize)
  std::vector<Arc> arcs_;
  std::vector<EdgeId> parallel_pool_;
  std::vector<double> metric_;  ///< per fine edge; leftfold cost basis
  // CSR adjacency of the upward query graph, per direction.
  std::vector<std::size_t> fwd_offset_;
  std::vector<std::uint32_t> fwd_arcs_;
  std::vector<std::size_t> bwd_offset_;
  std::vector<std::uint32_t> bwd_arcs_;
  // CSR coverage index: fine edge -> arcs whose expansion contains it.
  std::vector<std::size_t> cover_offset_;
  std::vector<std::uint32_t> cover_arcs_;

  void build_coverage_index();
};

namespace detail {

/// 4-ary min-heap on (key, id) with strict lexicographic order, matching
/// DijkstraWorkspace's pop discipline so tie-breaks are deterministic.
struct ChHeap {
  std::vector<std::pair<double, std::uint32_t>> slots;

  bool empty() const noexcept { return slots.empty(); }
  void clear() noexcept { slots.clear(); }

  void push(std::pair<double, std::uint32_t> value) {
    slots.push_back(value);
    std::size_t i = slots.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (slots[parent] <= slots[i]) break;
      std::swap(slots[parent], slots[i]);
      i = parent;
    }
  }

  std::pair<double, std::uint32_t> pop() {
    const std::pair<double, std::uint32_t> top = slots.front();
    slots.front() = slots.back();
    slots.pop_back();
    std::size_t i = 0;
    while (true) {
      const std::size_t first = i * 4 + 1;
      if (first >= slots.size()) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + 4, slots.size());
      for (std::size_t c = first + 1; c < last; ++c) {
        if (slots[c] < slots[best]) best = c;
      }
      if (slots[i] <= slots[best]) break;
      std::swap(slots[i], slots[best]);
      i = best;
    }
    return top;
  }
};

/// An overlay repair arc standing in for an invalidated hierarchy arc
/// during one failure scenario: same endpoints and search direction, with
/// an explicit fine-edge realization valid under the scenario's mask.
struct ChRepairArc {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double weight = 0.0;
  bool forward_up = false;  ///< direction class of the replaced arc
  std::uint32_t pool_begin = 0;
  std::uint32_t pool_end = 0;
};

/// Per-scenario view handed to masked hierarchy searches: which arcs are
/// invalid this epoch, plus the scenario's repair arcs and their edge pool.
struct ChOverlayView {
  const std::uint32_t* invalid_stamp = nullptr;
  std::uint32_t epoch = 0;
  std::span<const ChRepairArc> repairs;
  std::span<const EdgeId> repair_pool;

  bool invalid(std::uint32_t arc_id) const noexcept {
    return invalid_stamp != nullptr && invalid_stamp[arc_id] == epoch;
  }
};

}  // namespace detail

/// Reusable bidirectional upward-search workspace. One instance serves one
/// thread; construction binds it to a hierarchy whose weights may still be
/// re-customized between queries.
class ChSearch {
 public:
  explicit ChSearch(const ContractionHierarchy& ch);

  /// Exact shortest path s -> t under the hierarchy's current metric.
  /// Reported cost is the left-fold of fine edge metrics along the unpacked
  /// path — the same association flat Dijkstra uses — and equals flat
  /// Dijkstra's distance. std::nullopt when unreachable; an empty zero-cost
  /// path when s == t.
  std::optional<Path> shortest_path(NodeId s, NodeId t);

  /// Masked variant driven by ChFailureQuery: skips arcs the overlay marks
  /// invalid and additionally relaxes its repair arcs. Internal API.
  std::optional<Path> shortest_path_masked(NodeId s, NodeId t,
                                           const detail::ChOverlayView& overlay);

 private:
  std::optional<Path> run(NodeId s, NodeId t, const detail::ChOverlayView* overlay);
  void relax_forward(NodeId u, double du, const detail::ChOverlayView* overlay);
  void relax_backward(NodeId u, double du, const detail::ChOverlayView* overlay);
  void improve(std::vector<double>& dist, std::vector<std::uint32_t>& parent,
               std::vector<std::uint32_t>& stamp, std::vector<NodeId>& touched, NodeId node,
               double candidate, std::uint32_t via_arc);
  /// Appends the expansion of `arc_id`, which may index overlay repairs
  /// (ids >= arc_count encode repair index + arc_count).
  void append_arc(std::uint32_t arc_id, const detail::ChOverlayView* overlay,
                  std::vector<EdgeId>& out);

  const ContractionHierarchy* ch_;
  std::vector<double> dist_f_, dist_b_;
  std::vector<std::uint32_t> parent_f_, parent_b_;
  std::vector<std::uint32_t> stamp_f_, stamp_b_;
  std::uint32_t generation_ = 0;
  std::vector<NodeId> touched_f_, touched_b_;
  detail::ChHeap heap_;
  std::vector<std::uint32_t> chain_;        ///< arc ids of the meet path
  std::vector<std::uint32_t> unpack_stack_; ///< append_unpacked scratch
  std::vector<EdgeId> fine_;                ///< unpacked fine-edge buffer
};

/// Certified failure-masked point queries: hierarchy fast path with flat
/// Dijkstra fallback, exactly matching flat masked Dijkstra on every query.
///
/// Per scenario, set_failures() invalidates every arc covering a dead fine
/// edge (no hierarchy rebuild), re-realizes original arcs from surviving
/// parallel edges, and attempts a bounded local repair of invalidated
/// shortcuts so equal-cost detours stay visible to the upward search.
/// query() then certifies the masked result against the pristine distance:
/// masked distances can only grow, so a masked path matching the pristine
/// cost is provably optimal. Anything uncertified falls back to flat masked
/// Dijkstra. One instance serves one thread; reuse it across scenarios.
class ChFailureQuery {
 public:
  struct Counters {
    std::size_t queries = 0;
    std::size_t pristine_hits = 0;  ///< pristine path untouched by the mask
    std::size_t certified = 0;      ///< masked upward search matched pristine cost
    std::size_t fallbacks = 0;      ///< flat masked Dijkstra resolved the query
    std::size_t repairs_attempted = 0;
    std::size_t repairs_succeeded = 0;
  };

  /// Requires a static (non-customizable) build over `g`.
  ChFailureQuery(const ContractionHierarchy& ch, const Digraph& g);

  /// Installs the scenario's dead fine edges, replacing the previous
  /// scenario's mask. Ids must be < g.edge_count().
  void set_failures(std::span<const EdgeId> dead);

  /// Exact masked shortest path s -> t. `pristine`, when non-null, is the
  /// caller's cached un-masked result for (s, t) (from ChSearch or flat
  /// Dijkstra); when null it is computed internally.
  std::optional<Path> query(NodeId s, NodeId t,
                            const std::optional<Path>* pristine = nullptr);

  const Counters& counters() const noexcept { return counters_; }
  const std::vector<bool>& edge_mask() const noexcept { return mask_; }

 private:
  void try_repair(std::uint32_t arc_id);

  const ContractionHierarchy* ch_;
  const Digraph* graph_;
  CsrAdjacency csr_;
  ChSearch masked_search_;
  ChSearch pristine_search_;
  DijkstraWorkspace flat_;
  Counters counters_;
  std::vector<bool> mask_;  ///< false = dead under the current scenario
  std::vector<EdgeId> dead_;
  std::vector<std::uint32_t> invalid_stamp_;  ///< per arc, == epoch_ when invalid
  std::uint32_t epoch_ = 0;
  std::vector<detail::ChRepairArc> repairs_;
  std::vector<EdgeId> repair_pool_;
  // Bounded repair search scratch (masked fine-graph Dijkstra).
  std::vector<double> repair_dist_;
  std::vector<EdgeId> repair_parent_;
  std::vector<std::uint32_t> repair_stamp_;
  std::uint32_t repair_generation_ = 0;
  detail::ChHeap repair_heap_;
  std::vector<EdgeId> repair_path_;
  std::optional<Path> pristine_scratch_;
};

}  // namespace smn::graph
