// Reachability queries over dependency graphs. With edges x -> y meaning
// "x depends on y", forward reachability from a team gives everything it
// depends on, and reverse reachability gives its dependents — exactly the
// fan-out the §5 syndrome prediction needs ("if only team T failed, which
// nodes would show symptoms?").
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace smn::graph {

/// Nodes reachable from `source` along forward edges (includes `source`).
std::vector<bool> reachable_from(const Digraph& g, NodeId source);

/// Nodes that can reach `target` along forward edges (includes `target`).
/// In a dependency graph these are the transitive dependents of `target`.
std::vector<bool> reverse_reachable(const Digraph& g, NodeId target);

/// Dense boolean reachability matrix: result[u][v] = u can reach v.
/// Intended for the small coarse graphs (teams number in the tens).
std::vector<std::vector<bool>> reachability_matrix(const Digraph& g);

/// True when the graph has no directed cycle.
bool is_dag(const Digraph& g);

/// Topological order when the graph is a DAG; empty vector otherwise.
std::vector<NodeId> topological_sort(const Digraph& g);

}  // namespace smn::graph
