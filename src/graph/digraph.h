// Directed weighted graph used for both WAN topologies (nodes = datacenters,
// edge capacity = link Gbps) and service dependency graphs (edge x -> y
// means "x depends on y at runtime", §5).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace smn::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double weight = 1.0;    ///< routing metric (e.g. latency or IGP cost)
  double capacity = 0.0;  ///< Gbps for WAN links; unused for dependency edges
};

/// Growable directed multigraph with named nodes and O(1) id lookup.
/// Edges are never removed; higher layers model failures by masking.
class Digraph {
 public:
  Digraph() = default;

  /// Adds a node; `name` must be unique (throws std::invalid_argument).
  NodeId add_node(std::string name);

  /// Adds a directed edge; endpoints must exist (throws std::out_of_range).
  EdgeId add_edge(NodeId from, NodeId to, double weight = 1.0, double capacity = 0.0);

  /// Adds edges in both directions with identical weight/capacity and
  /// returns {forward, backward}. WAN links are bidirectional.
  std::pair<EdgeId, EdgeId> add_bidirectional_edge(NodeId a, NodeId b, double weight = 1.0,
                                                   double capacity = 0.0);

  std::size_t node_count() const noexcept { return names_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }

  const Edge& edge(EdgeId id) const { return edges_.at(id); }
  Edge& mutable_edge(EdgeId id) { return edges_.at(id); }

  const std::string& node_name(NodeId id) const { return names_.at(id); }

  /// Node id for `name`, if present.
  std::optional<NodeId> find_node(const std::string& name) const;

  /// Outgoing edge ids of `node`.
  std::span<const EdgeId> out_edges(NodeId node) const { return out_.at(node); }

  /// Incoming edge ids of `node`.
  std::span<const EdgeId> in_edges(NodeId node) const { return in_.at(node); }

  /// First edge from `from` to `to`, if any.
  std::optional<EdgeId> find_edge(NodeId from, NodeId to) const;

  /// Sum of node and edge counts — the |S| measure used for graph
  /// coarsenings.
  std::size_t size_measure() const noexcept { return node_count() + edge_count(); }

  /// All node ids [0, node_count()).
  std::vector<NodeId> nodes() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace smn::graph
