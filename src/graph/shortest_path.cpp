#include "graph/shortest_path.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <set>
#include <stdexcept>

#include "util/contracts.h"

namespace smn::graph {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void check_mask(const Digraph& g, const std::vector<bool>& edge_enabled, const char* who) {
  if (!edge_enabled.empty() && edge_enabled.size() != g.edge_count()) {
    throw std::invalid_argument(std::string(who) + ": edge mask size mismatch");
  }
}

}  // namespace

void CsrAdjacency::build(const Digraph& g) {
  offset_.assign(g.node_count() + 1, 0);
  entries_.clear();
  entries_.reserve(g.edge_count());
  for (NodeId node = 0; node < g.node_count(); ++node) {
    offset_[node] = entries_.size();
    for (const EdgeId e : g.out_edges(node)) {
      const Edge& edge = g.edge(e);
      entries_.push_back({edge.to, e, edge.weight});
    }
  }
  offset_[g.node_count()] = entries_.size();
}

void DijkstraWorkspace::ensure_size(std::size_t node_count) {
  if (stamp_.size() != node_count) {
    dist_.resize(node_count);
    parent_.resize(node_count);
    stamp_.assign(node_count, 0);
    target_stamp_.assign(node_count, 0);
    generation_ = 0;
  }
}

void DijkstraWorkspace::touch(NodeId node) { stamp_[node] = generation_; }

void DijkstraWorkspace::heap_push(std::pair<double, NodeId> value) {
  heap_.push_back(value);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!(value < heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = value;
}

std::pair<double, NodeId> DijkstraWorkspace::heap_pop() {
  SMN_DCHECK(!heap_.empty(), "heap_pop on an empty heap");
  const auto top = heap_.front();
  const auto last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = std::min(first_child + 4, n);
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (heap_[c] < heap_[best]) best = c;
      }
      if (!(heap_[best] < last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void DijkstraWorkspace::run(const Digraph& g, const Query& query) {
  SMN_DCHECK(query.edge_length == nullptr || query.edge_length->size() == g.edge_count(),
             "edge_length override must cover every edge");
  SMN_DCHECK(query.edge_enabled == nullptr || query.edge_enabled->size() == g.edge_count(),
             "edge_enabled mask must cover every edge");
  ensure_size(g.node_count());
  if (++generation_ == 0) {
    // Stamp wrap-around: invalidate everything once, then restart at 1.
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    std::fill(target_stamp_.begin(), target_stamp_.end(), 0u);
    generation_ = 1;
  }
  heap_.clear();
  if (query.source >= g.node_count()) return;

  // Multi-target mode: count distinct pending targets; the search stops
  // when the last one settles.
  std::size_t pending_targets = 0;
  if (query.targets != nullptr) {
    for (const NodeId t : *query.targets) {
      if (t < g.node_count() && target_stamp_[t] != generation_) {
        target_stamp_[t] = generation_;
        ++pending_targets;
      }
    }
  }

  const std::vector<double>* length = query.edge_length;
  const std::vector<bool>* enabled = query.edge_enabled;

  dist_[query.source] = 0.0;
  parent_[query.source] = kInvalidEdge;
  touch(query.source);
  heap_.emplace_back(0.0, query.source);

  // Pops ascend in (distance, node) order — same settle order, and
  // therefore the same parent selection, as the legacy
  // std::priority_queue<greater<>> implementation.
  while (!heap_.empty()) {
    const auto [d, node] = heap_pop();
    if (d > dist_[node]) continue;  // stale entry
    if (node == query.target) break;
    if (pending_targets > 0 && target_stamp_[node] == generation_) {
      target_stamp_[node] = 0;  // settled (generation_ is never 0)
      if (--pending_targets == 0) break;
    }
    const auto relax = [&](EdgeId e, NodeId to, double edge_cost) {
      const double next = d + edge_cost;
      const double current = stamp_[to] == generation_ ? dist_[to] : kInf;
      if (next < current) {  // +inf lengths (disabled edges) never pass
        dist_[to] = next;
        parent_[to] = e;
        touch(to);
        heap_push({next, to});
      }
    };
    if (query.csr != nullptr && !query.csr->empty()) {
      // Flattened adjacency: same entries in the same order, but one
      // contiguous 16-byte load per edge instead of two indirections.
      for (const CsrAdjacency::Entry& ent : query.csr->out(node)) {
        if (enabled != nullptr && !(*enabled)[ent.edge]) continue;
        relax(ent.edge, ent.to, length != nullptr ? (*length)[ent.edge] : ent.weight);
      }
    } else {
      for (const EdgeId e : g.out_edges(node)) {
        if (enabled != nullptr && !(*enabled)[e]) continue;
        const Edge& edge = g.edge(e);
        relax(e, edge.to, length != nullptr ? (*length)[e] : edge.weight);
      }
    }
  }
}

std::vector<EdgeId> DijkstraWorkspace::path_to(const Digraph& g, NodeId source,
                                               NodeId target) const {
  std::vector<EdgeId> edges;
  path_into(g, source, target, edges);
  return edges;
}

void DijkstraWorkspace::path_into(const Digraph& g, NodeId source, NodeId target,
                                  std::vector<EdgeId>& out) const {
  out.clear();
  if (!reached(target)) return;
  for (NodeId node = target; node != source;) {
    const EdgeId e = parent_edge(node);
    if (e == kInvalidEdge) {  // target not on the last run's tree
      out.clear();
      return;
    }
    out.push_back(e);
    node = g.edge(e).from;
  }
  std::reverse(out.begin(), out.end());
}

ShortestPathTree dijkstra(const Digraph& g, NodeId source, const std::vector<bool>& edge_enabled) {
  check_mask(g, edge_enabled, "dijkstra");
  ShortestPathTree tree;
  tree.distance.assign(g.node_count(), kInf);
  tree.parent_edge.assign(g.node_count(), kInvalidEdge);
  if (source >= g.node_count()) return tree;

  static thread_local DijkstraWorkspace workspace;
  workspace.run(g, {.source = source,
                    .edge_enabled = edge_enabled.empty() ? nullptr : &edge_enabled});
  for (NodeId node = 0; node < g.node_count(); ++node) {
    tree.distance[node] = workspace.distance(node);
    tree.parent_edge[node] = workspace.parent_edge(node);
  }
  return tree;
}

std::optional<Path> shortest_path(const Digraph& g, NodeId source, NodeId target,
                                  const std::vector<bool>& edge_enabled,
                                  DijkstraWorkspace& workspace) {
  check_mask(g, edge_enabled, "shortest_path");
  if (source >= g.node_count() || target >= g.node_count()) return std::nullopt;
  workspace.run(g, {.source = source,
                    .target = target,
                    .edge_enabled = edge_enabled.empty() ? nullptr : &edge_enabled});
  if (!workspace.reached(target)) return std::nullopt;
  Path path;
  path.cost = workspace.distance(target);
  path.edges = workspace.path_to(g, source, target);
  return path;
}

std::optional<Path> shortest_path(const Digraph& g, NodeId source, NodeId target,
                                  const std::vector<bool>& edge_enabled) {
  static thread_local DijkstraWorkspace workspace;
  return shortest_path(g, source, target, edge_enabled, workspace);
}

std::vector<NodeId> path_nodes(const Digraph& g, const Path& path, NodeId source) {
  std::vector<NodeId> nodes{source};
  for (const EdgeId e : path.edges) nodes.push_back(g.edge(e).to);
  return nodes;
}

std::vector<Path> yen_k_shortest_paths(const Digraph& g, NodeId source, NodeId target,
                                       std::size_t k) {
  std::vector<Path> result;
  if (k == 0) return result;
  DijkstraWorkspace workspace;
  auto first = shortest_path(g, source, target, {}, workspace);
  if (!first) return result;
  result.push_back(std::move(*first));

  // Candidate set ordered by (cost, edge sequence) for determinism.
  const auto candidate_less = [](const Path& a, const Path& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.edges < b.edges;
  };
  std::set<Path, decltype(candidate_less)> candidates(candidate_less);

  std::vector<bool> edge_enabled(g.edge_count(), true);
  // Disabled-edge journals: `banned` (root-node bans) lives for one whole
  // spur pass, `spur_blocked` for one spur index. Restoring just these
  // entries replaces the former O(E) std::fill per spur node.
  std::vector<EdgeId> banned;
  std::vector<EdgeId> spur_blocked;
  const auto disable = [&edge_enabled](EdgeId e, std::vector<EdgeId>& journal) {
    if (edge_enabled[e]) {
      edge_enabled[e] = false;
      journal.push_back(e);
    }
  };

  // Per-spur-pass scratch, reused across passes so the spur loop allocates
  // nothing: prev's node sequence and the shared-root-prefix path set.
  std::vector<NodeId> prev_nodes;
  std::vector<const Path*> sharing;
  while (result.size() < k) {
    const Path& prev = result.back();
    prev_nodes.clear();
    prev_nodes.push_back(source);
    for (const EdgeId e : prev.edges) prev_nodes.push_back(g.edge(e).to);

    // Paths sharing prev's root prefix [0, i), filtered incrementally as i
    // grows instead of re-comparing every path's full prefix per spur node.
    // Snapshotting before the pass is exact: a candidate inserted at spur
    // index i' diverges from prev at i' (prev's own edge there is blocked),
    // so it can never share a longer root later in this pass.
    sharing.clear();
    sharing.reserve(result.size() + candidates.size());
    for (const Path& found : result) sharing.push_back(&found);
    for (const Path& cand : candidates) sharing.push_back(&cand);

    double root_cost = 0.0;
    for (std::size_t i = 0; i + 1 < prev_nodes.size(); ++i) {
      const NodeId spur_node = prev_nodes[i];
      if (i > 0) {
        const EdgeId grown = prev.edges[i - 1];
        root_cost += g.edge(grown).weight;
        std::size_t kept = 0;
        for (const Path* p : sharing) {
          if (p->edges.size() >= i && p->edges[i - 1] == grown) sharing[kept++] = p;
        }
        sharing.resize(kept);
        // Remove the newly-interior root node to keep paths loopless.
        const NodeId banned_node = prev_nodes[i - 1];
        for (const EdgeId e : g.out_edges(banned_node)) disable(e, banned);
        for (const EdgeId e : g.in_edges(banned_node)) disable(e, banned);
      }
      // Remove edges that would recreate an already-found path sharing the
      // same root.
      for (const Path* p : sharing) {
        if (p->edges.size() > i) disable(p->edges[i], spur_blocked);
      }

      const auto spur = shortest_path(g, spur_node, target, edge_enabled, workspace);
      for (const EdgeId e : spur_blocked) edge_enabled[e] = true;
      spur_blocked.clear();
      if (!spur) continue;
      Path total;
      total.edges.reserve(i + spur->edges.size());
      total.edges.assign(prev.edges.begin(), prev.edges.begin() + static_cast<std::ptrdiff_t>(i));
      total.edges.insert(total.edges.end(), spur->edges.begin(), spur->edges.end());
      total.cost = root_cost + spur->cost;
      candidates.insert(std::move(total));
    }
    for (const EdgeId e : banned) edge_enabled[e] = true;
    banned.clear();

    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace smn::graph
