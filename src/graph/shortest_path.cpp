#include "graph/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace smn::graph {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool edge_is_enabled(const std::vector<bool>& mask, EdgeId e) noexcept {
  return mask.empty() || mask[e];
}

}  // namespace

ShortestPathTree dijkstra(const Digraph& g, NodeId source, const std::vector<bool>& edge_enabled) {
  if (!edge_enabled.empty() && edge_enabled.size() != g.edge_count()) {
    throw std::invalid_argument("dijkstra: edge mask size mismatch");
  }
  ShortestPathTree tree;
  tree.distance.assign(g.node_count(), kInf);
  tree.parent_edge.assign(g.node_count(), kInvalidEdge);
  if (source >= g.node_count()) return tree;

  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  tree.distance[source] = 0.0;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [dist, node] = heap.top();
    heap.pop();
    if (dist > tree.distance[node]) continue;  // stale entry
    for (const EdgeId e : g.out_edges(node)) {
      if (!edge_is_enabled(edge_enabled, e)) continue;
      const Edge& edge = g.edge(e);
      const double next = dist + edge.weight;
      if (next < tree.distance[edge.to]) {
        tree.distance[edge.to] = next;
        tree.parent_edge[edge.to] = e;
        heap.emplace(next, edge.to);
      }
    }
  }
  return tree;
}

std::optional<Path> shortest_path(const Digraph& g, NodeId source, NodeId target,
                                  const std::vector<bool>& edge_enabled) {
  const ShortestPathTree tree = dijkstra(g, source, edge_enabled);
  if (target >= g.node_count() || tree.distance[target] == kInf) return std::nullopt;
  Path path;
  path.cost = tree.distance[target];
  for (NodeId node = target; node != source;) {
    const EdgeId e = tree.parent_edge[node];
    path.edges.push_back(e);
    node = g.edge(e).from;
  }
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

std::vector<NodeId> path_nodes(const Digraph& g, const Path& path, NodeId source) {
  std::vector<NodeId> nodes{source};
  for (const EdgeId e : path.edges) nodes.push_back(g.edge(e).to);
  return nodes;
}

std::vector<Path> yen_k_shortest_paths(const Digraph& g, NodeId source, NodeId target,
                                       std::size_t k) {
  std::vector<Path> result;
  if (k == 0) return result;
  auto first = shortest_path(g, source, target);
  if (!first) return result;
  result.push_back(std::move(*first));

  // Candidate set ordered by (cost, edge sequence) for determinism.
  const auto candidate_less = [](const Path& a, const Path& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.edges < b.edges;
  };
  std::set<Path, decltype(candidate_less)> candidates(candidate_less);

  std::vector<bool> edge_enabled(g.edge_count(), true);

  while (result.size() < k) {
    const Path& prev = result.back();
    const std::vector<NodeId> prev_nodes = path_nodes(g, prev, source);

    for (std::size_t i = 0; i + 1 < prev_nodes.size(); ++i) {
      const NodeId spur_node = prev_nodes[i];
      // Root = prefix of prev up to spur node.
      Path root;
      root.edges.assign(prev.edges.begin(),
                        prev.edges.begin() + static_cast<std::ptrdiff_t>(i));
      for (const EdgeId e : root.edges) root.cost += g.edge(e).weight;

      std::fill(edge_enabled.begin(), edge_enabled.end(), true);
      // Remove edges that would recreate an already-found path sharing the
      // same root.
      for (const Path& found : result) {
        if (found.edges.size() > i &&
            std::equal(root.edges.begin(), root.edges.end(), found.edges.begin())) {
          edge_enabled[found.edges[i]] = false;
        }
      }
      for (const Path& cand : candidates) {
        if (cand.edges.size() > i &&
            std::equal(root.edges.begin(), root.edges.end(), cand.edges.begin())) {
          edge_enabled[cand.edges[i]] = false;
        }
      }
      // Remove root nodes (except the spur node) to keep paths loopless.
      for (std::size_t j = 0; j < i; ++j) {
        const NodeId banned = prev_nodes[j];
        for (const EdgeId e : g.out_edges(banned)) edge_enabled[e] = false;
        for (const EdgeId e : g.in_edges(banned)) edge_enabled[e] = false;
      }

      const auto spur = shortest_path(g, spur_node, target, edge_enabled);
      if (!spur) continue;
      Path total = root;
      total.edges.insert(total.edges.end(), spur->edges.begin(), spur->edges.end());
      total.cost += spur->cost;
      candidates.insert(std::move(total));
    }

    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace smn::graph
