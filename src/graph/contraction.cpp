#include "graph/contraction.h"

#include <map>
#include <stdexcept>

namespace smn::graph {

bool Partition::valid_for(const Digraph& g) const noexcept {
  if (group_of.size() != g.node_count()) return false;
  for (const NodeId group : group_of) {
    if (group >= group_names.size()) return false;
  }
  return true;
}

ContractedGraph contract(const Digraph& g, const Partition& partition) {
  if (!partition.valid_for(g)) {
    throw std::invalid_argument("contract: partition does not cover the graph");
  }
  ContractedGraph result;
  result.node_map = partition.group_of;
  for (const std::string& name : partition.group_names) {
    result.coarse.add_node(name);
  }

  // Merge parallel fine edges into one coarse edge per (group, group) pair.
  std::map<std::pair<NodeId, NodeId>, EdgeId> coarse_edges;
  result.edge_map.assign(g.edge_count(), kInvalidEdge);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& fine = g.edge(e);
    const NodeId from = partition.group_of[fine.from];
    const NodeId to = partition.group_of[fine.to];
    if (from == to) continue;  // intra-group edge disappears
    const auto key = std::make_pair(from, to);
    const auto it = coarse_edges.find(key);
    if (it == coarse_edges.end()) {
      const EdgeId ce = result.coarse.add_edge(from, to, fine.weight, fine.capacity);
      coarse_edges.emplace(key, ce);
      result.edge_members.emplace_back(1, e);
      result.edge_map[e] = ce;
    } else {
      Edge& coarse = result.coarse.mutable_edge(it->second);
      coarse.capacity += fine.capacity;
      coarse.weight = std::min(coarse.weight, fine.weight);
      result.edge_members[it->second].push_back(e);
      result.edge_map[e] = it->second;
    }
  }
  return result;
}

Partition partition_by_name_prefix(const Digraph& g, char delimiter) {
  Partition partition;
  partition.group_of.resize(g.node_count());
  std::map<std::string, NodeId> groups;
  std::string prefix;  // reused across nodes; assign() keeps the capacity
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const std::string& name = g.node_name(n);
    const std::size_t pos = name.find(delimiter);
    prefix.assign(name, 0, pos == std::string::npos ? name.size() : pos);
    const auto it = groups.find(prefix);
    if (it == groups.end()) {
      const auto id = static_cast<NodeId>(partition.group_names.size());
      groups.emplace(prefix, id);
      partition.group_names.push_back(prefix);
      partition.group_of[n] = id;
    } else {
      partition.group_of[n] = it->second;
    }
  }
  return partition;
}

}  // namespace smn::graph
