// Dense primal simplex for small linear programs:
//
//   maximize    c' x
//   subject to  A x <= b,   x >= 0,   b >= 0
//
// Used as the exact reference for the approximate MCF solver in tests and
// for small coarse-graph TE instances (after supernode coarsening the LP
// has tens of variables, which is precisely the tractability §4 claims).
// Bland's rule guarantees termination.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace smn::lp {

enum class LpStatus { kOptimal, kUnbounded, kInfeasible, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;

  bool optimal() const noexcept { return status == LpStatus::kOptimal; }
};

/// LP model builder. Rows are <= constraints with non-negative rhs
/// (the standard form the TE/planning formulations produce naturally,
/// since capacities and demands are non-negative).
class LinearProgram {
 public:
  /// Creates a program with `num_vars` variables, all with objective
  /// coefficient 0 until set.
  explicit LinearProgram(std::size_t num_vars);

  std::size_t num_vars() const noexcept { return objective_.size(); }
  std::size_t num_constraints() const noexcept { return rhs_.size(); }

  /// Sets the objective coefficient of variable `var`.
  void set_objective(std::size_t var, double coefficient);

  /// Adds `sum(coefficients[i] * x[vars[i]]) <= rhs`; rhs must be >= 0.
  void add_constraint(const std::vector<std::size_t>& vars,
                      const std::vector<double>& coefficients, double rhs);

  /// Solves with dense tableau simplex. `max_iterations` guards against
  /// pathological cycling beyond Bland's protection.
  LpResult maximize(std::size_t max_iterations = 100000) const;

 private:
  std::vector<double> objective_;
  std::vector<std::vector<double>> rows_;  ///< dense coefficient rows
  std::vector<double> rhs_;
};

}  // namespace smn::lp
