#include "lp/mcf.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "graph/ch.h"
#include "util/contracts.h"

namespace smn::lp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Warm-start lookup key: NodeId is 32-bit, so an endpoint pair packs into
/// one 64-bit word.
std::uint64_t endpoint_key(graph::NodeId src, graph::NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint64_t>(dst);
}

/// A cached path survives into the current solve only if it is still a
/// contiguous src->dst walk over in-range, positive-capacity edges.
bool path_valid(const graph::Digraph& g, graph::NodeId src, graph::NodeId dst,
                const std::vector<graph::EdgeId>& path) {
  if (path.empty()) return false;
  graph::NodeId cursor = src;
  for (const graph::EdgeId e : path) {
    if (e >= g.edge_count()) return false;
    const graph::Edge& edge = g.edge(e);
    if (edge.from != cursor || edge.capacity <= 0.0) return false;
    cursor = edge.to;
  }
  return cursor == dst;
}

}  // namespace

McfResult max_concurrent_flow(const graph::Digraph& g, const std::vector<Commodity>& commodities,
                              const McfOptions& options) {
  if (options.epsilon <= 0.0 || options.epsilon >= 1.0) {
    throw std::invalid_argument("max_concurrent_flow: epsilon must be in (0, 1)");
  }
  std::vector<std::size_t> active;
  for (std::size_t j = 0; j < commodities.size(); ++j) {
    const Commodity& c = commodities[j];
    if (c.demand < 0.0) throw std::invalid_argument("max_concurrent_flow: negative demand");
    if (c.src >= g.node_count() || c.dst >= g.node_count()) {
      throw std::invalid_argument("max_concurrent_flow: commodity endpoint out of range");
    }
    if (c.demand > 0.0 && c.src != c.dst) active.push_back(j);
  }

  McfResult result;
  result.edge_flow.assign(g.edge_count(), 0.0);
  result.routed.assign(commodities.size(), 0.0);
  if (active.empty() || g.edge_count() == 0) {
    // Nothing to route (or nothing to route over): zero concurrent flow.
    result.lambda = 0.0;
    return result;
  }

  const double eps = options.epsilon;
  const auto m = static_cast<double>(g.edge_count());
  const double delta = std::pow(m / (1.0 - eps), -1.0 / eps);

  // Edge lengths are the multiplicative-weights duals; +inf disables
  // zero-capacity edges inside the Dijkstra. The dual objective
  // D(l) = sum_e c_e * l_e is maintained incrementally on every length
  // bump — no edge rescans after this initial pass.
  std::vector<double> length(g.edge_count(), 0.0);
  double dual = 0.0;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const double cap = g.edge(e).capacity;
    SMN_DCHECK(cap >= 0.0, "negative edge capacity reached the MCF oracle");
    length[e] = cap > 0.0 ? delta / cap : kInf;
    if (cap > 0.0) dual += cap * length[e];
  }

  // Raw (unscaled) flows accumulated across phases.
  std::vector<double> raw_edge_flow(g.edge_count(), 0.0);
  std::vector<double> raw_routed(commodities.size(), 0.0);
  struct RawPath {
    std::size_t commodity;
    std::vector<graph::EdgeId> edges;
    double flow;
  };
  std::vector<RawPath> raw_paths;
  raw_paths.reserve(active.size() * 8);  // avoid repeated growth reallocs

  bool some_routable = false;
  graph::DijkstraWorkspace workspace;
  // One adjacency snapshot serves every search this solve; the graph is
  // immutable here, only the length array evolves.
  const graph::CsrAdjacency csr(g);

  // Optional contraction-hierarchy oracle: re-customized to the evolving
  // dual lengths lazily (once per batch of length bumps, counted as one
  // sp_call) and then answering exact point queries for that metric.
  graph::ContractionHierarchy* const ch = options.ch;
  if (ch != nullptr) {
    SMN_CHECK(ch->built(), "McfOptions::ch must be built before the solve");
    SMN_CHECK(ch->options().customizable,
              "McfOptions::ch must be built with ChOptions::customizable");
    SMN_CHECK(ch->node_count() == g.node_count(), "McfOptions::ch node-count mismatch");
    SMN_CHECK(ch->metric().size() == g.edge_count(), "McfOptions::ch edge-count mismatch");
  }
  std::optional<graph::ChSearch> ch_search;
  if (ch != nullptr) ch_search.emplace(*ch);
  bool ch_stale = true;
  /// Extracts the current shortest path for commodity `j` into `out`
  /// (empty = unreachable), refreshing the customization first if any
  /// augmentation has bumped the lengths since the last refresh.
  const auto ch_extract = [&](std::size_t j, std::vector<graph::EdgeId>& out) {
    if (ch_stale) {
      ch->customize(length);
      ch_stale = false;
      ++result.sp_calls;
    }
    std::optional<graph::Path> found =
        ch_search->shortest_path(commodities[j].src, commodities[j].dst);
    if (found.has_value()) {
      out = std::move(found->edges);
    } else {
      out.clear();
    }
  };

  /// Sends one augmentation for commodity `j` along `path` (the bottleneck
  /// amount), bumps the traversed lengths, and accumulates the dual
  /// increment. Returns the amount sent; the caller records the path.
  const auto apply_flow = [&](std::size_t j, const std::vector<graph::EdgeId>& path,
                              double remaining) {
    some_routable = true;
    double bottleneck = remaining;
    for (const graph::EdgeId e : path) {
      bottleneck = std::min(bottleneck, g.edge(e).capacity);
    }
    for (const graph::EdgeId e : path) {
      const double cap = g.edge(e).capacity;
      raw_edge_flow[e] += bottleneck;
      const double old_len = length[e];
      length[e] = old_len * (1.0 + eps * bottleneck / cap);
      dual += cap * (length[e] - old_len);
    }
    raw_routed[j] += bottleneck;
    ch_stale = true;
    return bottleneck;
  };

  if (options.batch_by_source) {
    // Group active commodities by source (first-appearance order, members
    // in commodity order — the schedule is deterministic).
    struct SourceGroup {
      graph::NodeId src = graph::kInvalidNode;
      std::vector<std::size_t> members;
    };
    std::vector<SourceGroup> groups;
    {
      std::unordered_map<graph::NodeId, std::size_t> index;
      for (const std::size_t j : active) {
        const auto [it, inserted] = index.try_emplace(commodities[j].src, groups.size());
        if (inserted) groups.push_back({commodities[j].src, {}});
        groups[it->second].members.push_back(j);
      }
    }

    // Fleischer-style path caching: a commodity keeps routing along its
    // last path until that path's current length exceeds (1 + eps) times
    // the length it had when cached — only then does the group rebuild its
    // shortest-path tree. Each group keeps its own workspace so a tree
    // built in one phase keeps serving later phases until it actually goes
    // stale; every member re-caches off each rebuild, so one Dijkstra
    // absorbs the whole group's upcoming invalidations.
    std::vector<double> remaining(commodities.size(), 0.0);
    std::vector<std::vector<graph::EdgeId>> cached_path(commodities.size());
    std::vector<double> cached_len(commodities.size(), 0.0);
    std::vector<char> unreachable(commodities.size(), 0);
    // Index into raw_paths of the entry accumulating cached_path[j]'s flow;
    // consecutive augmentations along an unchanged path merge into it.
    constexpr std::size_t kNoEntry = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> path_entry(commodities.size(), kNoEntry);
    const auto path_length_now = [&length](const std::vector<graph::EdgeId>& path) {
      double total = 0.0;
      for (const graph::EdgeId e : path) total += length[e];
      return total;
    };
    std::vector<graph::DijkstraWorkspace> group_ws(groups.size());
    std::vector<std::vector<graph::NodeId>> group_targets(groups.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      for (const std::size_t j : groups[gi].members) {
        group_targets[gi].push_back(commodities[j].dst);
      }
    }

    // Rebuilds group gi's tree under the current lengths and re-caches every
    // member that is not already proven unreachable. The tree always covers
    // all member destinations (not just currently-open ones) because it may
    // outlive this phase. Reachability is static, so an empty path off a
    // fresh tree permanently retires that commodity (lambda will be 0).
    const auto rebuild_group = [&](std::size_t gi) {
      const SourceGroup& group = groups[gi];
      group_ws[gi].run(g, {.source = group.src,
                           .targets = &group_targets[gi],
                           .edge_length = &length,
                           .csr = &csr});
      ++result.sp_calls;
      for (const std::size_t t : group.members) {
        if (unreachable[t]) continue;
        group_ws[gi].path_into(g, group.src, commodities[t].dst, cached_path[t]);
        if (cached_path[t].empty()) {
          unreachable[t] = 1;
          remaining[t] = 0.0;
          continue;
        }
        cached_len[t] = path_length_now(cached_path[t]);
        path_entry[t] = kNoEntry;
      }
    };

    // Cross-solve warm start (McfPathCache): seed each cached commodity's
    // active path from the previous solve's surviving path set. Warm
    // commodities never touch the Dijkstra oracle — when their path goes
    // stale they re-select the currently-shortest cached alternative
    // instead of triggering a tree rebuild.
    McfPathCache* const warm = ch == nullptr ? options.warm_start : nullptr;
    std::vector<std::vector<std::vector<graph::EdgeId>>> warm_paths(
        warm != nullptr ? commodities.size() : 0);
    // Picks the cached alternative of commodity j that is shortest under the
    // current duals and makes it the active path.
    const auto warm_reselect = [&](std::size_t j) {
      std::size_t best = 0;
      double best_len = kInf;
      for (std::size_t p = 0; p < warm_paths[j].size(); ++p) {
        const double len = path_length_now(warm_paths[j][p]);
        if (len < best_len) {
          best_len = len;
          best = p;
        }
      }
      cached_path[j] = warm_paths[j][best];
      cached_len[j] = best_len;
      path_entry[j] = kNoEntry;
    };
    if (warm != nullptr) {
      warm->hits = warm->misses = warm->invalidated = 0;
      std::unordered_map<std::uint64_t, const McfPathCache::Entry*> by_endpoints;
      by_endpoints.reserve(warm->entries.size());
      for (const McfPathCache::Entry& entry : warm->entries) {
        by_endpoints.emplace(endpoint_key(entry.src, entry.dst), &entry);
      }
      for (const std::size_t j : active) {
        const Commodity& c = commodities[j];
        const auto it = by_endpoints.find(endpoint_key(c.src, c.dst));
        if (it != by_endpoints.end()) {
          for (const std::vector<graph::EdgeId>& path : it->second->paths) {
            if (path_valid(g, c.src, c.dst, path)) {
              warm_paths[j].push_back(path);
            } else {
              ++warm->invalidated;
            }
          }
        }
        if (warm_paths[j].empty()) {
          ++warm->misses;
          continue;
        }
        ++warm->hits;
        warm_reselect(j);
      }
      result.warm_hits = warm->hits;
      result.warm_misses = warm->misses;
    }

    // Phase index of each group's last tree rebuild (so a group rebuilds at
    // most once per phase; later invalidations in the same phase re-extract
    // from the existing — possibly slightly stale — tree, and a group whose
    // caches stay valid skips whole phases entirely).
    constexpr std::size_t kNeverBuilt = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> last_rebuild(groups.size(), kNeverBuilt);

    for (std::size_t phase = 0; phase < options.max_phases && dual < 1.0; ++phase) {
      bool phase_progress = false;
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const SourceGroup& group = groups[gi];
        for (const std::size_t j : group.members) {
          remaining[j] = unreachable[j] ? 0.0 : commodities[j].demand;
        }
        bool group_active = true;
        while (group_active && dual < 1.0) {
          group_active = false;
          for (const std::size_t j : group.members) {
            if (remaining[j] <= 0.0) continue;
            if (dual >= 1.0) break;
            if (cached_path[j].empty() ||
                path_length_now(cached_path[j]) > (1.0 + eps) * cached_len[j]) {
              if (warm != nullptr && !warm_paths[j].empty()) {
                // Warm commodity: swap to the currently-shortest cached
                // alternative instead of consulting the shortest-path
                // oracle. Every cached path has finite length (validated
                // positive capacities), so the commodity keeps augmenting
                // and the dual keeps growing — termination is unaffected.
                warm_reselect(j);
                ++result.warm_reselects;
              } else if (ch != nullptr) {
                // Hierarchy oracle: one lazy customize covers every stale
                // commodity until the next augmentation, and each member is
                // a point query — no group tree to rebuild or share.
                ch_extract(j, cached_path[j]);
                if (cached_path[j].empty()) {
                  unreachable[j] = 1;
                  remaining[j] = 0.0;
                  continue;
                }
                cached_len[j] = path_length_now(cached_path[j]);
                path_entry[j] = kNoEntry;
              } else if (last_rebuild[gi] != phase) {
                rebuild_group(gi);
                last_rebuild[gi] = phase;
              } else {
                // Tree already rebuilt this phase: re-extract just j. The
                // group's trees always cover every member destination, so an
                // empty path still means permanently unreachable.
                group_ws[gi].path_into(g, group.src, commodities[j].dst, cached_path[j]);
                if (cached_path[j].empty()) {
                  unreachable[j] = 1;
                  remaining[j] = 0.0;
                  continue;
                }
                cached_len[j] = path_length_now(cached_path[j]);
                path_entry[j] = kNoEntry;
              }
              if (remaining[j] <= 0.0) continue;  // j itself was unreachable
            }
            // One augmentation per member per round keeps the schedule fair
            // (and matches the unbatched per-phase rotation).
            const double sent = apply_flow(j, cached_path[j], remaining[j]);
            remaining[j] -= sent;
            if (path_entry[j] == kNoEntry) {
              path_entry[j] = raw_paths.size();
              raw_paths.push_back({j, cached_path[j], sent});
            } else {
              raw_paths[path_entry[j]].flow += sent;
            }
            phase_progress = true;
            if (remaining[j] > 0.0) group_active = true;
          }
        }
      }
      // A full phase that routed nothing can never make progress later —
      // lengths only move when flow does. (All-zero-capacity graphs and
      // fully-disconnected demand sets hit this.)
      if (!phase_progress) break;
    }
  } else {
    // Legacy schedule: one shortest-path query per augmentation, per
    // commodity (Dijkstra, or a hierarchy point query when ch is set).
    std::vector<graph::EdgeId> aug;
    for (std::size_t phase = 0; phase < options.max_phases && dual < 1.0; ++phase) {
      bool phase_progress = false;
      for (const std::size_t j : active) {
        double remaining = commodities[j].demand;
        while (remaining > 0.0 && dual < 1.0) {
          if (ch != nullptr) {
            ch_extract(j, aug);
          } else {
            workspace.run(g, {.source = commodities[j].src,
                              .target = commodities[j].dst,
                              .edge_length = &length,
                              .csr = &csr});
            ++result.sp_calls;
            workspace.path_into(g, commodities[j].src, commodities[j].dst, aug);
          }
          if (aug.empty()) break;  // disconnected commodity; lambda will be 0
          const double sent = apply_flow(j, aug, remaining);
          remaining -= sent;
          raw_paths.push_back({j, aug, sent});
          phase_progress = true;
        }
      }
      if (!phase_progress) break;
    }
  }

  if (!some_routable) {
    result.lambda = 0.0;
    return result;
  }

  // The raw flow may violate capacities by up to log_{1+eps}(1/delta);
  // instead of the analytic scale we certify feasibility directly.
  double scale = kInf;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    if (raw_edge_flow[e] > 0.0) {
      scale = std::min(scale, g.edge(e).capacity / raw_edge_flow[e]);
    }
  }
  if (scale == kInf) scale = 0.0;

  double lambda = kInf;
  for (const std::size_t j : active) {
    lambda = std::min(lambda, raw_routed[j] * scale / commodities[j].demand);
  }
  if (lambda == kInf) lambda = 0.0;

  result.lambda = lambda;
  SMN_CHECK(lambda >= 0.0, "certified lambda must be non-negative");
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    result.edge_flow[e] = raw_edge_flow[e] * scale;
    // The rescale certifies feasibility; a violation here means the scale
    // computation and the flow accumulation disagree on some edge.
    SMN_DCHECK(result.edge_flow[e] <= g.edge(e).capacity * (1.0 + 1e-9),
               "rescaled flow exceeds capacity");
  }
  for (std::size_t j = 0; j < commodities.size(); ++j) {
    result.routed[j] = raw_routed[j] * scale;
    result.total_flow += result.routed[j];
  }
  result.paths.reserve(raw_paths.size());
  for (RawPath& p : raw_paths) {
    result.paths.push_back(PathFlow{p.commodity, std::move(p.edges), p.flow * scale});
  }

  if (options.warm_start != nullptr && ch == nullptr && options.batch_by_source) {
    // Rewrite the cache with this solve's own certified path set: per
    // commodity, up to kWarmPathsPerCommodity distinct paths, highest flow
    // first. Consumption stats (hits/misses/invalidated) are left intact
    // for the caller to read.
    McfPathCache& cache = *options.warm_start;
    cache.entries.clear();
    std::vector<std::vector<std::size_t>> by_commodity(commodities.size());
    for (std::size_t i = 0; i < result.paths.size(); ++i) {
      by_commodity[result.paths[i].commodity].push_back(i);
    }
    McfPathCache::Entry entry;
    for (const std::size_t j : active) {
      std::vector<std::size_t>& idx = by_commodity[j];
      if (idx.empty()) continue;
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return result.paths[a].flow > result.paths[b].flow;
      });
      entry.src = commodities[j].src;
      entry.dst = commodities[j].dst;
      for (const std::size_t i : idx) {
        if (entry.paths.size() >= kWarmPathsPerCommodity) break;
        const std::vector<graph::EdgeId>& path = result.paths[i].edges;
        if (std::find(entry.paths.begin(), entry.paths.end(), path) == entry.paths.end()) {
          entry.paths.push_back(path);
        }
      }
      cache.entries.push_back(std::move(entry));
      entry.paths.clear();
    }
  }
  return result;
}

FixedRoutingResult evaluate_fixed_routing(const graph::Digraph& g,
                                          const std::vector<Commodity>& commodities,
                                          const std::vector<RoutedDemand>& routing) {
  FixedRoutingResult result;
  result.edge_load.assign(g.edge_count(), 0.0);
  for (const RoutedDemand& r : routing) {
    const double amount = commodities.at(r.commodity).demand * r.fraction;
    for (const graph::EdgeId e : r.edges) result.edge_load.at(e) += amount;
  }
  double lambda = kInf;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const double cap = g.edge(e).capacity;
    if (result.edge_load[e] > 0.0) {
      if (cap <= 0.0) {
        lambda = 0.0;
      } else {
        lambda = std::min(lambda, cap / result.edge_load[e]);
        result.max_utilization = std::max(result.max_utilization, result.edge_load[e] / cap);
      }
    }
  }
  result.lambda = lambda == kInf ? 0.0 : lambda;
  return result;
}

double greedy_admitted_demand(const graph::Digraph& g, const std::vector<Commodity>& commodities,
                              const std::vector<RoutedDemand>& routing) {
  std::vector<double> residual(g.edge_count());
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) residual[e] = g.edge(e).capacity;
  double admitted = 0.0;
  for (const RoutedDemand& r : routing) {
    const double want = commodities.at(r.commodity).demand * r.fraction;
    if (want <= 0.0) continue;
    double bottleneck = want;
    for (const graph::EdgeId e : r.edges) bottleneck = std::min(bottleneck, residual[e]);
    if (bottleneck <= 0.0) continue;
    for (const graph::EdgeId e : r.edges) residual[e] -= bottleneck;
    admitted += bottleneck;
  }
  return admitted;
}

}  // namespace smn::lp
