#include "lp/mcf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace smn::lp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dijkstra under an explicit per-edge length function, skipping
/// zero-capacity edges. Returns the edge path or empty when unreachable.
std::vector<graph::EdgeId> shortest_by_length(const graph::Digraph& g,
                                              const std::vector<double>& length,
                                              graph::NodeId src, graph::NodeId dst) {
  std::vector<double> dist(g.node_count(), kInf);
  std::vector<graph::EdgeId> parent(g.node_count(), graph::kInvalidEdge);
  using Item = std::pair<double, graph::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[src] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (node == dst) break;
    if (d > dist[node]) continue;
    for (const graph::EdgeId e : g.out_edges(node)) {
      const graph::Edge& edge = g.edge(e);
      if (edge.capacity <= 0.0) continue;
      const double nd = d + length[e];
      if (nd < dist[edge.to]) {
        dist[edge.to] = nd;
        parent[edge.to] = e;
        heap.emplace(nd, edge.to);
      }
    }
  }
  std::vector<graph::EdgeId> path;
  if (dist[dst] == kInf) return path;
  for (graph::NodeId node = dst; node != src;) {
    const graph::EdgeId e = parent[node];
    path.push_back(e);
    node = g.edge(e).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

McfResult max_concurrent_flow(const graph::Digraph& g, const std::vector<Commodity>& commodities,
                              const McfOptions& options) {
  if (options.epsilon <= 0.0 || options.epsilon >= 1.0) {
    throw std::invalid_argument("max_concurrent_flow: epsilon must be in (0, 1)");
  }
  std::vector<std::size_t> active;
  for (std::size_t j = 0; j < commodities.size(); ++j) {
    const Commodity& c = commodities[j];
    if (c.demand < 0.0) throw std::invalid_argument("max_concurrent_flow: negative demand");
    if (c.src >= g.node_count() || c.dst >= g.node_count()) {
      throw std::invalid_argument("max_concurrent_flow: commodity endpoint out of range");
    }
    if (c.demand > 0.0 && c.src != c.dst) active.push_back(j);
  }

  McfResult result;
  result.edge_flow.assign(g.edge_count(), 0.0);
  result.routed.assign(commodities.size(), 0.0);
  if (active.empty() || g.edge_count() == 0) {
    result.lambda = active.empty() ? kInf : 0.0;
    if (active.empty()) result.lambda = 0.0;
    return result;
  }

  const double eps = options.epsilon;
  const auto m = static_cast<double>(g.edge_count());
  const double delta = std::pow(m / (1.0 - eps), -1.0 / eps);

  std::vector<double> length(g.edge_count(), 0.0);
  double dual = 0.0;  // D(l) = sum_e c_e * l_e
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const double cap = g.edge(e).capacity;
    length[e] = cap > 0.0 ? delta / cap : kInf;
    if (cap > 0.0) dual += cap * length[e];
  }

  // Raw (unscaled) flows accumulated across phases.
  std::vector<double> raw_edge_flow(g.edge_count(), 0.0);
  std::vector<double> raw_routed(commodities.size(), 0.0);
  struct RawPath {
    std::size_t commodity;
    std::vector<graph::EdgeId> edges;
    double flow;
  };
  std::vector<RawPath> raw_paths;

  bool some_routable = false;
  for (std::size_t phase = 0; phase < options.max_phases && dual < 1.0; ++phase) {
    for (const std::size_t j : active) {
      double remaining = commodities[j].demand;
      while (remaining > 0.0 && dual < 1.0) {
        const auto path =
            shortest_by_length(g, length, commodities[j].src, commodities[j].dst);
        ++result.sp_calls;
        if (path.empty()) {
          remaining = 0.0;  // disconnected commodity; lambda will be 0
          break;
        }
        some_routable = true;
        double bottleneck = remaining;
        for (const graph::EdgeId e : path) {
          bottleneck = std::min(bottleneck, g.edge(e).capacity);
        }
        for (const graph::EdgeId e : path) {
          const double cap = g.edge(e).capacity;
          raw_edge_flow[e] += bottleneck;
          const double old_len = length[e];
          length[e] = old_len * (1.0 + eps * bottleneck / cap);
          dual += cap * (length[e] - old_len);
        }
        raw_routed[j] += bottleneck;
        raw_paths.push_back({j, path, bottleneck});
        remaining -= bottleneck;
      }
    }
  }

  if (!some_routable) {
    result.lambda = 0.0;
    return result;
  }

  // The raw flow may violate capacities by up to log_{1+eps}(1/delta);
  // instead of the analytic scale we certify feasibility directly.
  double scale = kInf;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    if (raw_edge_flow[e] > 0.0) {
      scale = std::min(scale, g.edge(e).capacity / raw_edge_flow[e]);
    }
  }
  if (scale == kInf) scale = 0.0;

  double lambda = kInf;
  for (const std::size_t j : active) {
    lambda = std::min(lambda, raw_routed[j] * scale / commodities[j].demand);
  }
  if (lambda == kInf) lambda = 0.0;

  result.lambda = lambda;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    result.edge_flow[e] = raw_edge_flow[e] * scale;
  }
  for (std::size_t j = 0; j < commodities.size(); ++j) {
    result.routed[j] = raw_routed[j] * scale;
    result.total_flow += result.routed[j];
  }
  result.paths.reserve(raw_paths.size());
  for (RawPath& p : raw_paths) {
    result.paths.push_back(PathFlow{p.commodity, std::move(p.edges), p.flow * scale});
  }
  return result;
}

FixedRoutingResult evaluate_fixed_routing(const graph::Digraph& g,
                                          const std::vector<Commodity>& commodities,
                                          const std::vector<RoutedDemand>& routing) {
  FixedRoutingResult result;
  result.edge_load.assign(g.edge_count(), 0.0);
  for (const RoutedDemand& r : routing) {
    const double amount = commodities.at(r.commodity).demand * r.fraction;
    for (const graph::EdgeId e : r.edges) result.edge_load.at(e) += amount;
  }
  double lambda = kInf;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const double cap = g.edge(e).capacity;
    if (result.edge_load[e] > 0.0) {
      if (cap <= 0.0) {
        lambda = 0.0;
      } else {
        lambda = std::min(lambda, cap / result.edge_load[e]);
        result.max_utilization = std::max(result.max_utilization, result.edge_load[e] / cap);
      }
    }
  }
  result.lambda = lambda == kInf ? 0.0 : lambda;
  return result;
}

double greedy_admitted_demand(const graph::Digraph& g, const std::vector<Commodity>& commodities,
                              const std::vector<RoutedDemand>& routing) {
  std::vector<double> residual(g.edge_count());
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) residual[e] = g.edge(e).capacity;
  double admitted = 0.0;
  for (const RoutedDemand& r : routing) {
    const double want = commodities.at(r.commodity).demand * r.fraction;
    if (want <= 0.0) continue;
    double bottleneck = want;
    for (const graph::EdgeId e : r.edges) bottleneck = std::min(bottleneck, residual[e]);
    if (bottleneck <= 0.0) continue;
    for (const graph::EdgeId e : r.edges) residual[e] -= bottleneck;
    admitted += bottleneck;
  }
  return admitted;
}

}  // namespace smn::lp
