#include "lp/simplex.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace smn::lp {

namespace {
constexpr double kEps = 1e-9;
}

LinearProgram::LinearProgram(std::size_t num_vars) : objective_(num_vars, 0.0) {
  if (num_vars == 0) throw std::invalid_argument("LinearProgram: need at least one variable");
}

void LinearProgram::set_objective(std::size_t var, double coefficient) {
  objective_.at(var) = coefficient;
}

void LinearProgram::add_constraint(const std::vector<std::size_t>& vars,
                                   const std::vector<double>& coefficients, double rhs) {
  if (vars.size() != coefficients.size()) {
    throw std::invalid_argument("add_constraint: vars/coefficients size mismatch");
  }
  if (rhs < 0.0) {
    throw std::invalid_argument("add_constraint: negative rhs not supported (standard form)");
  }
  std::vector<double> row(num_vars(), 0.0);
  for (std::size_t i = 0; i < vars.size(); ++i) row.at(vars[i]) += coefficients[i];
  rows_.push_back(std::move(row));
  rhs_.push_back(rhs);
}

LpResult LinearProgram::maximize(std::size_t max_iterations) const {
  // Since b >= 0 the all-slack basis is feasible; no phase-1 needed.
  const std::size_t n = num_vars();
  const std::size_t m = num_constraints();
  LpResult result;
  result.x.assign(n, 0.0);

  if (m == 0) {
    // Unconstrained: optimal iff no positive objective coefficient.
    for (const double c : objective_) {
      if (c > kEps) {
        result.status = LpStatus::kUnbounded;
        return result;
      }
    }
    result.status = LpStatus::kOptimal;
    return result;
  }

  // Tableau: m rows x (n + m + 1) columns (vars, slacks, rhs).
  const std::size_t cols = n + m + 1;
  std::vector<std::vector<double>> tableau(m, std::vector<double>(cols, 0.0));
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) tableau[r][c] = rows_[r][c];
    tableau[r][n + r] = 1.0;
    tableau[r][cols - 1] = rhs_[r];
  }
  // Objective row (stored negated so positive entries indicate improving
  // columns after the standard z-row transformation).
  std::vector<double> z(cols, 0.0);
  for (std::size_t c = 0; c < n; ++c) z[c] = objective_[c];

  std::vector<std::size_t> basis(m);
  for (std::size_t r = 0; r < m; ++r) basis[r] = n + r;

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Bland's rule: smallest-index entering column with positive z.
    std::size_t pivot_col = cols;
    for (std::size_t c = 0; c + 1 < cols; ++c) {
      if (z[c] > kEps) {
        pivot_col = c;
        break;
      }
    }
    if (pivot_col == cols) {
      // Optimal.
      result.status = LpStatus::kOptimal;
      for (std::size_t r = 0; r < m; ++r) {
        if (basis[r] < n) result.x[basis[r]] = tableau[r][cols - 1];
      }
      double obj = 0.0;
      for (std::size_t c = 0; c < n; ++c) obj += objective_[c] * result.x[c];
      result.objective = obj;
      return result;
    }

    // Ratio test with Bland tie-breaking on basis index.
    std::size_t pivot_row = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m; ++r) {
      const double a = tableau[r][pivot_col];
      if (a > kEps) {
        const double ratio = tableau[r][cols - 1] / a;
        if (ratio < best_ratio - kEps ||
            (std::abs(ratio - best_ratio) <= kEps &&
             (pivot_row == m || basis[r] < basis[pivot_row]))) {
          best_ratio = ratio;
          pivot_row = r;
        }
      }
    }
    if (pivot_row == m) {
      result.status = LpStatus::kUnbounded;
      return result;
    }

    // Pivot.
    const double pivot = tableau[pivot_row][pivot_col];
    for (double& v : tableau[pivot_row]) v /= pivot;
    for (std::size_t r = 0; r < m; ++r) {
      if (r == pivot_row) continue;
      const double factor = tableau[r][pivot_col];
      if (std::abs(factor) <= kEps) continue;
      for (std::size_t c = 0; c < cols; ++c) tableau[r][c] -= factor * tableau[pivot_row][c];
    }
    const double zfactor = z[pivot_col];
    for (std::size_t c = 0; c < cols; ++c) z[c] -= zfactor * tableau[pivot_row][c];
    basis[pivot_row] = pivot_col;
  }

  result.status = LpStatus::kIterationLimit;
  return result;
}

}  // namespace smn::lp
