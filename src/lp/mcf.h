// Approximate maximum concurrent multi-commodity flow
// (Fleischer / Garg–Könemann multiplicative-weights scheme).
//
// This is the workhorse TE oracle: given a capacitated digraph and a demand
// matrix, it computes the largest lambda such that lambda * every demand is
// simultaneously routable. Production WAN TE (SWAN, B4, BlastShield) solves
// LPs of this shape; we need it at both the fine (300-node) and coarse
// (supernode) granularity, so an FPTAS that scales with graph size — rather
// than a dense simplex — is the appropriate substrate.
//
// The returned solution is *certified feasible*: raw multiplicative-weights
// flows are rescaled so that no edge exceeds capacity, and lambda is then
// recomputed as min_j routed_j / demand_j. Guarantee: lambda >= (1 - O(eps))
// * lambda_opt.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "graph/shortest_path.h"

namespace smn::graph {
class ContractionHierarchy;
}  // namespace smn::graph

namespace smn::lp {

struct Commodity {
  graph::NodeId src = graph::kInvalidNode;
  graph::NodeId dst = graph::kInvalidNode;
  double demand = 0.0;
};

/// One routed path with the amount of (scaled) flow it carries.
struct PathFlow {
  std::size_t commodity = 0;
  std::vector<graph::EdgeId> edges;
  double flow = 0.0;
};

struct McfResult {
  /// Fraction of every demand that is simultaneously routable.
  double lambda = 0.0;
  /// Total flow routed (sum over commodities of routed amount).
  double total_flow = 0.0;
  /// Feasible per-edge flow (indexed by EdgeId).
  std::vector<double> edge_flow;
  /// Per-commodity routed amount.
  std::vector<double> routed;
  /// Flow decomposition by path (already scaled to feasibility).
  std::vector<PathFlow> paths;
  /// Number of shortest-path computations performed (work metric).
  std::size_t sp_calls = 0;
  /// Warm-start accounting (all zero when McfOptions::warm_start is null):
  /// commodities seeded from the cache, active commodities with no usable
  /// cached path, and cached-path re-selections that replaced what would
  /// otherwise have been a shortest-path rebuild.
  std::size_t warm_hits = 0;
  std::size_t warm_misses = 0;
  std::size_t warm_reselects = 0;
};

/// Cross-solve warm-start state: the (1 + eps) path set of a previous
/// max_concurrent_flow solve, keyed by commodity endpoints so it survives
/// commodity reordering between solves. Wire the same cache object into the
/// next solve over the same (or a drifted) instance via
/// McfOptions::warm_start:
///
///   * every cached path is revalidated against the current graph (edge ids
///     in range, a contiguous src->dst walk, positive capacity on every
///     edge); failures are dropped per-path and counted in `invalidated`;
///   * a commodity with at least one surviving path routes over its cached
///     set for the whole solve, re-selecting the currently-shortest cached
///     path whenever the active one goes stale — zero shortest-path calls
///     while the cache covers it;
///   * a commodity with no usable cache falls back to the cold oracle
///     (per-source Dijkstra trees), so new or invalidated commodities cost
///     what they always did.
///
/// After the solve the cache is rewritten with the solve's own certified
/// path set (up to kWarmPathsPerCommodity highest-flow paths per
/// commodity). Quality note: warm routing restricts each cached commodity
/// to its cached paths, so the FPTAS eps guarantee is relative to the best
/// routing *within that set*; the result is still certified feasible, and
/// callers that care (the adaptive bench) gate measured fidelity against a
/// cold tight solve.
struct McfPathCache {
  struct Entry {
    graph::NodeId src = graph::kInvalidNode;
    graph::NodeId dst = graph::kInvalidNode;
    /// Alternative paths, highest previous flow first.
    std::vector<std::vector<graph::EdgeId>> paths;
  };
  std::vector<Entry> entries;
  /// Stats of the most recent solve that consumed this cache (mirrored into
  /// McfResult::warm_hits / warm_misses).
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidated = 0;

  void clear() {
    entries.clear();
    hits = misses = invalidated = 0;
  }
};

/// Paths persisted per commodity into a McfPathCache after a solve.
inline constexpr std::size_t kWarmPathsPerCommodity = 32;

struct McfOptions {
  double epsilon = 0.05;     ///< FPTAS accuracy knob
  std::size_t max_phases = 10000;  ///< safety valve
  /// Fleischer-style batching: one Dijkstra tree per source node serves
  /// every active commodity sharing that source in the current round,
  /// cutting sp_calls by the source-fanout factor. The solution is still
  /// certified feasible by the final rescale; set false to reproduce the
  /// one-Dijkstra-per-augmentation schedule.
  bool batch_by_source = true;
  /// Optional contraction-hierarchy substrate for the shortest-path oracle.
  /// Must be a *customizable* hierarchy built over the same graph (see
  /// graph/ch.h): the solver re-customizes it to the current dual lengths
  /// whenever they go stale (counted in sp_calls) and answers per-commodity
  /// point queries against it instead of building per-source-group Dijkstra
  /// trees. The flat CSR path (ch == nullptr, the default) remains the
  /// ground truth; either oracle yields a certified-feasible solution. The
  /// hierarchy is mutated (customized) during the solve, so give each
  /// concurrent solver its own copy.
  graph::ContractionHierarchy* ch = nullptr;
  /// Optional cross-solve warm start (see McfPathCache): consumed and then
  /// rewritten by the solve. Honored only on the default batched flat
  /// oracle (batch_by_source && ch == nullptr) — the legacy and hierarchy
  /// schedules ignore it. The cache must not be shared across concurrent
  /// solves.
  McfPathCache* warm_start = nullptr;
};

/// Solves max concurrent flow on `g` using edge capacities from the graph.
/// Commodities with zero demand are ignored. Edges with zero capacity are
/// unusable. Throws std::invalid_argument on malformed input.
McfResult max_concurrent_flow(const graph::Digraph& g, const std::vector<Commodity>& commodities,
                              const McfOptions& options = {});

/// Evaluates a *fixed* routing: each commodity fully routed along the given
/// per-commodity paths with the given split fractions. Returns the largest
/// lambda such that lambda * demands fit, plus per-edge loads at lambda = 1.
/// Used to realize coarse TE solutions on the fine graph (§4's restricted
/// search space) and by the capacity planner to compute utilizations.
struct FixedRoutingResult {
  double lambda = 0.0;
  std::vector<double> edge_load;  ///< load at lambda = 1
  double max_utilization = 0.0;   ///< max over edges of load/capacity
};

struct RoutedDemand {
  std::size_t commodity = 0;
  std::vector<graph::EdgeId> edges;
  double fraction = 1.0;  ///< share of the commodity's demand on this path
};

FixedRoutingResult evaluate_fixed_routing(const graph::Digraph& g,
                                          const std::vector<Commodity>& commodities,
                                          const std::vector<RoutedDemand>& routing);

/// Greedy admission along a fixed routing: commodities are processed in
/// order; each path admits as much of its share of the demand as residual
/// capacity allows. Returns total admitted Gbps. This "routable demand"
/// measure degrades smoothly as the routing quality drops, unlike the
/// max-concurrent lambda, which is pinned by the single worst link.
double greedy_admitted_demand(const graph::Digraph& g, const std::vector<Commodity>& commodities,
                              const std::vector<RoutedDemand>& routing);

}  // namespace smn::lp
