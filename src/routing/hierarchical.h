// Hierarchical routing as a coarsening (§3):
//
//   "Coarsening is implicit in earlier work. For example, hierarchical
//    routing [Kleinrock & Kamoun 1977] coarsens networks into areas to
//    reduce state at the cost of only approximately optimal routes."
//
// This module makes that precedent concrete as a third instance of the
// library's coarsening concept. A two-level scheme over an area partition:
//
//   * flat routing state: every node stores a next hop for every other
//     node — n(n-1) entries network-wide;
//   * hierarchical state: every node stores entries for nodes in its own
//     area plus one entry per foreign area — the Kleinrock–Kamoun table
//     reduction (optimal around sqrt(n)-sized areas);
//   * the price: inter-area traffic funnels through per-area gateways, so
//     paths stretch relative to true shortest paths.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/ch.h"
#include "graph/contraction.h"
#include "topology/wan.h"

namespace smn::routing {

/// One evaluated source-destination pair.
struct PathStretch {
  graph::NodeId src = 0;
  graph::NodeId dst = 0;
  double flat_cost = 0.0;
  double hierarchical_cost = 0.0;
  double stretch = 1.0;  ///< hierarchical_cost / flat_cost (>= 1)
};

struct HierarchicalRoutingReport {
  std::size_t areas = 0;
  /// Network-wide forwarding entries: flat = n(n-1); hierarchical =
  /// sum over nodes of (area_size - 1 + areas - 1).
  std::size_t flat_entries = 0;
  std::size_t hierarchical_entries = 0;
  double table_reduction = 1.0;
  double mean_stretch = 1.0;
  double p95_stretch = 1.0;
  double max_stretch = 1.0;
  /// Pairs whose hierarchical route was unreachable (disconnected areas);
  /// excluded from the stretch statistics.
  std::size_t unreachable_pairs = 0;
  std::vector<PathStretch> samples;
};

struct HierarchicalRoutingOptions {
  /// Limits evaluation cost (0 = all ordered pairs).
  std::size_t sample_pairs = 0;
  std::uint64_t seed = 17;
  /// Answer the unrestricted distances (flat baseline costs, gateway-to-
  /// gateway level-2 legs, and disconnected-area fallbacks) with point
  /// queries against a contraction hierarchy instead of full Dijkstra
  /// trees. Intra-area restricted legs always run masked Dijkstra — the
  /// area mask is a structural restriction, not a failure mask. Both
  /// settings produce identical reports; false is the ground truth.
  bool use_ch = false;
  /// Build knobs when the evaluation builds its own hierarchy.
  graph::ChOptions ch;
  /// Optional prebuilt static hierarchy over wan.graph() (Edge::weight
  /// metric); built locally when null. Ignored when use_ch is false.
  const graph::ContractionHierarchy* hierarchy = nullptr;
};

/// Evaluates two-level hierarchical routing on `wan` with areas given by
/// `partition`. Each area's gateway is its lowest-id member that has an
/// inter-area link (falling back to its lowest-id member). Inter-area
/// routes run src -> gw(src area) -> ... gateway chain ... -> gw(dst area)
/// -> dst, with intra-area legs restricted to area-internal edges where
/// possible.
HierarchicalRoutingReport evaluate_hierarchical_routing(const topology::WanTopology& wan,
                                                        const graph::Partition& partition,
                                                        const HierarchicalRoutingOptions& options);

/// Convenience overload preserving the original sample/seed signature.
HierarchicalRoutingReport evaluate_hierarchical_routing(const topology::WanTopology& wan,
                                                        const graph::Partition& partition,
                                                        std::size_t sample_pairs = 0,
                                                        std::uint64_t seed = 17);

}  // namespace smn::routing
