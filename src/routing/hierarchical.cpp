#include "routing/hierarchical.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>

#include "graph/shortest_path.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "util/stats.h"

namespace smn::routing {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

HierarchicalRoutingReport evaluate_hierarchical_routing(const topology::WanTopology& wan,
                                                        const graph::Partition& partition,
                                                        const HierarchicalRoutingOptions& options) {
  const graph::Digraph& g = wan.graph();
  if (!partition.valid_for(g)) {
    throw std::invalid_argument("evaluate_hierarchical_routing: invalid partition");
  }
  const std::size_t n = g.node_count();
  const std::size_t areas = partition.group_count();

  HierarchicalRoutingReport report;
  report.areas = areas;
  report.flat_entries = n * (n - 1);

  // Area sizes and gateways.
  std::vector<std::size_t> area_size(areas, 0);
  for (graph::NodeId node = 0; node < n; ++node) ++area_size[partition.group_of[node]];
  std::vector<graph::NodeId> gateway(areas, graph::kInvalidNode);
  for (graph::NodeId node = 0; node < n; ++node) {
    const graph::NodeId area = partition.group_of[node];
    if (gateway[area] != graph::kInvalidNode) continue;
    for (const graph::EdgeId e : g.out_edges(node)) {
      if (partition.group_of[g.edge(e).to] != area) {
        gateway[area] = node;  // first member with an inter-area link
        break;
      }
    }
  }
  for (graph::NodeId node = 0; node < n; ++node) {
    const graph::NodeId area = partition.group_of[node];
    if (gateway[area] == graph::kInvalidNode) gateway[area] = node;
  }

  // Kleinrock–Kamoun table size: own area's other members + foreign areas.
  for (graph::NodeId node = 0; node < n; ++node) {
    report.hierarchical_entries += area_size[partition.group_of[node]] - 1 + areas - 1;
  }
  report.table_reduction = report.hierarchical_entries
                               ? static_cast<double>(report.flat_entries) /
                                     static_cast<double>(report.hierarchical_entries)
                               : 0.0;

  // Unrestricted-distance substrate. The hierarchy answers point queries
  // (flat baselines, gateway legs, disconnected-area fallbacks); the flat
  // configuration materializes full Dijkstra trees instead. Distances are
  // identical either way (graph/ch.h), so the report does not depend on
  // use_ch.
  graph::ContractionHierarchy local_ch;
  const graph::ContractionHierarchy* ch = nullptr;
  std::optional<graph::ChSearch> ch_search;
  if (options.use_ch) {
    if (options.hierarchy != nullptr) {
      ch = options.hierarchy;
      SMN_CHECK(ch->built() && !ch->options().customizable,
                "hierarchical routing needs a built static hierarchy");
      SMN_CHECK(ch->node_count() == g.node_count() && ch->metric().size() == g.edge_count(),
                "hierarchical routing hierarchy does not match the WAN graph");
    } else {
      graph::ChOptions build_options = options.ch;
      build_options.customizable = false;
      local_ch.build(g, build_options);
      ch = &local_ch;
    }
    ch_search.emplace(*ch);
  }
  const auto point_cost = [&](graph::NodeId from, graph::NodeId to) -> double {
    if (from == to) return 0.0;
    const std::optional<graph::Path> path = ch_search->shortest_path(from, to);
    return path.has_value() ? path->cost : kInf;
  };

  // Level-2 routing between gateways runs on the full graph (gateway
  // chains follow physical paths); the flat path precomputes gateway trees
  // once, the hierarchy answers the same distances on demand.
  std::vector<graph::ShortestPathTree> gateway_tree;
  if (ch == nullptr) {
    gateway_tree.resize(areas);
    for (std::size_t a = 0; a < areas; ++a) gateway_tree[a] = graph::dijkstra(g, gateway[a]);
  }

  // Sample pairs.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  if (options.sample_pairs == 0) {
    for (graph::NodeId s = 0; s < n; ++s) {
      for (graph::NodeId d = 0; d < n; ++d) {
        if (s != d) pairs.emplace_back(s, d);
      }
    }
  } else {
    util::Rng rng(options.seed);
    for (std::size_t i = 0; i < options.sample_pairs; ++i) {
      const auto s = static_cast<graph::NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      auto d = static_cast<graph::NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
      if (d >= s) ++d;
      pairs.emplace_back(s, d);
    }
  }

  // Per-source flat trees, computed lazily (flat substrate only).
  std::map<graph::NodeId, graph::ShortestPathTree> flat_trees;
  const auto flat_tree = [&](graph::NodeId src) -> const graph::ShortestPathTree& {
    const auto it = flat_trees.find(src);
    if (it != flat_trees.end()) return it->second;
    return flat_trees.emplace(src, graph::dijkstra(g, src)).first->second;
  };

  // Intra-area shortest-path cost restricted to area-internal edges; falls
  // back to the unrestricted cost when the area's subgraph is disconnected.
  // The restricted leg always runs masked Dijkstra — only the fallback
  // routes through the hierarchy. `fallback_tree` is null on the hierarchy
  // substrate.
  std::vector<bool> area_mask(g.edge_count(), false);
  const auto intra_area_cost = [&](graph::NodeId from, graph::NodeId to,
                                   const graph::ShortestPathTree* fallback_tree) -> double {
    if (from == to) return 0.0;
    const graph::NodeId area = partition.group_of[from];
    for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
      area_mask[e] = partition.group_of[g.edge(e).from] == area &&
                     partition.group_of[g.edge(e).to] == area;
    }
    const graph::ShortestPathTree tree = graph::dijkstra(g, from, area_mask);
    if (tree.distance[to] != kInf) return tree.distance[to];
    if (ch_search.has_value()) return point_cost(from, to);
    return fallback_tree->distance[to];
  };

  std::vector<double> stretches;
  util::RunningStats stats;
  for (const auto& [src, dst] : pairs) {
    const graph::ShortestPathTree* from_src = nullptr;
    double flat_cost = 0.0;
    if (ch_search.has_value()) {
      flat_cost = point_cost(src, dst);
    } else {
      from_src = &flat_tree(src);
      flat_cost = from_src->distance[dst];
    }
    if (flat_cost == kInf) {
      ++report.unreachable_pairs;
      continue;
    }
    const graph::NodeId src_area = partition.group_of[src];
    const graph::NodeId dst_area = partition.group_of[dst];
    double hier_cost = 0.0;
    if (src_area == dst_area) {
      hier_cost = intra_area_cost(src, dst, from_src);
    } else {
      // src -> gw(src area) intra-area, gw -> gw level-2, gw -> dst
      // intra-area.
      const double leg1 = intra_area_cost(src, gateway[src_area], from_src);
      const double leg2 = ch_search.has_value()
                              ? point_cost(gateway[src_area], gateway[dst_area])
                              : gateway_tree[src_area].distance[gateway[dst_area]];
      const double leg3 = intra_area_cost(
          gateway[dst_area], dst, ch_search.has_value() ? nullptr : &gateway_tree[dst_area]);
      if (leg1 == kInf || leg2 == kInf || leg3 == kInf) {
        ++report.unreachable_pairs;
        continue;
      }
      hier_cost = leg1 + leg2 + leg3;
    }
    PathStretch sample;
    sample.src = src;
    sample.dst = dst;
    sample.flat_cost = flat_cost;
    sample.hierarchical_cost = hier_cost;
    sample.stretch = flat_cost > 0.0 ? std::max(1.0, hier_cost / flat_cost) : 1.0;
    stretches.push_back(sample.stretch);
    stats.add(sample.stretch);
    report.samples.push_back(sample);
  }
  if (!stretches.empty()) {
    report.mean_stretch = stats.mean();
    report.max_stretch = stats.max();
    report.p95_stretch = util::percentile(stretches, 0.95);
  }
  return report;
}

HierarchicalRoutingReport evaluate_hierarchical_routing(const topology::WanTopology& wan,
                                                        const graph::Partition& partition,
                                                        std::size_t sample_pairs,
                                                        std::uint64_t seed) {
  HierarchicalRoutingOptions options;
  options.sample_pairs = sample_pairs;
  options.seed = seed;
  return evaluate_hierarchical_routing(wan, partition, options);
}

}  // namespace smn::routing
