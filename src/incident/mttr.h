// Mean-time-to-resolution model: turns routing accuracy into the
// operational currency the war stories use ("causing resolution in hours
// because it was done manually by the cluster and WAN teams meeting").
//
// Lifecycle per incident:
//   detection -> routing -> investigation by the assigned team
//     -> (if mis-routed) the wrong team burns an investigation, bounces
//        the ticket back, a manual re-triage finds the right team, and
//        the real investigation begins.
// Investigation times are exponential; routing latency depends on whether
// the CLTO automates it (minutes) or humans triage it (tens of minutes).
#pragma once

#include <functional>
#include <vector>

#include "incident/simulator.h"
#include "util/rng.h"

namespace smn::incident {

struct MttrModel {
  double detection_minutes = 5.0;
  /// CLTO assignment latency (one control-loop tick).
  double automated_routing_minutes = 1.0;
  /// Human triage latency per routing attempt.
  double manual_routing_minutes = 30.0;
  /// Mean fix time once the *right* team investigates (exponential).
  double fix_mean_minutes = 60.0;
  /// Mean time the *wrong* team spends before bouncing (exponential).
  double wrong_team_mean_minutes = 45.0;
  /// After a bounce, re-triage is always manual and cross-team.
  double bounce_overhead_minutes = 15.0;
};

/// Samples the resolution time of one incident. `routed_correctly` is the
/// first assignment's outcome; `automated` selects the routing latency.
/// Deterministic given `rng` state.
double sample_mttr_minutes(const MttrModel& model, bool routed_correctly, bool automated,
                           util::Rng& rng);

struct MttrStats {
  double mean_minutes = 0.0;
  double p95_minutes = 0.0;
  double first_assignment_accuracy = 0.0;
};

/// Evaluates a router end to end over `incidents`: the router maps each
/// incident to a team index; correctness against `root_team` decides the
/// lifecycle taken. `automated` describes the router's assignment latency.
MttrStats evaluate_mttr(const std::vector<Incident>& incidents,
                        const std::function<std::size_t(const Incident&)>& router,
                        bool automated, const MttrModel& model = {},
                        std::uint64_t seed = 1331);

}  // namespace smn::incident
