#include "incident/simulator.h"

#include <algorithm>
#include <queue>

namespace smn::incident {
namespace {

/// Healthy-state metric baselines by component kind.
HealthMetrics kind_baseline(depgraph::ComponentKind kind) {
  using K = depgraph::ComponentKind;
  HealthMetrics m;
  switch (kind) {
    case K::kLoadBalancer:
      m = {2.0, 0.001, 0.35, 1.0};
      break;
    case K::kAppServer:
      m = {45.0, 0.002, 0.55, 1.0};
      break;
    case K::kCache:
      m = {0.8, 0.001, 0.30, 1.0};
      break;
    case K::kDatabase:
      m = {12.0, 0.001, 0.50, 1.0};
      break;
    case K::kNoSqlStore:
      m = {6.0, 0.002, 0.45, 1.0};
      break;
    case K::kQueue:
      m = {4.0, 0.001, 0.25, 1.0};
      break;
    case K::kWorker:
      m = {90.0, 0.003, 0.60, 1.0};
      break;
    case K::kSearch:
      m = {70.0, 0.004, 0.50, 1.0};
      break;
    case K::kDns:
      m = {1.5, 0.0005, 0.10, 1.0};
      break;
    case K::kFirewall:
      m = {0.3, 0.0002, 0.20, 1.0};
      break;
    case K::kSwitch:
    case K::kFabric:
      m = {0.2, 0.0001, 0.15, 1.0};
      break;
    case K::kWanLink:
      m = {30.0, 0.0005, 0.40, 1.0};
      break;
    case K::kHypervisor:
      m = {0.5, 0.0005, 0.45, 1.0};
      break;
    case K::kStorage:
      m = {8.0, 0.0005, 0.35, 1.0};
      break;
    case K::kMonitor:
      m = {10.0, 0.001, 0.15, 1.0};
      break;
  }
  return m;
}

}  // namespace

IncidentSimulator::IncidentSimulator(const depgraph::ServiceGraph& sg, SimulatorConfig config)
    : sg_(sg), config_(config) {}

HealthMetrics IncidentSimulator::baseline(graph::NodeId id) const {
  return kind_baseline(sg_.component(id).kind);
}

Incident IncidentSimulator::simulate(const Fault& fault, util::Rng& rng) const {
  const std::size_t n = sg_.component_count();
  const std::size_t teams = sg_.teams().size();
  Incident incident;
  incident.root_cause = fault;
  incident.root_team = sg_.team_index(fault.component);
  incident.severity.assign(n, 0.0);
  incident.symptom.assign(n, false);
  incident.metrics.resize(n);
  incident.team_syndrome.assign(teams, 0.0);
  incident.team_syndrome_binary.assign(teams, 0.0);

  const FaultProfile profile = fault_profile(fault.type, fault.variant);
  const double root_severity = rng.uniform(profile.severity_lo, profile.severity_hi);
  incident.severity[fault.component] = std::min(1.0, root_severity);

  // Max-severity propagation from dependency to dependent, processed in
  // descending severity order (Dijkstra-style with multiplicative decay) so
  // each component settles at the strongest degradation reaching it.
  using Item = std::pair<double, graph::NodeId>;
  std::priority_queue<Item> heap;
  heap.emplace(incident.severity[fault.component], fault.component);
  while (!heap.empty()) {
    const auto [severity, node] = heap.top();
    heap.pop();
    if (severity < incident.severity[node]) continue;  // stale
    // Dependents of `node` (components with an edge into it).
    for (const graph::EdgeId e : sg_.graph().in_edges(node)) {
      const graph::NodeId dependent = sg_.graph().edge(e).from;
      const double p = std::min(1.0, config_.propagation_probability * profile.propagation_modifier);
      if (!rng.bernoulli(p)) continue;
      const double attenuation =
          rng.uniform(config_.attenuation_lo, config_.attenuation_hi) *
          profile.attenuation_modifier;
      const double next = std::min(1.0, severity * std::min(1.0, attenuation));
      if (next > incident.severity[dependent] + 1e-9 && next > 0.05) {
        incident.severity[dependent] = next;
        heap.emplace(next, dependent);
      }
    }
  }

  // Observed severity: how strongly each component's own telemetry reflects
  // its degradation. The root of a misconfiguration-class fault is nearly
  // silent locally (fault_self_signal); downstream victims observe their
  // full degradation.
  std::vector<double> observed = incident.severity;
  observed[fault.component] *= fault_self_signal(fault.type);

  // Symptoms with alert noise.
  for (std::size_t i = 0; i < n; ++i) {
    const bool degraded = observed[i] >= config_.symptom_threshold;
    bool symptom = degraded;
    if (degraded && rng.bernoulli(config_.missed_symptom_probability)) symptom = false;
    if (!degraded && rng.bernoulli(config_.false_symptom_probability)) symptom = true;
    incident.symptom[i] = symptom;
  }

  // Noisy health metrics driven by observed severity.
  for (std::size_t i = 0; i < n; ++i) {
    const HealthMetrics base = kind_baseline(sg_.component(i).kind);
    const double s = observed[i];
    HealthMetrics& m = incident.metrics[i];
    m.latency_ms = base.latency_ms * (1.0 + 1.5 * s) *
                   rng.lognormal(0.0, config_.metric_noise_sigma);
    m.error_rate = std::clamp(
        base.error_rate * (1.0 + 30.0 * s) * rng.lognormal(0.0, config_.metric_noise_sigma),
        0.0, 1.0);
    m.cpu_util = std::clamp(
        base.cpu_util * (1.0 + 0.35 * s) * rng.lognormal(0.0, config_.metric_noise_sigma * 0.7),
        0.0, 1.0);
    m.qps_ratio = std::clamp(
        (1.0 - 0.35 * s) * rng.lognormal(0.0, config_.metric_noise_sigma * 0.7), 0.0, 1.5);
  }

  // Team syndromes.
  std::vector<std::size_t> team_sizes(teams, 0);
  std::vector<std::size_t> team_symptoms(teams, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t t = sg_.team_index(static_cast<graph::NodeId>(i));
    ++team_sizes[t];
    if (incident.symptom[i]) ++team_symptoms[t];
  }
  for (std::size_t t = 0; t < teams; ++t) {
    incident.team_syndrome[t] =
        team_sizes[t] ? static_cast<double>(team_symptoms[t]) / static_cast<double>(team_sizes[t])
                      : 0.0;
    incident.team_syndrome_binary[t] = team_symptoms[t] > 0 ? 1.0 : 0.0;
  }
  return incident;
}

}  // namespace smn::incident
