// Incident simulator: injects one fault into the service graph, propagates
// degradation from dependency to dependent, and emits everything an
// observability stack would see — noisy per-component health metrics
// (latency, error rate, CPU, throughput), component symptoms, pairwise
// reachability probe outcomes, and the per-team incident syndrome of §5.
//
// The defining causal structure is fan-out: a fault low in the stack (say a
// hypervisor) degrades many components in higher layers, which is exactly
// the confounder the paper blames for the weakness of distributed
// approaches ("fan-out cause-effect relationships ... are confounders in
// distributed approaches that can rely only on internal health metrics").
#pragma once

#include <vector>

#include "depgraph/service_graph.h"
#include "incident/fault.h"
#include "util/rng.h"

namespace smn::incident {

/// Health metric channels every component exposes.
struct HealthMetrics {
  double latency_ms = 0.0;
  double error_rate = 0.0;   ///< [0, 1]
  double cpu_util = 0.0;     ///< [0, 1]
  double qps_ratio = 1.0;    ///< served / expected throughput
};

struct SimulatorConfig {
  /// Per-hop probability that degradation crosses a dependency edge. Well
  /// below 1: retries, replicas, and caches absorb many failures, so the
  /// set of degraded dependents varies a lot between episodes of the same
  /// fault.
  double propagation_probability = 0.92;
  /// Severity multiplier per hop, drawn uniformly from this band. The high
  /// end near 1 keeps downstream severity comparable to the root's — which
  /// is what makes root identification from local metrics genuinely hard.
  double attenuation_lo = 0.60;
  double attenuation_hi = 0.95;
  /// Severity above which a component exhibits a symptom.
  double symptom_threshold = 0.20;
  /// Probability a healthy component shows a spurious symptom (alert noise).
  double false_symptom_probability = 0.01;
  /// Probability a degraded component's symptom is missed.
  double missed_symptom_probability = 0.03;
  /// Sigma of multiplicative log-normal noise on every metric channel.
  /// High by design: team dashboards aggregate heterogeneous workloads, so
  /// healthy and degraded metric distributions overlap heavily.
  double metric_noise_sigma = 1.5;
};

/// Everything observed for one simulated incident.
struct Incident {
  Fault root_cause;
  std::size_t root_team = 0;  ///< ground-truth routing label
  std::vector<double> severity;         ///< per component, [0, 1]
  std::vector<bool> symptom;            ///< per component, after noise
  std::vector<HealthMetrics> metrics;   ///< per component, after noise
  /// Per team: fraction of the team's components showing symptoms — the
  /// observed incident syndrome (weighted variant of §5's symptom vector).
  std::vector<double> team_syndrome;
  /// Per team: 1 if any component shows a symptom (binary syndrome).
  std::vector<double> team_syndrome_binary;
};

class IncidentSimulator {
 public:
  IncidentSimulator(const depgraph::ServiceGraph& sg, SimulatorConfig config = {});
  /// The simulator keeps a reference to the graph; temporaries would dangle.
  IncidentSimulator(depgraph::ServiceGraph&&, SimulatorConfig) = delete;

  /// Simulates one incident. Deterministic given `rng` state.
  Incident simulate(const Fault& fault, util::Rng& rng) const;

  /// Baseline (healthy) metrics for component `id` — used to normalize
  /// features.
  HealthMetrics baseline(graph::NodeId id) const;

  const depgraph::ServiceGraph& service_graph() const noexcept { return sg_; }
  const SimulatorConfig& config() const noexcept { return config_; }

 private:
  const depgraph::ServiceGraph& sg_;
  SimulatorConfig config_;
};

}  // namespace smn::incident
