#include "incident/features.h"

#include <algorithm>

#include "incident/explainability.h"

namespace smn::incident {

FeatureExtractor::FeatureExtractor(const depgraph::ServiceGraph& sg, const depgraph::Cdg& cdg)
    : sg_(sg), cdg_(cdg), team_count_(sg.teams().size()) {
  IncidentSimulator probe(sg);  // only used for baselines
  baselines_.reserve(sg.component_count());
  for (graph::NodeId n = 0; n < sg.component_count(); ++n) {
    baselines_.push_back(probe.baseline(n));
  }
}

std::vector<double> FeatureExtractor::health_features(const Incident& incident) const {
  // Team-level aggregation is the *mean* over the team's components, as a
  // team dashboard would show. This preserves the paper's fan-out
  // confounder: one faulted component dilutes inside its own team, while a
  // lower-layer fault that degrades an entire dependent team moves that
  // team's averages much more — victims look sicker than the root.
  std::vector<double> features(health_dim(), 0.0);
  std::vector<std::size_t> team_sizes(team_count_, 0);

  for (graph::NodeId n = 0; n < sg_.component_count(); ++n) {
    const std::size_t t = sg_.team_index(n);
    const HealthMetrics& m = incident.metrics[n];
    const HealthMetrics& base = baselines_[n];
    double* block = features.data() + t * kHealthFeaturesPerTeam;
    const double latency_inflation =
        base.latency_ms > 0.0 ? m.latency_ms / base.latency_ms - 1.0 : 0.0;
    const double cpu_inflation = base.cpu_util > 0.0 ? m.cpu_util / base.cpu_util - 1.0 : 0.0;
    block[0] += latency_inflation;
    block[1] += m.error_rate;
    block[2] += cpu_inflation;
    block[3] += m.qps_ratio;
    ++team_sizes[t];
  }
  for (std::size_t t = 0; t < team_count_; ++t) {
    if (team_sizes[t] == 0) continue;
    double* block = features.data() + t * kHealthFeaturesPerTeam;
    for (std::size_t c = 0; c < kHealthFeaturesPerTeam; ++c) {
      block[c] /= static_cast<double>(team_sizes[t]);
    }
  }
  return features;
}

std::vector<double> FeatureExtractor::explainability_features(const Incident& incident) const {
  // Raw cosine scores plus per-team margins (score minus the best other
  // team's score). The margin block matters because the routing decision is
  // relational — "is T the *most* explanatory team" — which axis-aligned
  // tree splits cannot express over raw scores alone.
  std::vector<double> scores = explainability_vector(cdg_, incident.team_syndrome_binary);
  const std::size_t teams = scores.size();
  std::vector<double> features = scores;
  features.resize(2 * teams);
  for (std::size_t t = 0; t < teams; ++t) {
    double best_other = 0.0;
    for (std::size_t o = 0; o < teams; ++o) {
      if (o != t) best_other = std::max(best_other, scores[o]);
    }
    features[teams + t] = scores[t] - best_other;
  }
  return features;
}

std::vector<double> FeatureExtractor::combined_features(const Incident& incident) const {
  std::vector<double> features = health_features(incident);
  const std::vector<double> explain = explainability_features(incident);
  features.insert(features.end(), explain.begin(), explain.end());
  return features;
}

std::vector<double> FeatureExtractor::team_local_features(const Incident& incident,
                                                          std::size_t team) const {
  const std::vector<double> all = health_features(incident);
  const double* block = all.data() + team * kHealthFeaturesPerTeam;
  return std::vector<double>(block, block + kHealthFeaturesPerTeam);
}

}  // namespace smn::incident
