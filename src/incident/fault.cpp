#include "incident/fault.h"

namespace smn::incident {

std::string fault_type_name(FaultType type) {
  switch (type) {
    case FaultType::kHypervisorFailure:
      return "hypervisor-failure";
    case FaultType::kBadTimeout:
      return "bad-timeout";
    case FaultType::kFirewallRule:
      return "firewall-rule";
    case FaultType::kPacketLoss:
      return "packet-loss";
    case FaultType::kLinkFlap:
      return "link-flap";
    case FaultType::kDiskPressure:
      return "disk-pressure";
    case FaultType::kMemoryLeak:
      return "memory-leak";
    case FaultType::kConfigError:
      return "config-error";
    case FaultType::kCertExpiry:
      return "cert-expiry";
    case FaultType::kProcessCrash:
      return "process-crash";
    case FaultType::kCpuSaturation:
      return "cpu-saturation";
    case FaultType::kLockContention:
      return "lock-contention";
    case FaultType::kWavelengthDegrade:
      return "wavelength-degrade";
    case FaultType::kDnsMisconfig:
      return "dns-misconfig";
  }
  return "unknown";
}

std::vector<FaultType> all_fault_types() {
  return {FaultType::kHypervisorFailure, FaultType::kBadTimeout, FaultType::kFirewallRule,
          FaultType::kPacketLoss,        FaultType::kLinkFlap,   FaultType::kDiskPressure,
          FaultType::kMemoryLeak,        FaultType::kConfigError, FaultType::kCertExpiry,
          FaultType::kProcessCrash,      FaultType::kCpuSaturation,
          FaultType::kLockContention,    FaultType::kWavelengthDegrade,
          FaultType::kDnsMisconfig};
}

bool fault_applicable(FaultType type, depgraph::ComponentKind kind) {
  using K = depgraph::ComponentKind;
  switch (type) {
    case FaultType::kHypervisorFailure:
      return kind == K::kHypervisor;
    case FaultType::kWavelengthDegrade:
    case FaultType::kLinkFlap:
      return kind == K::kWanLink;
    case FaultType::kFirewallRule:
      return kind == K::kFirewall;
    case FaultType::kDnsMisconfig:
      return kind == K::kDns;
    case FaultType::kPacketLoss:
      return kind == K::kSwitch || kind == K::kFabric || kind == K::kWanLink;
    case FaultType::kDiskPressure:
      return kind == K::kDatabase || kind == K::kNoSqlStore || kind == K::kStorage ||
             kind == K::kQueue;
    case FaultType::kLockContention:
      return kind == K::kDatabase || kind == K::kNoSqlStore;
    case FaultType::kCertExpiry:
      return kind == K::kLoadBalancer || kind == K::kAppServer || kind == K::kDns;
    case FaultType::kBadTimeout:
      return kind == K::kAppServer || kind == K::kLoadBalancer || kind == K::kWorker ||
             kind == K::kSearch || kind == K::kCache;
    case FaultType::kMemoryLeak:
    case FaultType::kProcessCrash:
    case FaultType::kCpuSaturation:
      return kind == K::kAppServer || kind == K::kLoadBalancer || kind == K::kCache ||
             kind == K::kDatabase || kind == K::kNoSqlStore || kind == K::kQueue ||
             kind == K::kWorker || kind == K::kSearch || kind == K::kMonitor;
    case FaultType::kConfigError:
      return kind != K::kStorage;  // config faults can hit almost anything
  }
  return false;
}

FaultProfile fault_profile(FaultType type, std::size_t variant) {
  // Variants form a severity/propagation ladder; crash-like faults
  // propagate harder than degradation-like faults.
  FaultProfile profile;
  const double step = static_cast<double>(variant % kVariantsPerFault) /
                      static_cast<double>(kVariantsPerFault);
  profile.severity_lo = 0.45 + 0.35 * step;
  profile.severity_hi = profile.severity_lo + 0.2;
  switch (type) {
    case FaultType::kHypervisorFailure:
    case FaultType::kProcessCrash:
    case FaultType::kFirewallRule:
      profile.propagation_modifier = 1.1;
      profile.attenuation_modifier = 1.05;
      break;
    case FaultType::kMemoryLeak:
    case FaultType::kCpuSaturation:
    case FaultType::kDiskPressure:
      profile.propagation_modifier = 0.9;
      profile.attenuation_modifier = 0.9;
      break;
    case FaultType::kLinkFlap:
    case FaultType::kWavelengthDegrade:
    case FaultType::kPacketLoss:
      profile.propagation_modifier = 1.0;
      profile.attenuation_modifier = 0.95;
      break;
    default:
      break;
  }
  // Odd variants propagate slightly differently — "not injected in the
  // same way" must actually change behavior, or the split rule is vacuous.
  if (variant % 2 == 1) profile.propagation_modifier *= 0.85;
  return profile;
}

double fault_self_signal(FaultType type) {
  switch (type) {
    case FaultType::kFirewallRule:
      return 0.05;
    case FaultType::kDnsMisconfig:
      return 0.10;
    case FaultType::kCertExpiry:
      return 0.10;
    case FaultType::kBadTimeout:
      return 0.15;
    case FaultType::kConfigError:
      return 0.20;
    case FaultType::kPacketLoss:
      return 0.35;
    case FaultType::kLockContention:
      return 0.45;
    case FaultType::kWavelengthDegrade:
      return 0.50;
    case FaultType::kLinkFlap:
      return 0.55;
    case FaultType::kHypervisorFailure:
      return 0.65;
    case FaultType::kDiskPressure:
      return 0.75;
    case FaultType::kMemoryLeak:
      return 0.80;
    case FaultType::kProcessCrash:
      return 0.90;
    case FaultType::kCpuSaturation:
      return 0.95;
  }
  return 0.5;
}

std::vector<Fault> enumerate_faults(const depgraph::ServiceGraph& sg) {
  std::vector<Fault> faults;
  for (graph::NodeId n = 0; n < sg.component_count(); ++n) {
    for (const FaultType type : all_fault_types()) {
      if (!fault_applicable(type, sg.component(n).kind)) continue;
      for (std::size_t v = 0; v < kVariantsPerFault; ++v) {
        faults.push_back(Fault{type, n, v});
      }
    }
  }
  return faults;
}

}  // namespace smn::incident
