// Fault model for the §5 incident-routing experiment: the fine-grained
// fault classes of the Revelio Incident Dataset (hypervisor failures, bad
// timeouts, faulty firewall rules, ...) re-expressed as injectable
// perturbations on a ServiceGraph component. Each (component, fault type)
// combination supports several *injection variants* — parameterizations
// differing in severity and propagation behavior — so the dataset can honor
// the paper's split rule: test root causes are never injected the same way
// as in training.
#pragma once

#include <string>
#include <vector>

#include "depgraph/service_graph.h"

namespace smn::incident {

enum class FaultType {
  kHypervisorFailure,
  kBadTimeout,
  kFirewallRule,
  kPacketLoss,
  kLinkFlap,
  kDiskPressure,
  kMemoryLeak,
  kConfigError,
  kCertExpiry,
  kProcessCrash,
  kCpuSaturation,
  kLockContention,
  kWavelengthDegrade,
  kDnsMisconfig,
};

/// Human-readable fault-type name.
std::string fault_type_name(FaultType type);

/// All fault types.
std::vector<FaultType> all_fault_types();

/// True when `type` can plausibly occur on a component of `kind` (e.g.
/// kWavelengthDegrade only on WAN links, kLockContention only on
/// databases/stores).
bool fault_applicable(FaultType type, depgraph::ComponentKind kind);

/// One concrete root cause to inject.
struct Fault {
  FaultType type = FaultType::kProcessCrash;
  graph::NodeId component = graph::kInvalidNode;
  /// Injection variant: selects the parameterization (severity band,
  /// propagation modifier). Incidents sharing (type, component, variant)
  /// form one split group.
  std::size_t variant = 0;
};

/// Variant parameterization resolved from (type, variant).
struct FaultProfile {
  double severity_lo = 0.6;
  double severity_hi = 1.0;
  /// Multiplier on the per-hop propagation probability.
  double propagation_modifier = 1.0;
  /// Multiplier on severity attenuation per hop.
  double attenuation_modifier = 1.0;
};

/// Number of distinct injection variants per (component, fault type).
inline constexpr std::size_t kVariantsPerFault = 4;

FaultProfile fault_profile(FaultType type, std::size_t variant);

/// How strongly a fault manifests in the faulty component's *own* metrics
/// and symptoms, in [0, 1]. Misconfiguration-class faults (firewall rules,
/// bad timeouts, DNS errors, expired certs) are nearly silent at the root —
/// the component hums along while its dependents suffer — whereas
/// resource-exhaustion and crash faults light up locally. This asymmetry is
/// what makes routing from local health metrics alone genuinely hard.
double fault_self_signal(FaultType type);

/// Enumerates every injectable fault on `sg`: all applicable
/// (component, type) pairs x kVariantsPerFault variants.
std::vector<Fault> enumerate_faults(const depgraph::ServiceGraph& sg);

}  // namespace smn::incident
