// Symptom explainability (§5):
//
//   "define the vector of symptoms (i.e., nodes in the CDG who experience
//    symptoms) as an incident syndrome. ... We then define symptom
//    explainability for team T as the cosine similarity of the incident
//    syndrome to the syndrome if only team T caused a failure. This allows
//    for noise, false dependencies and normalizes each team's
//    explainability metric between [0, 1]."
#pragma once

#include <span>
#include <vector>

#include "depgraph/cdg.h"

namespace smn::incident {

/// Explainability of one team: cosine similarity between the observed
/// syndrome and the CDG-predicted syndrome under "only `team` failed".
double symptom_explainability(const depgraph::Cdg& cdg, graph::NodeId team,
                              std::span<const double> observed_syndrome);

/// Explainability vector over all teams — the extra feature block the CLTO
/// feeds its Random Forest.
std::vector<double> explainability_vector(const depgraph::Cdg& cdg,
                                          std::span<const double> observed_syndrome);

/// Routing by explainability alone: argmax team. Ties break toward the
/// lower team index (deterministic).
std::size_t route_by_explainability(const depgraph::Cdg& cdg,
                                    std::span<const double> observed_syndrome);

}  // namespace smn::incident
