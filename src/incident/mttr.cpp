#include "incident/mttr.h"

#include "util/stats.h"

namespace smn::incident {

double sample_mttr_minutes(const MttrModel& model, bool routed_correctly, bool automated,
                           util::Rng& rng) {
  double minutes = model.detection_minutes;
  minutes += automated ? model.automated_routing_minutes : model.manual_routing_minutes;
  if (!routed_correctly) {
    // Wrong team investigates, bounces, and manual re-triage takes over.
    minutes += rng.exponential(1.0 / model.wrong_team_mean_minutes);
    minutes += model.bounce_overhead_minutes + model.manual_routing_minutes;
  }
  minutes += rng.exponential(1.0 / model.fix_mean_minutes);
  return minutes;
}

MttrStats evaluate_mttr(const std::vector<Incident>& incidents,
                        const std::function<std::size_t(const Incident&)>& router,
                        bool automated, const MttrModel& model, std::uint64_t seed) {
  MttrStats stats;
  if (incidents.empty()) return stats;
  util::Rng rng(seed);
  std::vector<double> samples;
  samples.reserve(incidents.size());
  std::size_t correct = 0;
  for (const Incident& incident : incidents) {
    const bool hit = router(incident) == incident.root_team;
    correct += hit;
    samples.push_back(sample_mttr_minutes(model, hit, automated, rng));
  }
  util::RunningStats rs;
  for (const double s : samples) rs.add(s);
  stats.mean_minutes = rs.mean();
  stats.p95_minutes = util::percentile(samples, 0.95);
  stats.first_assignment_accuracy =
      static_cast<double>(correct) / static_cast<double>(incidents.size());
  return stats;
}

}  // namespace smn::incident
