#include "incident/explainability.h"

#include <algorithm>

#include "util/stats.h"

namespace smn::incident {

double symptom_explainability(const depgraph::Cdg& cdg, graph::NodeId team,
                              std::span<const double> observed_syndrome) {
  const std::vector<double> predicted = cdg.predicted_syndrome(team);
  return util::cosine_similarity(observed_syndrome, predicted);
}

std::vector<double> explainability_vector(const depgraph::Cdg& cdg,
                                          std::span<const double> observed_syndrome) {
  std::vector<double> out(cdg.team_count(), 0.0);
  for (graph::NodeId t = 0; t < cdg.team_count(); ++t) {
    out[t] = symptom_explainability(cdg, t, observed_syndrome);
  }
  return out;
}

std::size_t route_by_explainability(const depgraph::Cdg& cdg,
                                    std::span<const double> observed_syndrome) {
  const std::vector<double> scores = explainability_vector(cdg, observed_syndrome);
  return static_cast<std::size_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace smn::incident
