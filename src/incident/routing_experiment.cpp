#include "incident/routing_experiment.h"

#include <algorithm>
#include <set>

#include "depgraph/cdg.h"
#include "incident/explainability.h"

namespace smn::incident {

IncidentDataset generate_incident_dataset(const depgraph::ServiceGraph& sg,
                                          const RoutingExperimentConfig& config) {
  IncidentDataset dataset;
  const std::vector<Fault> catalog = enumerate_faults(sg);
  util::Rng rng(config.seed);
  const IncidentSimulator simulator(sg, config.simulator);

  // Sample so that root-cause teams are balanced (round-robin over teams),
  // then uniformly over fault types applicable within the team, then over
  // that type's catalog entries. Enumerating the raw catalog would
  // over-represent teams owning many components/fault types (network) and
  // crash-class faults that apply to nearly every component.
  const std::size_t team_count = sg.teams().size();
  std::vector<std::vector<std::vector<std::size_t>>> by_team_type(team_count);
  {
    const std::vector<FaultType> types = all_fault_types();
    for (auto& team_buckets : by_team_type) team_buckets.resize(types.size());
    for (std::size_t c = 0; c < catalog.size(); ++c) {
      const std::size_t team = sg.team_index(catalog[c].component);
      for (std::size_t t = 0; t < types.size(); ++t) {
        if (catalog[c].type == types[t]) {
          by_team_type[team][t].push_back(c);
          break;
        }
      }
    }
    for (auto& team_buckets : by_team_type) {
      std::erase_if(team_buckets,
                    [](const std::vector<std::size_t>& v) { return v.empty(); });
    }
  }

  dataset.incidents.reserve(config.num_incidents);
  dataset.groups.reserve(config.num_incidents);
  std::vector<std::size_t> type_cursor(team_count, 0);
  for (std::size_t i = 0; i < config.num_incidents; ++i) {
    const std::size_t team = i % team_count;
    const auto& team_buckets = by_team_type[team];
    if (team_buckets.empty()) continue;
    const auto& bucket = team_buckets[type_cursor[team]++ % team_buckets.size()];
    const std::size_t fault_index = bucket[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bucket.size()) - 1))];
    dataset.incidents.push_back(simulator.simulate(catalog[fault_index], rng));
    dataset.groups.push_back(fault_index);
  }
  return dataset;
}

ScoutsRouter::ScoutsRouter(const FeatureExtractor& extractor, std::size_t forest_trees,
                           std::size_t forest_max_depth, std::uint64_t seed)
    : extractor_(extractor),
      forest_trees_(forest_trees),
      forest_max_depth_(forest_max_depth),
      seed_(seed) {}

void ScoutsRouter::fit(const std::vector<Incident>& incidents) {
  const std::size_t teams = extractor_.team_count();
  per_team_.clear();
  per_team_.resize(teams);
  for (std::size_t t = 0; t < teams; ++t) {
    ml::Dataset local(kHealthFeaturesPerTeam, 2);
    for (const Incident& incident : incidents) {
      local.add(extractor_.team_local_features(incident, t),
                incident.root_team == t ? 1 : 0);
    }
    ml::ForestConfig forest;
    forest.num_trees = forest_trees_;
    forest.tree.max_depth = forest_max_depth_;
    forest.seed = seed_ + t;
    per_team_[t].fit(local, forest);
  }
}

std::size_t ScoutsRouter::route(const Incident& incident) const {
  std::size_t best_team = 0;
  double best_confidence = -1.0;
  for (std::size_t t = 0; t < per_team_.size(); ++t) {
    const std::vector<double> local = extractor_.team_local_features(incident, t);
    const double confidence = per_team_[t].predict_class_proba(local, 1);
    if (confidence > best_confidence) {
      best_confidence = confidence;
      best_team = t;
    }
  }
  return best_team;
}

double ScoutsRouter::evaluate(const std::vector<Incident>& incidents) const {
  if (incidents.empty()) return 0.0;
  std::size_t correct = 0;
  for (const Incident& incident : incidents) {
    if (route(incident) == incident.root_team) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(incidents.size());
}

RoutingExperimentResult run_routing_experiment(const depgraph::ServiceGraph& sg,
                                               const RoutingExperimentConfig& config) {
  const depgraph::Cdg cdg = depgraph::CdgCoarsener().coarsen(sg);
  return run_routing_experiment(sg, cdg, config);
}

RoutingExperimentResult run_routing_experiment(const depgraph::ServiceGraph& sg,
                                               const depgraph::Cdg& cdg,
                                               const RoutingExperimentConfig& config) {
  const FeatureExtractor extractor(sg, cdg);
  const std::size_t teams = extractor.team_count();

  const IncidentDataset dataset = generate_incident_dataset(sg, config);

  // Group-held-out split at the incident level (groups = injection
  // parameterizations), so Scouts and the centralized routers see exactly
  // the same train/test incidents.
  util::Rng split_rng(config.seed ^ 0x5eedULL);
  std::set<std::size_t> group_set(dataset.groups.begin(), dataset.groups.end());
  std::vector<std::size_t> group_list(group_set.begin(), group_set.end());
  split_rng.shuffle(group_list);
  const auto test_count = static_cast<std::size_t>(std::max(
      1.0, config.test_fraction * static_cast<double>(group_list.size())));
  const std::set<std::size_t> test_groups(
      group_list.begin(),
      group_list.begin() + static_cast<std::ptrdiff_t>(std::min(test_count, group_list.size())));

  std::vector<Incident> train, test;
  for (std::size_t i = 0; i < dataset.incidents.size(); ++i) {
    (test_groups.contains(dataset.groups[i]) ? test : train).push_back(dataset.incidents[i]);
  }

  RoutingExperimentResult result;
  result.team_count = teams;
  result.train_size = train.size();
  result.test_size = test.size();
  if (train.empty() || test.empty()) return result;

  const auto build = [&](const std::vector<Incident>& incidents, bool with_explainability) {
    const std::size_t dim =
        with_explainability ? extractor.combined_dim() : extractor.health_dim();
    ml::Dataset data(dim, teams);
    for (const Incident& incident : incidents) {
      data.add(with_explainability ? extractor.combined_features(incident)
                                   : extractor.health_features(incident),
               incident.root_team);
    }
    return data;
  };

  ml::ForestConfig forest;
  forest.num_trees = config.forest_trees;
  forest.tree.max_depth = config.forest_max_depth;
  // A third of the features per split (rather than sqrt): with a handful of
  // informative explainability features among many noisy health channels,
  // sqrt-sized candidate sets rarely contain the good splits.
  forest.tree.max_features = std::max<std::size_t>(6, extractor.combined_dim() / 3);
  forest.seed = config.seed;

  // 1. Health metrics only.
  {
    const ml::Dataset train_data = build(train, false);
    const ml::Dataset test_data = build(test, false);
    ml::RandomForest rf;
    rf.fit(train_data, forest);
    result.accuracy_health_only = ml::accuracy(rf, test_data);
    result.f1_health_only = ml::macro_f1(rf, test_data);
  }
  // 2. Health metrics + symptom explainability.
  {
    const ml::Dataset train_data = build(train, true);
    const ml::Dataset test_data = build(test, true);
    ml::RandomForest rf;
    rf.fit(train_data, forest);
    result.accuracy_with_explainability = ml::accuracy(rf, test_data);
    result.f1_with_explainability = ml::macro_f1(rf, test_data);
    result.confusion_combined = ml::confusion_matrix(rf, test_data);
  }
  // 3. Scouts-style distributed baseline.
  {
    ScoutsRouter scouts(extractor, config.forest_trees, config.forest_max_depth, config.seed);
    scouts.fit(train);
    result.accuracy_scouts = scouts.evaluate(test);
  }
  // 4. Explainability-only ablation (no learning).
  {
    std::size_t correct = 0;
    for (const Incident& incident : test) {
      if (route_by_explainability(cdg, incident.team_syndrome_binary) == incident.root_team) ++correct;
    }
    result.accuracy_explainability_only =
        static_cast<double>(correct) / static_cast<double>(test.size());
  }
  return result;
}

}  // namespace smn::incident
