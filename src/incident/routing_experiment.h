// The §5 preliminary-results experiment, end to end:
//
//   "We simulated 560 fine-grained faults ... The performance of the
//    Random Forest Classifier for CLTO in routing incidents (amongst 8
//    teams) on the test set with and without using symptom explainability
//    as a feature improved from 45% to 78% while a purely distributed
//    approach like Scouts [13] was only 22%."
//
// Three routers are trained and evaluated on a group-held-out split
// (test-set root causes are never injected the same way as in training):
//   1. Centralized RF on per-team health metrics only      (paper: 45%)
//   2. Centralized RF on health metrics + explainability    (paper: 78%)
//   3. Scouts-style distributed per-team binary classifiers (paper: 22%)
// plus an explainability-only ablation.
#pragma once

#include <cstddef>
#include <vector>

#include "depgraph/cdg.h"
#include "depgraph/service_graph.h"
#include "incident/features.h"
#include "incident/simulator.h"
#include "ml/dataset.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace smn::incident {

struct RoutingExperimentConfig {
  std::size_t num_incidents = 560;
  double test_fraction = 0.25;
  std::size_t forest_trees = 200;
  std::size_t forest_max_depth = 14;
  std::uint64_t seed = 20250607;
  SimulatorConfig simulator;
};

struct RoutingExperimentResult {
  std::size_t train_size = 0;
  std::size_t test_size = 0;
  std::size_t team_count = 0;
  double accuracy_health_only = 0.0;
  double accuracy_with_explainability = 0.0;
  double accuracy_scouts = 0.0;
  double accuracy_explainability_only = 0.0;  ///< ablation: argmax cosine
  double f1_health_only = 0.0;
  double f1_with_explainability = 0.0;
  /// Confusion matrix of the explainability-augmented router.
  std::vector<std::vector<std::size_t>> confusion_combined;
};

/// Simulated incidents plus their split-group ids.
struct IncidentDataset {
  std::vector<Incident> incidents;
  std::vector<std::size_t> groups;  ///< (component, fault type, variant) id
};

/// Samples `num_incidents` incidents over all injectable faults, with the
/// group id identifying the injection parameterization.
IncidentDataset generate_incident_dataset(const depgraph::ServiceGraph& sg,
                                          const RoutingExperimentConfig& config);

/// Runs the full experiment on `sg` with CDG built by CdgCoarsener.
RoutingExperimentResult run_routing_experiment(const depgraph::ServiceGraph& sg,
                                               const RoutingExperimentConfig& config = {});

/// Same experiment with an explicit (possibly imperfect) CDG — the
/// robustness knob for engineer-sketched graphs. The simulator still runs
/// on the true fine-grained graph; only the explainability features use
/// `cdg`.
RoutingExperimentResult run_routing_experiment(const depgraph::ServiceGraph& sg,
                                               const depgraph::Cdg& cdg,
                                               const RoutingExperimentConfig& config);

/// Scouts-style distributed router: one binary RF per team over that
/// team's local features; incidents route to the most confident team.
class ScoutsRouter {
 public:
  ScoutsRouter(const FeatureExtractor& extractor, std::size_t forest_trees,
               std::size_t forest_max_depth, std::uint64_t seed);

  /// Trains the per-team models.
  void fit(const std::vector<Incident>& incidents);

  /// Routes one incident: argmax over teams of P(this is my incident).
  std::size_t route(const Incident& incident) const;

  /// Accuracy over a test set.
  double evaluate(const std::vector<Incident>& incidents) const;

 private:
  const FeatureExtractor& extractor_;
  std::size_t forest_trees_;
  std::size_t forest_max_depth_;
  std::uint64_t seed_;
  std::vector<ml::RandomForest> per_team_;
};

}  // namespace smn::incident
