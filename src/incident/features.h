// Feature extraction for incident routing: per-team internal health
// metrics (the paper's "standard internal health metrics [10] from
// production systems") plus the CDG-derived symptom-explainability block.
#pragma once

#include <vector>

#include "depgraph/cdg.h"
#include "incident/simulator.h"

namespace smn::incident {

/// Health channels aggregated per team. Deliberately metric-derived only
/// (latency, errors, CPU, throughput): the thresholded symptom vector
/// reaches the models exclusively through the explainability block, so the
/// "with vs without explainability" comparison isolates the CDG's signal.
inline constexpr std::size_t kHealthFeaturesPerTeam = 4;

class FeatureExtractor {
 public:
  FeatureExtractor(const depgraph::ServiceGraph& sg, const depgraph::Cdg& cdg);
  /// Keeps references to both structures; temporaries would dangle.
  FeatureExtractor(depgraph::ServiceGraph&&, const depgraph::Cdg&) = delete;
  FeatureExtractor(const depgraph::ServiceGraph&, depgraph::Cdg&&) = delete;

  std::size_t team_count() const noexcept { return team_count_; }

  /// Per-team block of kHealthFeaturesPerTeam features:
  ///   [max latency inflation, max error rate, max cpu inflation,
  ///    min qps ratio, symptomatic fraction]
  /// laid out team-major (size = teams * kHealthFeaturesPerTeam).
  std::vector<double> health_features(const Incident& incident) const;

  /// Explainability block: per-team cosine scores followed by per-team
  /// margins over the best other team (size = 2 * teams).
  std::vector<double> explainability_features(const Incident& incident) const;

  /// health ++ explainability — the CLTO's full feature vector.
  std::vector<double> combined_features(const Incident& incident) const;

  /// One team's local health block only — all a distributed (Scouts-style)
  /// per-team model is allowed to see.
  std::vector<double> team_local_features(const Incident& incident, std::size_t team) const;

  std::size_t health_dim() const noexcept { return team_count_ * kHealthFeaturesPerTeam; }
  std::size_t combined_dim() const noexcept { return health_dim() + 2 * team_count_; }

 private:
  const depgraph::ServiceGraph& sg_;
  const depgraph::Cdg& cdg_;
  std::size_t team_count_;
  std::vector<HealthMetrics> baselines_;
};

}  // namespace smn::incident
