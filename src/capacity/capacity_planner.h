// Capacity planning (§4, [38, 39]): "operators follow heuristics like
// augmenting the bandwidth on a link if its utilization consistently
// exceeds a threshold". The planner derives per-link utilization time
// series by routing logged demands, flags links whose utilization exceeds
// the threshold for a sustained fraction of epochs, and proposes upgrades
// subject to fiber constraints.
//
// Two operating modes reproduce war story 1 ("Capacity Planning and TE in
// the Dark"):
//   * naive mode (siloed team): upgrades any link over threshold, including
//     links TE overloaded only transiently and links with no fiber
//     headroom — wasted planning cycles;
//   * SMN mode (cross-layer): requires sustained overload and skips
//     fiber-locked links, emitting a separate fiber-build request instead.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "telemetry/bandwidth_log.h"
#include "telemetry/time_coarsening.h"
#include "topology/wan.h"

namespace smn::capacity {

struct PlannerConfig {
  double utilization_threshold = 0.8;
  /// Fraction of epochs a link must exceed the threshold to count as
  /// sustained (SMN mode). Naive mode upgrades on any single exceedance.
  double sustained_fraction = 0.3;
  /// Proposed capacity = peak_load / target_utilization.
  double target_utilization = 0.6;
  /// Cross-layer behavior: sustained-overload filter + fiber awareness.
  bool cross_layer = true;
};

struct LinkUpgrade {
  std::size_t link_index = 0;
  std::string name;  ///< "srcDC<->dstDC"
  double old_capacity_gbps = 0.0;
  double proposed_capacity_gbps = 0.0;
  /// True when the proposal hit the fiber ceiling (partially or fully
  /// unrealizable in the ground).
  bool fiber_limited = false;
  /// Fraction of epochs over threshold that triggered this upgrade.
  double overload_fraction = 0.0;
};

struct CapacityPlan {
  std::vector<LinkUpgrade> upgrades;
  /// Links that need new fiber builds (over threshold but zero headroom);
  /// only populated in cross-layer mode, where the SMN routes this feedback
  /// to the external provider rather than wasting an upgrade ticket.
  std::vector<std::string> fiber_build_requests;
  /// Upgrades proposed on links with no headroom (naive mode's wasted
  /// planning cycles).
  std::size_t wasted_proposals = 0;
  double total_added_gbps = 0.0;

  // Reporting API: link names for operator-facing plan output, built once
  // per planning cycle — not a per-record path.
  // smn-lint: allow(hot-path-strings)
  std::set<std::string> upgraded_names() const;
};

/// Per-link utilization series computed by shortest-path-routing each
/// epoch's demands.
struct UtilizationSeries {
  /// [link][epoch] utilization (max of the two directions).
  std::vector<std::vector<double>> by_link;
  std::vector<util::SimTime> epochs;
};

class CapacityPlanner {
 public:
  CapacityPlanner(const topology::WanTopology& wan, PlannerConfig config)
      : wan_(wan), config_(config) {}
  /// The planner keeps a reference to the topology; temporaries would dangle.
  CapacityPlanner(topology::WanTopology&&, PlannerConfig) = delete;

  /// Routes each epoch's records along (cached) shortest paths and derives
  /// link utilizations. Records naming unknown datacenters are ignored.
  UtilizationSeries compute_utilization(const telemetry::BandwidthLog& log) const;

  /// Plans from a fine-grained log.
  CapacityPlan plan(const telemetry::BandwidthLog& log) const;

  /// Plans from coarse summaries by reconstructing a per-epoch log first
  /// (window means held flat): the §4 fidelity question for planning.
  CapacityPlan plan_from_coarse(const telemetry::CoarseBandwidthLog& coarse,
                                util::SimTime epoch = util::kTelemetryEpoch) const;

  /// Applies `plan` to a mutable copy of the topology semantics: raises
  /// capacities (clamped by fiber limits) on `wan`. Returns Gbps installed.
  static double apply(topology::WanTopology& wan, const CapacityPlan& plan);

  const PlannerConfig& config() const noexcept { return config_; }

 private:
  CapacityPlan plan_from_series(const UtilizationSeries& series,
                                const std::vector<std::vector<double>>& load_by_link) const;

  const topology::WanTopology& wan_;
  PlannerConfig config_;
};

/// Jaccard agreement between the upgrade decisions of two plans — the
/// decision-fidelity metric for coarsened planning inputs.
double plan_agreement(const CapacityPlan& a, const CapacityPlan& b);

}  // namespace smn::capacity
