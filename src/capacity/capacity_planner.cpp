#include "capacity/capacity_planner.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/fidelity.h"
#include "graph/shortest_path.h"

namespace smn::capacity {

// Reporting shim (see header). smn-lint: allow(hot-path-strings)
std::set<std::string> CapacityPlan::upgraded_names() const {
  std::set<std::string> names;  // smn-lint: allow(hot-path-strings)
  for (const LinkUpgrade& u : upgrades) names.insert(u.name);
  return names;
}

UtilizationSeries CapacityPlanner::compute_utilization(
    const telemetry::BandwidthLog& log) const {
  UtilizationSeries series;
  const graph::Digraph& g = wan_.graph();

  const auto timestamps = log.timestamps();
  const auto pairs = log.pair_ids();
  const auto bw = log.bandwidths();

  // Epoch index.
  std::map<util::SimTime, std::size_t> epoch_index;
  for (const util::SimTime ts : timestamps) epoch_index.emplace(ts, 0);
  std::size_t idx = 0;
  for (auto& [ts, i] : epoch_index) {
    i = idx++;
    series.epochs.push_back(ts);
  }
  const std::size_t epochs = series.epochs.size();
  series.by_link.assign(wan_.link_count(), std::vector<double>(epochs, 0.0));
  if (epochs == 0) return series;

  // Shortest-path cache keyed by interned pair id: resolving datacenters
  // and routing happens once per distinct pair, not once per record.
  const util::IdSpace& ids = util::IdSpace::global();
  std::unordered_map<util::PairId, std::vector<graph::EdgeId>> path_cache;
  // Per-edge load per epoch, accumulated lazily.
  std::vector<std::vector<double>> edge_load(g.edge_count(), std::vector<double>(epochs, 0.0));

  for (std::size_t i = 0; i < log.record_count(); ++i) {
    auto it = path_cache.find(pairs[i]);
    if (it == path_cache.end()) {
      const auto src = wan_.node_of(ids.pair_src(pairs[i]));
      const auto dst = wan_.node_of(ids.pair_dst(pairs[i]));
      std::vector<graph::EdgeId> edges;
      if (src && dst && *src != *dst) {
        if (const auto path = graph::shortest_path(g, *src, *dst)) edges = path->edges;
      }
      it = path_cache.emplace(pairs[i], std::move(edges)).first;
    }
    if (it->second.empty()) continue;
    const std::size_t e_idx = epoch_index.at(timestamps[i]);
    for (const graph::EdgeId e : it->second) edge_load[e][e_idx] += bw[i];
  }

  for (std::size_t li = 0; li < wan_.link_count(); ++li) {
    const topology::WanLink& link = wan_.link(li);
    const double cap = link.capacity_gbps;
    if (cap <= 0.0) continue;
    for (std::size_t t = 0; t < epochs; ++t) {
      const double load = std::max(edge_load[link.forward][t], edge_load[link.backward][t]);
      series.by_link[li][t] = load / cap;
    }
  }
  return series;
}

CapacityPlan CapacityPlanner::plan_from_series(
    const UtilizationSeries& series, const std::vector<std::vector<double>>&) const {
  CapacityPlan plan;
  const std::size_t epochs = series.epochs.size();
  if (epochs == 0) return plan;

  for (std::size_t li = 0; li < wan_.link_count(); ++li) {
    const topology::WanLink& link = wan_.link(li);
    const auto& utils = series.by_link[li];
    std::size_t over = 0;
    double peak_util = 0.0;
    for (const double u : utils) {
      if (u > config_.utilization_threshold) ++over;
      peak_util = std::max(peak_util, u);
    }
    if (over == 0) continue;
    const double overload_fraction = static_cast<double>(over) / static_cast<double>(epochs);

    const graph::Edge& fwd = wan_.graph().edge(link.forward);
    const std::string name =
        wan_.graph().node_name(fwd.from) + "<->" + wan_.graph().node_name(fwd.to);

    if (config_.cross_layer) {
      // SMN mode: only sustained overloads, and only links with headroom.
      if (overload_fraction < config_.sustained_fraction) continue;
      if (!link.upgradable()) {
        plan.fiber_build_requests.push_back(name);
        continue;
      }
    } else if (!link.upgradable()) {
      // Naive mode files the proposal anyway — a wasted planning cycle,
      // since nothing can be installed.
      ++plan.wasted_proposals;
      continue;
    }

    LinkUpgrade upgrade;
    upgrade.link_index = li;
    upgrade.name = name;
    upgrade.old_capacity_gbps = link.capacity_gbps;
    upgrade.overload_fraction = overload_fraction;
    const double wanted = peak_util * link.capacity_gbps / config_.target_utilization;
    upgrade.proposed_capacity_gbps = std::min(wanted, link.fiber_limit_gbps);
    upgrade.fiber_limited = wanted > link.fiber_limit_gbps;
    if (upgrade.proposed_capacity_gbps > upgrade.old_capacity_gbps) {
      plan.total_added_gbps += upgrade.proposed_capacity_gbps - upgrade.old_capacity_gbps;
      plan.upgrades.push_back(std::move(upgrade));
    } else if (!config_.cross_layer) {
      ++plan.wasted_proposals;  // proposal with no installable capacity
    }
  }
  return plan;
}

CapacityPlan CapacityPlanner::plan(const telemetry::BandwidthLog& log) const {
  const UtilizationSeries series = compute_utilization(log);
  return plan_from_series(series, {});
}

CapacityPlan CapacityPlanner::plan_from_coarse(const telemetry::CoarseBandwidthLog& coarse,
                                               util::SimTime epoch) const {
  const telemetry::BandwidthLog reconstructed = coarse.reconstruct(epoch);
  return plan(reconstructed);
}

double CapacityPlanner::apply(topology::WanTopology& wan, const CapacityPlan& plan) {
  double installed = 0.0;
  for (const LinkUpgrade& u : plan.upgrades) {
    const double before = wan.link(u.link_index).capacity_gbps;
    const double after = wan.upgrade_link(u.link_index, u.proposed_capacity_gbps);
    installed += after - before;
  }
  return installed;
}

double plan_agreement(const CapacityPlan& a, const CapacityPlan& b) {
  return core::decision_agreement(a.upgraded_names(), b.upgraded_names());
}

}  // namespace smn::capacity
