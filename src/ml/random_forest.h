// Random Forest (bootstrap-aggregated CART trees with per-split feature
// subsampling) — the classifier §5 trains on cosine-similarity and health
// features "to predict the correct team label for a given incident".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "util/rng.h"

namespace smn::ml {

struct ForestConfig {
  std::size_t num_trees = 100;
  TreeConfig tree;
  /// When tree.max_features == 0, it defaults to sqrt(num_features).
  std::uint64_t seed = 1234;
  bool bootstrap = true;
};

class RandomForest {
 public:
  void fit(const Dataset& data, const ForestConfig& config);

  /// Mean of tree probability vectors.
  std::vector<double> predict_proba(std::span<const double> features) const;

  std::size_t predict(std::span<const double> features) const;

  /// Probability of class `c` — convenience for one-vs-rest baselines.
  double predict_class_proba(std::span<const double> features, std::size_t c) const;

  std::size_t tree_count() const noexcept { return trees_.size(); }
  std::size_t num_classes() const noexcept { return num_classes_; }

 private:
  std::vector<DecisionTree> trees_;
  std::size_t num_classes_ = 0;
};

/// Accuracy of `model` on `data` (fraction of correct argmax predictions).
double accuracy(const RandomForest& model, const Dataset& data);

/// Confusion matrix: rows = true label, columns = predicted.
std::vector<std::vector<std::size_t>> confusion_matrix(const RandomForest& model,
                                                       const Dataset& data);

/// Macro-averaged F1 over classes (absent classes skipped).
double macro_f1(const RandomForest& model, const Dataset& data);

/// Permutation feature importance: for each feature column, the mean drop
/// in accuracy (over `repeats` shuffles of that column) relative to the
/// unpermuted accuracy. Near-zero for features the model ignores; large
/// for load-bearing features. Deterministic given `rng` state.
std::vector<double> permutation_importance(const RandomForest& model, const Dataset& data,
                                           util::Rng& rng, std::size_t repeats = 3);

}  // namespace smn::ml
