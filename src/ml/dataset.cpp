#include "ml/dataset.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace smn::ml {

void Dataset::add(std::vector<double> features, std::size_t label, std::size_t group) {
  if (features.size() != num_features_) {
    throw std::invalid_argument("Dataset::add: feature count mismatch");
  }
  if (label >= num_classes_) throw std::invalid_argument("Dataset::add: label out of range");
  features_.insert(features_.end(), features.begin(), features.end());
  labels_.push_back(label);
  groups_.push_back(group);
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(num_features_, num_classes_);
  for (const std::size_t i : indices) {
    const auto r = row(i);
    out.add(std::vector<double>(r.begin(), r.end()), labels_.at(i), groups_.at(i));
  }
  return out;
}

Dataset Dataset::select_features(const std::vector<std::size_t>& columns) const {
  Dataset out(columns.size(), num_classes_);
  for (std::size_t i = 0; i < size(); ++i) {
    const auto r = row(i);
    std::vector<double> selected;
    selected.reserve(columns.size());
    for (const std::size_t c : columns) selected.push_back(r[c]);
    out.add(std::move(selected), labels_[i], groups_[i]);
  }
  return out;
}

Dataset Dataset::relabel(const std::vector<std::size_t>& mapping,
                         std::size_t new_num_classes) const {
  if (mapping.size() != num_classes_) {
    throw std::invalid_argument("Dataset::relabel: mapping size mismatch");
  }
  Dataset out(num_features_, new_num_classes);
  for (std::size_t i = 0; i < size(); ++i) {
    const auto r = row(i);
    out.add(std::vector<double>(r.begin(), r.end()), mapping.at(labels_[i]), groups_[i]);
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::split_by_group(double test_fraction, util::Rng& rng) const {
  std::set<std::size_t> group_set(groups_.begin(), groups_.end());
  std::vector<std::size_t> group_list(group_set.begin(), group_set.end());
  rng.shuffle(group_list);
  const auto test_groups_count = static_cast<std::size_t>(
      std::max(1.0, test_fraction * static_cast<double>(group_list.size())));
  std::set<std::size_t> test_groups(group_list.begin(),
                                    group_list.begin() + static_cast<std::ptrdiff_t>(std::min(
                                                             test_groups_count, group_list.size())));
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < size(); ++i) {
    (test_groups.contains(groups_[i]) ? test_idx : train_idx).push_back(i);
  }
  return {subset(train_idx), subset(test_idx)};
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes_, 0);
  for (const std::size_t label : labels_) ++counts[label];
  return counts;
}

}  // namespace smn::ml
