#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace smn::ml {
namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) noexcept {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

void DecisionTree::fit(const Dataset& data, const TreeConfig& config, util::Rng& rng,
                       const std::vector<std::size_t>& sample_indices) {
  if (data.size() == 0) throw std::invalid_argument("DecisionTree::fit: empty dataset");
  nodes_.clear();
  depth_ = 0;
  num_classes_ = data.num_classes();
  std::vector<std::size_t> indices = sample_indices;
  if (indices.empty()) {
    indices.resize(data.size());
    std::iota(indices.begin(), indices.end(), 0);
  }
  build(data, indices, 0, indices.size(), 0, config, rng);
}

std::int32_t DecisionTree::build(const Dataset& data, std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end, std::size_t depth,
                                 const TreeConfig& config, util::Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t count = end - begin;

  std::vector<std::size_t> counts(num_classes_, 0);
  for (std::size_t i = begin; i < end; ++i) ++counts[data.label(indices[i])];

  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.distribution.resize(num_classes_, 0.0);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      leaf.distribution[c] = static_cast<double>(counts[c]) / static_cast<double>(count);
    }
    nodes_.push_back(std::move(leaf));
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const bool pure = std::count_if(counts.begin(), counts.end(),
                                  [](std::size_t c) { return c > 0; }) <= 1;
  if (pure || depth >= config.max_depth || count < config.min_samples_split) {
    return make_leaf();
  }

  // Candidate features (all, or a random subset for forests).
  std::vector<std::size_t> features(data.num_features());
  std::iota(features.begin(), features.end(), 0);
  if (config.max_features > 0 && config.max_features < features.size()) {
    rng.shuffle(features);
    features.resize(config.max_features);
  }

  const double parent_impurity = gini(counts, count);
  double best_gain = 1e-12;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<std::pair<double, std::size_t>> values(count);  // (value, label)
  for (const std::size_t f : features) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t r = indices[begin + i];
      values[i] = {data.row(r)[f], data.label(r)};
    }
    std::sort(values.begin(), values.end());

    std::vector<std::size_t> left_counts(num_classes_, 0);
    std::vector<std::size_t> right_counts = counts;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      ++left_counts[values[i].second];
      --right_counts[values[i].second];
      if (values[i].first == values[i + 1].first) continue;  // no split point here
      const std::size_t nl = i + 1;
      const std::size_t nr = count - nl;
      if (nl < config.min_samples_leaf || nr < config.min_samples_leaf) continue;
      const double impurity =
          (static_cast<double>(nl) * gini(left_counts, nl) +
           static_cast<double>(nr) * gini(right_counts, nr)) /
          static_cast<double>(count);
      const double gain = parent_impurity - impurity;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (values[i].first + values[i + 1].first);
      }
    }
  }

  if (best_gain <= 1e-12) return make_leaf();

  // Partition indices in place around the threshold.
  const auto mid_it = std::stable_partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t r) {
        return data.row(r)[best_feature] <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();  // numeric degeneracy

  // Reserve our slot before recursing so children land after it.
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left = build(data, indices, begin, mid, depth + 1, config, rng);
  const std::int32_t right = build(data, indices, mid, end, depth + 1, config, rng);
  nodes_[static_cast<std::size_t>(self)].feature = best_feature;
  nodes_[static_cast<std::size_t>(self)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

std::vector<double> DecisionTree::predict_proba(std::span<const double> features) const {
  if (nodes_.empty()) return std::vector<double>(num_classes_, 0.0);
  std::size_t node = 0;
  while (!nodes_[node].is_leaf()) {
    const Node& n = nodes_[node];
    node = static_cast<std::size_t>(features[n.feature] <= n.threshold ? n.left : n.right);
  }
  return nodes_[node].distribution;
}

std::size_t DecisionTree::predict(std::span<const double> features) const {
  const std::vector<double> proba = predict_proba(features);
  return static_cast<std::size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

}  // namespace smn::ml
