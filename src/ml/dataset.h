// Tabular dataset for the incident-routing classifiers: dense double
// features, integer class labels, with group-aware splitting ("the test set
// only contains incidents that are a result of a root-cause that is never
// injected in the same way as in the training set", §5 — groups are
// injection variants).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace smn::ml {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::size_t num_features, std::size_t num_classes)
      : num_features_(num_features), num_classes_(num_classes) {}

  /// Adds one example; `features.size()` must equal num_features and
  /// `label` < num_classes. `group` tags the injection variant.
  void add(std::vector<double> features, std::size_t label, std::size_t group = 0);

  std::size_t size() const noexcept { return labels_.size(); }
  std::size_t num_features() const noexcept { return num_features_; }
  std::size_t num_classes() const noexcept { return num_classes_; }

  std::span<const double> row(std::size_t i) const {
    return {features_.data() + i * num_features_, num_features_};
  }
  std::size_t label(std::size_t i) const { return labels_.at(i); }
  std::size_t group(std::size_t i) const { return groups_.at(i); }

  /// Subset by row indices.
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Keeps only the feature columns in `columns` (order preserved).
  Dataset select_features(const std::vector<std::size_t>& columns) const;

  /// Remaps labels through `mapping` (size num_classes) into a dataset
  /// with `new_num_classes` classes — e.g. one-vs-rest binarization.
  Dataset relabel(const std::vector<std::size_t>& mapping, std::size_t new_num_classes) const;

  /// Group-aware split: whole groups are assigned to train or test so no
  /// injection variant ever straddles the boundary. `test_fraction` of
  /// groups (rounded) go to test. Deterministic given `rng`.
  std::pair<Dataset, Dataset> split_by_group(double test_fraction, util::Rng& rng) const;

  /// Class distribution (counts per label).
  std::vector<std::size_t> class_counts() const;

 private:
  std::size_t num_features_ = 0;
  std::size_t num_classes_ = 0;
  std::vector<double> features_;  ///< row-major
  std::vector<std::size_t> labels_;
  std::vector<std::size_t> groups_;
};

}  // namespace smn::ml
