// CART decision tree (Gini impurity, axis-aligned thresholds). Building
// block for the Random Forest the §5 CLTO uses to route incidents.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "util/rng.h"

namespace smn::ml {

struct TreeConfig {
  std::size_t max_depth = 12;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features considered per split; 0 = all (single tree) — forests pass
  /// ~sqrt(num_features).
  std::size_t max_features = 0;
};

class DecisionTree {
 public:
  /// Fits on `data`, optionally restricted to `sample_indices` (empty =
  /// all rows). `rng` drives feature subsampling when max_features > 0.
  void fit(const Dataset& data, const TreeConfig& config, util::Rng& rng,
           const std::vector<std::size_t>& sample_indices = {});

  /// Class-probability vector for one feature row.
  std::vector<double> predict_proba(std::span<const double> features) const;

  /// Argmax class for one feature row.
  std::size_t predict(std::span<const double> features) const;

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept { return depth_; }
  std::size_t num_classes() const noexcept { return num_classes_; }

 private:
  struct Node {
    // Internal nodes: feature/threshold and child indices.
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    // Leaves: class distribution (normalized).
    std::vector<double> distribution;

    bool is_leaf() const noexcept { return left < 0; }
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& indices, std::size_t begin,
                     std::size_t end, std::size_t depth, const TreeConfig& config,
                     util::Rng& rng);

  std::vector<Node> nodes_;
  std::size_t num_classes_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace smn::ml
