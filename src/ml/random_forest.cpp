#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smn::ml {

void RandomForest::fit(const Dataset& data, const ForestConfig& config) {
  if (data.size() == 0) throw std::invalid_argument("RandomForest::fit: empty dataset");
  if (config.num_trees == 0) throw std::invalid_argument("RandomForest::fit: need >= 1 tree");
  trees_.clear();
  num_classes_ = data.num_classes();

  TreeConfig tree_config = config.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = static_cast<std::size_t>(
        std::max(1.0, std::sqrt(static_cast<double>(data.num_features()))));
  }

  util::Rng rng(config.seed);
  trees_.resize(config.num_trees);
  for (std::size_t t = 0; t < config.num_trees; ++t) {
    util::Rng tree_rng = rng.fork();
    std::vector<std::size_t> sample;
    if (config.bootstrap) {
      sample.resize(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        sample[i] = static_cast<std::size_t>(
            tree_rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1));
      }
    }
    trees_[t].fit(data, tree_config, tree_rng, sample);
  }
}

std::vector<double> RandomForest::predict_proba(std::span<const double> features) const {
  std::vector<double> proba(num_classes_, 0.0);
  if (trees_.empty()) return proba;
  for (const DecisionTree& tree : trees_) {
    const std::vector<double> p = tree.predict_proba(features);
    for (std::size_t c = 0; c < num_classes_; ++c) proba[c] += p[c];
  }
  for (double& p : proba) p /= static_cast<double>(trees_.size());
  return proba;
}

std::size_t RandomForest::predict(std::span<const double> features) const {
  const std::vector<double> proba = predict_proba(features);
  return static_cast<std::size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

double RandomForest::predict_class_proba(std::span<const double> features, std::size_t c) const {
  const std::vector<double> proba = predict_proba(features);
  return c < proba.size() ? proba[c] : 0.0;
}

double accuracy(const RandomForest& model, const Dataset& data) {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (model.predict(data.row(i)) == data.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::vector<std::vector<std::size_t>> confusion_matrix(const RandomForest& model,
                                                       const Dataset& data) {
  std::vector<std::vector<std::size_t>> matrix(
      data.num_classes(), std::vector<std::size_t>(data.num_classes(), 0));
  for (std::size_t i = 0; i < data.size(); ++i) {
    ++matrix[data.label(i)][model.predict(data.row(i))];
  }
  return matrix;
}

double macro_f1(const RandomForest& model, const Dataset& data) {
  const auto matrix = confusion_matrix(model, data);
  const std::size_t k = matrix.size();
  double f1_sum = 0.0;
  std::size_t classes_present = 0;
  for (std::size_t c = 0; c < k; ++c) {
    std::size_t tp = matrix[c][c];
    std::size_t fn = 0, fp = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (j != c) {
        fn += matrix[c][j];
        fp += matrix[j][c];
      }
    }
    if (tp + fn == 0) continue;  // class absent from data
    ++classes_present;
    const double precision = tp + fp ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
    const double recall = static_cast<double>(tp) / static_cast<double>(tp + fn);
    if (precision + recall > 0.0) f1_sum += 2.0 * precision * recall / (precision + recall);
  }
  return classes_present ? f1_sum / static_cast<double>(classes_present) : 0.0;
}

std::vector<double> permutation_importance(const RandomForest& model, const Dataset& data,
                                           util::Rng& rng, std::size_t repeats) {
  std::vector<double> importance(data.num_features(), 0.0);
  if (data.size() == 0 || repeats == 0) return importance;
  const double baseline = accuracy(model, data);

  // Work on a mutable copy of the feature matrix, one column at a time.
  std::vector<std::vector<double>> rows(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto r = data.row(i);
    rows[i].assign(r.begin(), r.end());
  }

  std::vector<double> column(data.size());
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    double drop_total = 0.0;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      for (std::size_t i = 0; i < data.size(); ++i) column[i] = rows[i][f];
      rng.shuffle(column);
      for (std::size_t i = 0; i < data.size(); ++i) rows[i][f] = column[i];
      std::size_t correct = 0;
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (model.predict(rows[i]) == data.label(i)) ++correct;
      }
      drop_total += baseline - static_cast<double>(correct) / static_cast<double>(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) rows[i][f] = data.row(i)[f];  // restore
    }
    importance[f] = drop_total / static_cast<double>(repeats);
  }
  return importance;
}

}  // namespace smn::ml
