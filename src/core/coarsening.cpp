#include "core/coarsening.h"

namespace smn::core {

CoarseningRegistry& CoarseningRegistry::instance() {
  static CoarseningRegistry registry;
  return registry;
}

CoarseningRegistry::CoarseningRegistry() {
  // Table 2 of the paper, verbatim.
  register_coarsening({.name = "coarse-bw-logs",
                       .mapping = "Nodes -> Meta Nodes",
                       .whats_lost = "Suboptimal solution",
                       .whats_gained = "Fast traffic engineering and planning"});
  register_coarsening({.name = "cdg",
                       .mapping = "Microservice -> team dependency",
                       .whats_lost = "Coarser incident routing",
                       .whats_gained = "Extra signal for incident routing"});
}

void CoarseningRegistry::register_coarsening(CoarseningInfo info) {
  entries_[info.name] = std::move(info);
}

const CoarseningInfo* CoarseningRegistry::find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<CoarseningInfo> CoarseningRegistry::entries() const {
  std::vector<CoarseningInfo> out;
  out.reserve(entries_.size());
  for (const auto& [_, info] : entries_) out.push_back(info);
  return out;
}

}  // namespace smn::core
