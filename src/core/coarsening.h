// The paper's central abstraction (§3, Figure 2):
//
//   Given a complex structure S, a coarsening s = C(S) is a succinct mapping
//   of S to a simpler structure s such that |s| < |S| and acting on s is
//   approximately the "same" as acting on S.
//
// This header makes that definition concrete. A Coarsener<Fine, Coarse>
// performs the mapping C and reports |S| and |s| so reduction factors are
// measurable; an Action<Repr, Result> is "acting on" a representation; and
// fidelity.h quantifies how close acting-on-s comes to acting-on-S.
//
// Instantiations in this repository:
//   * telemetry::TimeCoarsener        — bandwidth logs -> windowed summaries
//   * topology::SupernodeCoarsener    — WAN graph      -> supernode graph
//   * telemetry::TopologyLogCoarsener — bandwidth logs -> supernode logs
//   * depgraph::CdgCoarsener          — service graph  -> team-level CDG
#pragma once

#include <concepts>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace smn::core {

/// Abstract coarsening C : Fine -> Coarse.
///
/// `size()` overloads define the |.| measure of Figure 2 — typically record
/// count for logs and node+edge count for graphs. A valid coarsening must
/// satisfy coarse size < fine size on non-trivial inputs; tests assert this
/// for every instantiation (the "|s| < |S|" law).
template <typename Fine, typename Coarse>
class Coarsener {
 public:
  using fine_type = Fine;
  using coarse_type = Coarse;

  virtual ~Coarsener() = default;

  /// Human-readable identifier ("time-window", "supernode", "team-cdg").
  virtual std::string name() const = 0;

  /// Applies the mapping C.
  virtual Coarse coarsen(const Fine& fine) const = 0;

  /// |S| — size measure of the fine structure. Named (rather than an
  /// overload set) so Fine and Coarse may be the same type, as they are for
  /// graph -> graph coarsenings.
  virtual std::size_t fine_size(const Fine& fine) const = 0;

  /// |s| — size measure of the coarse structure.
  virtual std::size_t coarse_size(const Coarse& coarse) const = 0;

  /// Reduction factor |S| / |s| for a particular input (>= 1 for a valid
  /// coarsening on non-degenerate input).
  double reduction_factor(const Fine& fine, const Coarse& coarse) const {
    const std::size_t cs = coarse_size(coarse);
    if (cs == 0) return 0.0;
    return static_cast<double>(fine_size(fine)) / static_cast<double>(cs);
  }
};

/// An "action" in the sense of Figure 2: any computation over a
/// representation whose outcome can be compared across representations.
/// Examples: a TE solve (result = achievable throughput), a capacity plan
/// (result = set of augmented links), an incident-routing decision
/// (result = team scores).
template <typename Repr, typename Result>
using Action = std::function<Result(const Repr&)>;

/// Metadata describing a registered coarsening, mirroring one row of the
/// paper's Table 2 ("Mapping", "What's Lost", "What's Gained").
struct CoarseningInfo {
  std::string name;
  std::string mapping;      ///< e.g. "Nodes -> Meta Nodes"
  std::string whats_lost;   ///< e.g. "Suboptimal solution"
  std::string whats_gained; ///< e.g. "Fast traffic engineering and planning"
};

/// Process-wide catalog of coarsenings known to the SMN, so the CLTO and
/// the Table-2 bench can enumerate them. Typed coarsener objects live in
/// their own modules; this registry only records descriptive metadata.
class CoarseningRegistry {
 public:
  /// The singleton registry; pre-populated with the paper's two examples.
  static CoarseningRegistry& instance();

  /// Registers or replaces an entry keyed by `info.name`.
  void register_coarsening(CoarseningInfo info);

  /// Entry for `name`, or nullptr when unknown.
  const CoarseningInfo* find(const std::string& name) const;

  /// All entries sorted by name.
  std::vector<CoarseningInfo> entries() const;

 private:
  CoarseningRegistry();
  std::map<std::string, CoarseningInfo> entries_;
};

}  // namespace smn::core
