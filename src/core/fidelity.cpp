#include "core/fidelity.h"

#include <algorithm>

#include "util/stats.h"

namespace smn::core {

double scalar_fidelity(double fine_result, double coarse_result) noexcept {
  if (fine_result <= 0.0) return coarse_result <= 0.0 ? 1.0 : 0.0;
  return std::clamp(coarse_result / fine_result, 0.0, 1.0);
}

double decision_agreement(const std::set<std::string>& fine_decisions,
                          const std::set<std::string>& coarse_decisions) {
  if (fine_decisions.empty() && coarse_decisions.empty()) return 1.0;
  std::size_t intersection = 0;
  for (const auto& d : fine_decisions) intersection += coarse_decisions.count(d);
  const std::size_t union_size = fine_decisions.size() + coarse_decisions.size() - intersection;
  return union_size == 0 ? 1.0 : static_cast<double>(intersection) / static_cast<double>(union_size);
}

double vector_fidelity(std::span<const double> fine_result,
                       std::span<const double> coarse_result) noexcept {
  return util::cosine_similarity(fine_result, coarse_result);
}

FidelityReport make_scalar_report(std::string action_name, double fine_result,
                                  double coarse_result, double reduction_factor) {
  FidelityReport report;
  report.action_name = std::move(action_name);
  report.fine_result = fine_result;
  report.coarse_result = coarse_result;
  report.fidelity = scalar_fidelity(fine_result, coarse_result);
  report.reduction_factor = reduction_factor;
  return report;
}

}  // namespace smn::core
