// Quantifying "approximately the same effect" (Figure 2).
//
// The paper leaves the formal definition open; we operationalize it as the
// comparison of action outcomes across representations. For scalar-valued
// actions the fidelity is the relative gap; for set-valued actions
// (e.g. "which links to upgrade") it is Jaccard agreement; for vector-valued
// actions (e.g. team scores) it is cosine similarity.
#pragma once

#include <set>
#include <span>
#include <string>

namespace smn::core {

/// Outcome of evaluating one action on both the fine structure S and its
/// coarsening s.
struct FidelityReport {
  std::string action_name;
  double fine_result = 0.0;    ///< A(S) for scalar actions.
  double coarse_result = 0.0;  ///< A'(s) for scalar actions.
  /// 1 - relative gap, in [0, 1]; 1 means the coarsening is lossless for
  /// this action.
  double fidelity = 0.0;
  double reduction_factor = 1.0;  ///< |S| / |s|.
};

/// Fidelity of a scalar maximization action (e.g. TE throughput): the
/// fraction of the fine-grained optimum retained by acting on the
/// coarsening. Clamped to [0, 1].
double scalar_fidelity(double fine_result, double coarse_result) noexcept;

/// Jaccard agreement |A ∩ B| / |A ∪ B| of two decision sets (e.g. upgraded
/// links). Both empty counts as perfect agreement (1).
double decision_agreement(const std::set<std::string>& fine_decisions,
                          const std::set<std::string>& coarse_decisions);

/// Cosine fidelity of vector-valued action outcomes.
double vector_fidelity(std::span<const double> fine_result,
                       std::span<const double> coarse_result) noexcept;

/// Builds a report for a scalar action.
FidelityReport make_scalar_report(std::string action_name, double fine_result,
                                  double coarse_result, double reduction_factor);

}  // namespace smn::core
