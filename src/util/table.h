// ASCII table rendering for bench binaries: every experiment prints a
// paper-style table so EXPERIMENTS.md can record paper-vs-measured rows.
#pragma once

#include <string>
#include <vector>

namespace smn::util {

/// Builds and renders a fixed-column ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience for mixed numeric/text rows.
  void add_row_values(const std::vector<double>& values, int precision = 2);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with column alignment and +---+ separators.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smn::util
