// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace smn::util {

/// Splits on `delim`; empty segments are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lowercases ASCII in place and returns the result.
std::string to_lower(std::string_view text);

/// True when `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// printf-style double formatting with fixed precision.
std::string format_double(double value, int precision);

}  // namespace smn::util
