// Deterministic random number generation for reproducible simulation.
//
// Every stochastic component in the library takes an explicit Rng (or a
// seed) so that experiments are bit-reproducible across runs and platforms.
// The generator is xoshiro256** seeded via SplitMix64, which is both fast
// and statistically strong enough for simulation workloads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace smn::util {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be
/// used with <random> distributions, but also provides the convenience
/// draws the simulators need directly.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state deterministically from `seed` using SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller (cached second draw).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Log-normal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Pareto with scale x_m (> 0) and shape alpha (> 0): heavy-tailed.
  double pareto(double x_m, double alpha) noexcept;

  /// Poisson draw with the given mean (Knuth for small means, normal
  /// approximation above 64).
  std::uint64_t poisson(double mean) noexcept;

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Zero-total weights fall back to uniform choice.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// entity its own stream so adding entities never perturbs others.
  Rng fork() noexcept;

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace smn::util
