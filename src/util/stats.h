// Descriptive statistics used throughout the library: streaming moments
// (Welford), percentiles, vector similarity, and error metrics that the
// coarsening-fidelity machinery reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace smn::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// O(1) memory; numerically stable for long telemetry streams.
class RunningStats {
 public:
  void add(double value) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed summary of a batch of samples; this is exactly the set of summary
/// statistics §4's time-based coarsening retains per window.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Computes the full Summary of `values` (copies and sorts internally).
Summary summarize(std::span<const double> values);

/// Linear-interpolated percentile of `sorted` (must be ascending).
/// `q` in [0, 1]. Empty input yields 0.
double percentile_sorted(std::span<const double> sorted, double q) noexcept;

/// Convenience: copies, sorts, then interpolates.
double percentile(std::span<const double> values, double q);

/// Cosine similarity of two equal-length vectors in [0, 1] for
/// non-negative inputs; 0 if either vector is all-zero.
/// This is the §5 symptom-explainability primitive.
double cosine_similarity(std::span<const double> a, std::span<const double> b) noexcept;

/// Mean absolute error between paired vectors (must be equal length).
double mean_absolute_error(std::span<const double> truth, std::span<const double> estimate) noexcept;

/// Mean absolute percentage error; pairs whose truth is 0 are skipped.
double mean_absolute_percentage_error(std::span<const double> truth,
                                      std::span<const double> estimate) noexcept;

/// Root mean squared error between paired vectors.
double root_mean_squared_error(std::span<const double> truth, std::span<const double> estimate) noexcept;

/// Pearson correlation coefficient; 0 when either side has no variance.
double pearson_correlation(std::span<const double> a, std::span<const double> b) noexcept;

/// Euclidean (L2) norm.
double l2_norm(std::span<const double> v) noexcept;

/// Jensen-style relative gap: (optimal - achieved) / optimal, clamped at 0
/// when optimal is 0. Used to report TE optimality loss under coarsening.
double relative_gap(double optimal, double achieved) noexcept;

}  // namespace smn::util
