#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/contracts.h"

namespace smn::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  worker_ids_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
    worker_ids_.push_back(workers_.back().get_id());
  }
  SMN_CHECK(!workers_.empty(), "pool constructed with no workers");
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread::id& id : worker_ids_) {
    if (id == self) return true;
  }
  return false;
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Work submitted after ~ThreadPool() has begun from a non-worker thread
    // would be dropped silently (workers may already have exited); tasks
    // enqueued by in-flight worker tasks still drain, because a worker only
    // exits on an empty queue.
    SMN_CHECK(!stopping_ || on_worker_thread(),
              "ThreadPool::submit during shutdown would drop the task");
    tasks_.push(std::move(task));
  }
  work_available_.notify_one();
}

// Lock handoff through std::unique_lock + condition_variable::wait is
// invisible to clang's analysis (libc++ annotates lock_guard only); smn_lint
// R7 still tracks the unique_lock lifetime through this body.
void ThreadPool::worker_loop() SMN_NO_THREAD_SAFETY_ANALYSIS {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

// SMN_NO_THREAD_SAFETY_ANALYSIS: the completion wait below holds
// state->mutex through a std::unique_lock, which clang cannot follow (see
// worker_loop); R7 checks the body.
void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body)
    SMN_NO_THREAD_SAFETY_ANALYSIS {
  SMN_CHECK(static_cast<bool>(body), "parallel_for needs a callable body");
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (size() <= 1 || count == 1 || on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Contiguous blocks, one per worker; block k owns
  // [begin + k*chunk, begin + min((k+1)*chunk, count)).
  const std::size_t blocks = std::min(size(), count);
  const std::size_t chunk = (count + blocks - 1) / blocks;

  struct LoopState {
    std::mutex mutex;  // done waits on it; guarded members are annotated
    std::condition_variable done;
    std::size_t pending SMN_GUARDED_BY(mutex) = 0;
    std::exception_ptr error SMN_GUARDED_BY(mutex);
  };
  auto state = std::make_shared<LoopState>();
  // Pre-publication write: no worker has seen `state` yet, so the store
  // needs no lock. smn-lint: allow(lock-discipline)
  state->pending = blocks;

  for (std::size_t k = 0; k < blocks; ++k) {
    const std::size_t lo = begin + k * chunk;
    const std::size_t hi = std::min(begin + (k + 1) * chunk, end);
    enqueue([state, lo, hi, &body] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(state->mutex);
        --state->pending;
      }
      state->done.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&state] { return state->pending == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace smn::util
