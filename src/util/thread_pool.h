// Fixed-size worker thread pool for the embarrassingly-parallel outer
// sweeps of the TE pipeline (per-failure-scenario solves, per-window
// solves, bench harness thread scaling).
//
// Design constraints, in priority order:
//   1. Determinism: parallel_for(i) writes results keyed by index, so any
//      reduction the caller performs in index order is bit-identical to a
//      serial run regardless of worker count or scheduling.
//   2. No nested deadlocks: parallel_for called from inside a worker runs
//      the loop inline on that worker instead of enqueueing (the pool would
//      otherwise wait on tasks that can never be scheduled).
//   3. Exception safety: the first exception thrown by a loop body is
//      captured and rethrown on the calling thread after the loop drains.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/thread_annotations.h"

namespace smn::util {

class ThreadPool {
 public:
  /// `threads == 0` uses std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Calls `body(i)` exactly once for every i in [begin, end), distributing
  /// contiguous index blocks across the workers and blocking until all
  /// complete. Each index is processed by exactly one thread, so writing
  /// `results[i]` from the body is race-free and the assembled `results`
  /// vector is identical for any pool size (deterministic reduction order).
  /// Runs inline when the pool has one worker, the range is a single index,
  /// or the caller is itself a pool worker (nested use). Must not be called
  /// with `mutex_` held (enqueue takes it; a body blocked on it deadlocks
  /// the fan-out).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body) SMN_EXCLUDES(mutex_);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

 private:
  void enqueue(std::function<void()> task) SMN_EXCLUDES(mutex_);
  void worker_loop();

  /// work_available_ waits on mutex_; the guarded members are annotated.
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::queue<std::function<void()>> tasks_ SMN_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
  /// Immutable after construction, so on_worker_thread() can read it with
  /// no lock even while the destructor joins workers_.
  std::vector<std::thread::id> worker_ids_;
  bool stopping_ SMN_GUARDED_BY(mutex_) = false;
};

}  // namespace smn::util
