// Lock-discipline annotation vocabulary (DESIGN.md §13). The macros name,
// in the declaration itself, which mutex protects a member and which locks
// a function needs, acquires, or must not hold. Two checkers consume them:
//
//   * smn_lint R7 (tools/smn_lint/lock_discipline.h) parses the spelled
//     annotations straight off the token stream and runs a brace-scope
//     dataflow over lock_guard/unique_lock/shared_lock/scoped_lock
//     lifetimes — every compiler, every build.
//   * Under clang the macros additionally expand to the thread-safety
//     attributes, so a `-Wthread-safety` build (the clang-thread-safety CI
//     job) re-checks the same discipline with the compiler's own analysis.
//     libstdc++'s std::mutex is not a capability type, so that job builds
//     against libc++ with _LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS, which
//     annotates std::mutex and std::lock_guard.
//
// Under gcc (the default toolchain here) every macro expands to nothing —
// annotations are free at runtime and never change codegen.
//
// Usage:
//   std::mutex mutex_;
//   std::queue<Task> tasks_ SMN_GUARDED_BY(mutex_);
//   void drain() SMN_REQUIRES(mutex_);      // caller holds mutex_
//   void stop() SMN_EXCLUDES(mutex_);       // caller must NOT hold mutex_
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define SMN_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define SMN_THREAD_ANNOTATION_IMPL(x)  // expands to nothing outside clang
#endif

/// Member attribute: reads and writes of the member require holding `x`.
#define SMN_GUARDED_BY(x) SMN_THREAD_ANNOTATION_IMPL(guarded_by(x))

/// Pointer member attribute: the pointed-to data (not the pointer itself)
/// requires holding `x`.
#define SMN_PT_GUARDED_BY(x) SMN_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/// Function attribute: callers must already hold every listed lock
/// (exclusively). The function neither acquires nor releases them.
#define SMN_REQUIRES(...) \
  SMN_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/// Function attribute: callers must hold the listed locks at least shared.
#define SMN_REQUIRES_SHARED(...) \
  SMN_THREAD_ANNOTATION_IMPL(requires_shared_capability(__VA_ARGS__))

/// Function attribute: the function acquires the listed locks itself and
/// returns holding them; callers must not hold them on entry.
#define SMN_ACQUIRES(...) \
  SMN_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))

/// Function attribute: the function releases the listed locks the caller
/// holds on entry.
#define SMN_RELEASES(...) \
  SMN_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))

/// Function attribute: the function must be called WITHOUT the listed locks
/// held — it takes them itself (directly or through a callee), so entering
/// with one held is a self-deadlock on a non-recursive mutex.
#define SMN_EXCLUDES(...) SMN_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/// Function attribute: returns a reference to the capability `x` (lock
/// accessor shims).
#define SMN_RETURN_CAPABILITY(x) SMN_THREAD_ANNOTATION_IMPL(lock_returned(x))

/// Escape hatch for functions whose locking clang's analysis cannot follow
/// (condition-variable wait loops, lock handoff through std::unique_lock).
/// smn_lint R7 still checks these bodies; pair uses with a comment saying
/// why the compiler-side analysis is off.
#define SMN_NO_THREAD_SAFETY_ANALYSIS \
  SMN_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)
