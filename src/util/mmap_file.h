// Read-only memory-mapped file, RAII. The spill tier of the telemetry
// store (DESIGN.md §10) maps sealed column files back on demand; this
// wrapper owns exactly one mapping and releases it deterministically.
//
// Portability: on POSIX the file is mmap(2)'d PROT_READ and the descriptor
// is closed immediately after (the mapping keeps the pages alive). On
// platforms without mmap — or when the caller asks via `allow_mmap =
// false`, which tests use to cover both paths — the file is read() into a
// heap buffer instead; data()/size() behave identically either way.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace smn::util {

class MmapFile {
 public:
  /// Empty (unmapped) handle; data() == nullptr, size() == 0.
  MmapFile() = default;

  /// Maps `path` read-only. Throws std::runtime_error when the file cannot
  /// be opened, stat'ed, or mapped. `allow_mmap = false` forces the
  /// read-into-buffer fallback (also taken automatically on platforms
  /// without mmap). A zero-length file yields a valid handle with
  /// size() == 0.
  static MmapFile open(const std::string& path, bool allow_mmap = true);

  ~MmapFile() { reset(); }

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// First byte of the file contents (nullptr when empty or unopened).
  const std::byte* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }

  /// True once open() succeeded (even for a zero-length file).
  bool valid() const noexcept { return valid_; }

  /// True when the contents come from an actual mmap (false on the read()
  /// fallback path). Lets callers report map/unmap counts honestly.
  bool is_mapped() const noexcept { return mapped_; }

  /// Releases the mapping / buffer and returns to the empty state.
  void reset() noexcept;

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool valid_ = false;
  bool mapped_ = false;                  ///< data_ came from mmap, not fallback_
  std::unique_ptr<std::byte[]> fallback_;  ///< owns data_ when !mapped_
};

}  // namespace smn::util
