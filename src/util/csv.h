// Minimal CSV reading/writing for bandwidth logs and experiment outputs.
// Fields containing commas, quotes, or newlines are quoted per RFC 4180.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace smn::util {

/// Serializes one CSV row, quoting fields as needed.
std::string csv_join(const std::vector<std::string>& fields);

/// Parses one CSV line into fields, honoring RFC-4180 quoting.
std::vector<std::string> csv_split(std::string_view line);

/// Streaming CSV writer over any std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);
  std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  std::size_t rows_ = 0;
};

/// In-memory CSV document with an optional header row.
class CsvDocument {
 public:
  /// Parses `text`; when `has_header` the first row becomes the header.
  static CsvDocument parse(std::string_view text, bool has_header);

  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept { return rows_; }

  /// Column index of `name` in the header, if present.
  std::optional<std::size_t> column(std::string_view name) const noexcept;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smn::util
