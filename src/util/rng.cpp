#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace smn::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / lambda;
}

double Rng::pareto(double x_m, double alpha) noexcept {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return x_m / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double draw = normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = uniform();
  std::uint64_t count = 0;
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  if (weights.empty()) return 0;
  double total = 0.0;
  for (const double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(weights.size()) - 1));
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork() noexcept { return Rng((*this)()); }

}  // namespace smn::util
