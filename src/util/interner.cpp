#include "util/interner.h"

#include <mutex>
#include <stdexcept>

#include "util/contracts.h"

namespace smn::util {

DcId Interner::intern(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  const auto it = index_.find(name);  // re-check: lost the race to another writer
  if (it != index_.end()) return it->second;
  SMN_CHECK(names_.size() < kInvalidDcId, "DcId space exhausted");
  // push_back publishes the name (release on the table size) BEFORE the
  // index insertion, so a concurrent lock-free name(id) that learned `id`
  // from any source always finds the string bytes visible.
  const auto id = static_cast<DcId>(names_.push_back(std::string(name)));
  index_.emplace(std::string_view(names_[id]), id);
  SMN_DCHECK(index_.size() == names_.size(), "index and name table diverged");
  return id;
}

std::optional<DcId> Interner::find(std::string_view name) const {
  std::shared_lock lock(mutex_);
  const auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Interner::name(DcId id) const {
  // Lock-free decode: the acquire load inside names_.size() orders the
  // bounds check before the element read (epoch_table.h protocol).
  if (id >= names_.size()) throw std::out_of_range("Interner::name: unknown id");
  return names_[id];
}

PairId PairInterner::intern(DcId src, DcId dst) {
  const std::uint64_t key = pack(src, dst);
  {
    std::shared_lock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  SMN_CHECK(packed_.size() < kInvalidPairId, "PairId space exhausted");
  SMN_DCHECK(src != kInvalidDcId && dst != kInvalidDcId,
             "interning a pair of invalid DcIds");
  const auto id = static_cast<PairId>(packed_.push_back(key));
  index_.emplace(key, id);
  SMN_DCHECK(index_.size() == packed_.size(), "index and pair table diverged");
  return id;
}

std::optional<PairId> PairInterner::find(DcId src, DcId dst) const {
  std::shared_lock lock(mutex_);
  const auto it = index_.find(pack(src, dst));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

DcId PairInterner::src(PairId id) const {
  if (id >= packed_.size()) throw std::out_of_range("PairInterner::src: unknown id");
  return static_cast<DcId>(packed_[id] >> 32);
}

DcId PairInterner::dst(PairId id) const {
  if (id >= packed_.size()) throw std::out_of_range("PairInterner::dst: unknown id");
  return static_cast<DcId>(packed_[id] & 0xFFFFFFFFu);
}

IdSpace& IdSpace::global() noexcept {
  static IdSpace instance;
  return instance;
}

std::optional<PairId> IdSpace::find_pair_of_names(std::string_view src,
                                                 std::string_view dst) const {
  const auto s = dcs_.find(src);
  if (!s) return std::nullopt;
  const auto d = dcs_.find(dst);
  if (!d) return std::nullopt;
  return pairs_.find(*s, *d);
}

bool IdSpace::pair_name_less(PairId a, PairId b) const {
  if (a == b) return false;
  const std::string& sa = src_name(a);
  const std::string& sb = src_name(b);
  if (sa != sb) return sa < sb;
  return dst_name(a) < dst_name(b);
}

}  // namespace smn::util
