#include "util/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace smn::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;  // guards: stderr emission (whole lines, no interleaving)

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level() || message.empty()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_tag(level) << "] " << message << '\n';
}

}  // namespace smn::util
