// Append-only table with epoch-published size: the RCU-lite building block
// of the concurrent read path (DESIGN.md §14). One writer at a time (the
// caller serializes writers with its own mutex) appends elements; any
// number of readers concurrently access every element below the published
// size with no lock at all.
//
// Why this is cheap here: everything the telemetry spine stores is
// append-only — interned names, packed pair keys, day-segment columns,
// coarse summaries. Nothing is ever overwritten or erased, so the classic
// hard part of RCU (reclaiming replaced state under concurrent readers)
// almost vanishes. The only replaced state is the chunk *directory* when it
// grows, and retired directories are kept until the table is destroyed (a
// quiescent point by construction), so a reader holding an old directory
// can never dereference freed memory. Retired directories total less than
// the final directory's size (geometric growth), so the deferred
// reclamation is bounded and tiny — pointers, not payload.
//
// Memory-ordering protocol:
//   writer: construct element in its chunk slot (plain store)
//           -> publish chunk pointer / grown directory (release not needed
//              in isolation, but harmless)
//           -> size_.store(n + 1, release)
//   reader: n = size_.load(acquire)   // the epoch
//           -> any element below n, via the directory
// The release/acquire pair on size_ makes every write the writer performed
// before publishing visible to a reader that observed the new size,
// including the element bytes, the chunk-pointer store, and any directory
// growth — so readers need no per-element synchronization.
//
// Writers must be externally serialized (callers annotate their writer
// entry points with SMN_REQUIRES on the owning mutex); readers never block
// writers and writers never block readers.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "util/contracts.h"

namespace smn::util {

template <typename T>
class EpochTable {
 public:
  /// `chunk_size` fixes the granularity of stable storage; chunks never
  /// move once allocated, so references into them stay valid for the
  /// table's lifetime.
  explicit EpochTable(std::size_t chunk_size = 1024) : chunk_size_(chunk_size) {
    SMN_CHECK(chunk_size_ > 0, "EpochTable chunk size must be positive");
  }

  EpochTable(const EpochTable&) = delete;
  EpochTable& operator=(const EpochTable&) = delete;

  ~EpochTable() {
    const Directory* dir = dir_.load(std::memory_order_acquire);
    if (dir != nullptr) {
      for (std::size_t c = 0; c < chunk_count_; ++c) delete[] dir->chunks[c];
    }
    delete dir;
    for (const Directory* retired : retired_) delete retired;
  }

  /// Appends `value` and publishes it; returns its index. Writer side:
  /// callers serialize all push_back/emplace_back calls behind one mutex.
  std::size_t push_back(T value) {
    const std::size_t n = size_.load(std::memory_order_relaxed);
    slot_for(n) = std::move(value);
    size_.store(n + 1, std::memory_order_release);
    return n;
  }

  /// Bulk append: places every element of `values`, publishing the size
  /// once at the end (readers see all of the batch or none of its tail).
  void append(std::span<const T> values) {
    std::size_t n = size_.load(std::memory_order_relaxed);
    for (const T& value : values) slot_for(n++) = value;
    size_.store(n, std::memory_order_release);
  }

  /// Writes `value` at index `size() + offset` WITHOUT publishing — for
  /// multi-column rows (telemetry::StableLog) where one shared row counter
  /// publishes several tables at once. Pair with publish().
  void stage(std::size_t offset, T value) {
    slot_for(size_.load(std::memory_order_relaxed) + offset) = std::move(value);
  }

  /// Publishes `count` staged elements.
  void publish(std::size_t count) {
    size_.store(size_.load(std::memory_order_relaxed) + count, std::memory_order_release);
  }

  /// Published element count — the reader's epoch. Every index below the
  /// returned value is safe to read lock-free on the calling thread.
  std::size_t size() const noexcept { return size_.load(std::memory_order_acquire); }

  bool empty() const noexcept { return size() == 0; }

  /// Element `i`. Caller contract: `i` is below a size() value this thread
  /// has observed (readers), or below the staged write position (the
  /// writer). The reference stays valid for the table's lifetime.
  const T& operator[](std::size_t i) const noexcept {
    const Directory* dir = dir_.load(std::memory_order_acquire);
    return dir->chunks[i / chunk_size_][i % chunk_size_];
  }

  /// Contiguous spans covering [begin, end): calls `fn(offset, span)` for
  /// each chunk-aligned piece in order. The bounds must satisfy the same
  /// contract as operator[].
  template <typename Fn>
  void for_each_span(std::size_t begin, std::size_t end, Fn&& fn) const {
    const Directory* dir = dir_.load(std::memory_order_acquire);
    std::size_t i = begin;
    while (i < end) {
      const std::size_t chunk = i / chunk_size_;
      const std::size_t off = i % chunk_size_;
      const std::size_t len = std::min(chunk_size_ - off, end - i);
      fn(i, std::span<const T>(dir->chunks[chunk] + off, len));
      i += len;
    }
  }

  /// Contiguous span of `len` elements starting at `begin`. The range must
  /// not cross a chunk boundary (use for_each_span for arbitrary ranges) —
  /// this is the zipper for parallel same-chunk-size tables, where one
  /// table's for_each_span pieces index the others.
  std::span<const T> chunk_span(std::size_t begin, std::size_t len) const {
    SMN_DCHECK(begin / chunk_size_ == (begin + len - 1) / chunk_size_ || len == 0,
               "chunk_span range crosses a chunk boundary");
    const Directory* dir = dir_.load(std::memory_order_acquire);
    return {dir->chunks[begin / chunk_size_] + begin % chunk_size_, len};
  }

  std::size_t chunk_size() const noexcept { return chunk_size_; }

  /// Bytes of allocated chunk storage (capacity, not published count).
  std::size_t allocated_bytes() const noexcept { return chunk_count_ * chunk_size_ * sizeof(T); }

 private:
  /// Chunk-pointer directory. Grows by copying pointers into a twice-as-big
  /// array and publishing it; the old directory is retired, not freed, so
  /// concurrent readers holding it stay valid.
  struct Directory {
    std::size_t capacity = 0;                 ///< chunk-pointer slots
    std::unique_ptr<T*[]> chunks;
  };

  /// Writer-side slot accessor: allocates the chunk (and grows the
  /// directory) on first touch.
  T& slot_for(std::size_t i) {
    const std::size_t chunk = i / chunk_size_;
    if (chunk >= chunk_count_) grow_to(chunk);
    Directory* dir = dir_.load(std::memory_order_relaxed);
    return dir->chunks[chunk][i % chunk_size_];
  }

  void grow_to(std::size_t chunk) {
    Directory* dir = dir_.load(std::memory_order_relaxed);
    if (dir == nullptr || chunk >= dir->capacity) {
      const std::size_t capacity =
          std::max<std::size_t>(kInitialDirectory, dir == nullptr ? 0 : dir->capacity * 2);
      auto* grown = new Directory;
      grown->capacity = capacity;
      grown->chunks = std::make_unique<T*[]>(capacity);
      for (std::size_t c = 0; c < chunk_count_; ++c) grown->chunks[c] = dir->chunks[c];
      dir_.store(grown, std::memory_order_release);
      if (dir != nullptr) retired_.push_back(dir);  // reclaimed at destruction
      dir = grown;
    }
    SMN_DCHECK(chunk == chunk_count_, "chunks must be allocated densely in order");
    dir->chunks[chunk] = new T[chunk_size_];
    chunk_count_ = chunk + 1;
  }

  static constexpr std::size_t kInitialDirectory = 16;

  const std::size_t chunk_size_;
  std::atomic<std::size_t> size_{0};           ///< published count (the epoch)
  std::atomic<Directory*> dir_{nullptr};       ///< readers load-acquire
  /// Writer-only state (behind the caller's writer mutex).
  std::size_t chunk_count_ = 0;
  std::vector<const Directory*> retired_;
};

}  // namespace smn::util
