#include "util/mmap_file.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

#if defined(_WIN32)
#define SMN_HAS_MMAP 0
#else
#define SMN_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace smn::util {

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    valid_ = std::exchange(other.valid_, false);
    mapped_ = std::exchange(other.mapped_, false);
    fallback_ = std::move(other.fallback_);
  }
  return *this;
}

void MmapFile::reset() noexcept {
#if SMN_HAS_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  fallback_.reset();
  data_ = nullptr;
  size_ = 0;
  valid_ = false;
  mapped_ = false;
}

MmapFile MmapFile::open(const std::string& path, bool allow_mmap) {
  MmapFile out;
#if SMN_HAS_MMAP
  if (allow_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw std::runtime_error("MmapFile: cannot open " + path);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw std::runtime_error("MmapFile: cannot stat " + path);
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      out.valid_ = true;
      return out;
    }
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping holds its own reference to the pages
    if (base == MAP_FAILED) throw std::runtime_error("MmapFile: mmap failed for " + path);
    out.data_ = static_cast<const std::byte*>(base);
    out.size_ = size;
    out.valid_ = true;
    out.mapped_ = true;
    return out;
  }
#else
  (void)allow_mmap;
#endif
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("MmapFile: cannot open " + path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    throw std::runtime_error("MmapFile: cannot seek " + path);
  }
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    throw std::runtime_error("MmapFile: cannot tell " + path);
  }
  std::rewind(f);
  const std::size_t size = static_cast<std::size_t>(end);
  if (size > 0) {
    out.fallback_ = std::make_unique<std::byte[]>(size);
    if (std::fread(out.fallback_.get(), 1, size, f) != size) {
      std::fclose(f);
      throw std::runtime_error("MmapFile: short read on " + path);
    }
    out.data_ = out.fallback_.get();
    out.size_ = size;
  }
  std::fclose(f);
  out.valid_ = true;
  return out;
}

}  // namespace smn::util
