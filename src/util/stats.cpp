#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace smn::util {

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> values, double q) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, q);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (const double v : sorted) rs.add(v);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.sum = rs.sum();
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

double cosine_similarity(std::span<const double> a, std::span<const double> b) noexcept {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double mean_absolute_error(std::span<const double> truth, std::span<const double> estimate) noexcept {
  if (truth.size() != estimate.size() || truth.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) total += std::abs(truth[i] - estimate[i]);
  return total / static_cast<double>(truth.size());
}

double mean_absolute_percentage_error(std::span<const double> truth,
                                      std::span<const double> estimate) noexcept {
  if (truth.size() != estimate.size()) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 0.0) continue;
    total += std::abs((truth[i] - estimate[i]) / truth[i]);
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

double root_mean_squared_error(std::span<const double> truth, std::span<const double> estimate) noexcept {
  if (truth.size() != estimate.size() || truth.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - estimate[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(truth.size()));
}

double pearson_correlation(std::span<const double> a, std::span<const double> b) noexcept {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  RunningStats sa, sb;
  for (const double v : a) sa.add(v);
  for (const double v : b) sb.add(v);
  if (sa.stddev() <= 0.0 || sb.stddev() <= 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  cov /= static_cast<double>(a.size() - 1);
  return cov / (sa.stddev() * sb.stddev());
}

double l2_norm(std::span<const double> v) noexcept {
  double total = 0.0;
  for (const double x : v) total += x * x;
  return std::sqrt(total);
}

double relative_gap(double optimal, double achieved) noexcept {
  if (optimal <= 0.0) return 0.0;
  return std::max(0.0, (optimal - achieved) / optimal);
}

}  // namespace smn::util
