#include "util/csv.h"

#include <sstream>

namespace smn::util {
namespace {

bool needs_quotes(std::string_view field) noexcept {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quote(std::string_view field) {
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string csv_join(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line.push_back(',');
    line += needs_quotes(fields[i]) ? quote(fields[i]) : fields[i];
  }
  return line;
}

std::vector<std::string> csv_split(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  out_ << csv_join(fields) << '\n';
  ++rows_;
}

CsvDocument CsvDocument::parse(std::string_view text, bool has_header) {
  CsvDocument doc;
  std::istringstream in{std::string(text)};
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = csv_split(line);
    if (first && has_header) {
      doc.header_ = std::move(fields);
    } else {
      doc.rows_.push_back(std::move(fields));
    }
    first = false;
  }
  return doc;
}

std::optional<std::size_t> CsvDocument::column(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return std::nullopt;
}

}  // namespace smn::util
