#include "util/contracts.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.h"

namespace smn::util {
namespace {

ContractMode mode_from_env() {
  const char* env = std::getenv("SMN_CONTRACT_MODE");
  if (env == nullptr) return ContractMode::kAbort;
  const std::string_view value(env);
  if (value == "throw") return ContractMode::kThrow;
  if (value == "log") return ContractMode::kLog;
  return ContractMode::kAbort;
}

std::atomic<ContractMode> g_mode{mode_from_env()};
std::atomic<std::size_t> g_failures{0};

std::string format_failure(const char* kind, const char* expr, const char* file, int line,
                           std::string_view message) {
  std::ostringstream out;
  out << file << ":" << line << ": " << kind << " failed";
  if (expr != nullptr) out << ": " << expr;
  if (!message.empty()) out << " — " << message;
  return std::move(out).str();
}

}  // namespace

ContractMode contract_mode() noexcept { return g_mode.load(std::memory_order_relaxed); }

void set_contract_mode(ContractMode mode) noexcept {
  g_mode.store(mode, std::memory_order_relaxed);
}

std::size_t contract_failure_count() noexcept {
  return g_failures.load(std::memory_order_relaxed);
}

namespace detail {

void contract_failed(const char* kind, const char* expr, const char* file, int line,
                     std::string_view message) {
  g_failures.fetch_add(1, std::memory_order_relaxed);
  const std::string what = format_failure(kind, expr, file, line, message);
  switch (contract_mode()) {
    case ContractMode::kThrow:
      throw ContractViolation(what);
    case ContractMode::kLog:
      log_message(LogLevel::kError, what);
      return;
    case ContractMode::kAbort:
      break;
  }
  std::fprintf(stderr, "%s\n", what.c_str());
  std::fflush(stderr);
  std::abort();
}

void unreachable_reached(const char* file, int line, std::string_view message) {
  contract_failed("SMN_UNREACHABLE", nullptr, file, line, message);
  // kLog mode returns from contract_failed; continuing past a branch the
  // caller declared impossible would be UB, so escalate to abort.
  std::fprintf(stderr, "%s:%d: SMN_UNREACHABLE continuing is undefined; aborting\n", file,
               line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace smn::util
