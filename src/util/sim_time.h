// Simulated time for telemetry and control loops.
//
// The SMN operates over timescales from minutes (incident routing) to years
// (capacity planning). Everything internal uses a SimTime measured in
// seconds since a simulated epoch; bandwidth logs render it as ISO 8601
// (matching Listing 1 of the paper).
#pragma once

#include <cstdint>
#include <string>

namespace smn::util {

/// Seconds since the simulation epoch (2025-01-01T00:00:00Z by convention).
using SimTime = std::int64_t;

inline constexpr SimTime kSecond = 1;
inline constexpr SimTime kMinute = 60;
inline constexpr SimTime kHour = 60 * kMinute;
inline constexpr SimTime kDay = 24 * kHour;
inline constexpr SimTime kWeek = 7 * kDay;
/// Thirty-day month; telemetry windows only care about relative spans.
inline constexpr SimTime kMonth = 30 * kDay;
inline constexpr SimTime kYear = 365 * kDay;

/// Telemetry epoch length used by the paper's bandwidth logs (5 minutes).
inline constexpr SimTime kTelemetryEpoch = 5 * kMinute;

/// Renders `t` as "YYYY-MM-DDTHH:MM" (Listing 1 format), treating the
/// simulation epoch as 2025-01-01T00:00 with Gregorian calendar rules.
std::string format_iso8601(SimTime t);

/// Parses the Listing-1 timestamp format back into a SimTime.
/// Returns false on malformed input.
bool parse_iso8601(const std::string& text, SimTime& out);

/// Day-of-week index of `t` (0 = Wednesday, since 2025-01-01 is one).
int day_of_week(SimTime t) noexcept;

/// True when `t` lands on a simulated US federal holiday (fixed-date
/// approximation: Jan 1, Jul 4, Dec 25 plus the last Thursday of November).
/// §4 calls out holiday traffic spikes as the signal time-coarsening risks
/// destroying, so the traffic generator needs a holiday calendar.
bool is_holiday(SimTime t) noexcept;

/// Fraction of the day in [0, 1) at time `t`, for diurnal traffic shaping.
double time_of_day_fraction(SimTime t) noexcept;

}  // namespace smn::util
