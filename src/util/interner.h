// Interned identifiers for the telemetry spine. Datacenter names and
// (src, dst) pairs appear in hundreds of millions of log rows; carrying
// them as std::string keys makes every consumer re-hash and re-allocate.
// The interner assigns each distinct name a stable u32 DcId (and each
// distinct ordered pair a stable u32 PairId) once, so logs, coarseners,
// demand extraction, and TE all speak the same compact id space — the
// "one consistent identifier space across aggregation levels" idea from
// Recursive SDN, applied to the fine and supernode-coarse layers alike.
//
// Ids are append-only and never recycled: a DcId handed out stays valid
// for the process lifetime, and `name()` returns a reference that is never
// invalidated (names live in a deque). All operations are thread-safe;
// lookups take a shared lock, first-time interning an exclusive one.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.h"

namespace smn::util {

/// Handle of an interned datacenter (or supernode-group) name.
using DcId = std::uint32_t;
/// Handle of an interned ordered (src, dst) datacenter pair.
using PairId = std::uint32_t;

inline constexpr DcId kInvalidDcId = 0xFFFFFFFFu;
inline constexpr PairId kInvalidPairId = 0xFFFFFFFFu;

/// Append-only, thread-safe string -> DcId table.
class Interner {
 public:
  /// Id of `name`, interning it on first sight.
  DcId intern(std::string_view name);

  /// Id of `name` if already interned.
  std::optional<DcId> find(std::string_view name) const;

  /// Name of `id`. The reference stays valid for the interner's lifetime.
  /// Throws std::out_of_range on an id this interner never produced.
  const std::string& name(DcId id) const;

  std::size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  /// Stable addresses (deque never moves elements).
  std::deque<std::string> names_ SMN_GUARDED_BY(mutex_);
  /// Views into names_.
  std::unordered_map<std::string_view, DcId> index_ SMN_GUARDED_BY(mutex_);
};

/// Append-only, thread-safe (DcId, DcId) -> PairId table with O(1) decode.
class PairInterner {
 public:
  PairId intern(DcId src, DcId dst);
  std::optional<PairId> find(DcId src, DcId dst) const;

  /// Decode; throws std::out_of_range on an unknown pair id.
  DcId src(PairId id) const;
  DcId dst(PairId id) const;

  std::size_t size() const;

 private:
  static std::uint64_t pack(DcId src, DcId dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  mutable std::shared_mutex mutex_;
  /// [PairId] -> packed key.
  std::vector<std::uint64_t> packed_ SMN_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, PairId> index_ SMN_GUARDED_BY(mutex_);
};

/// The shared id space: one Interner for datacenter/group names plus one
/// PairInterner over those ids. Topology, telemetry, and TE all resolve
/// through the process-wide `global()` instance so a PairId minted at
/// ingest is directly meaningful to every downstream consumer.
class IdSpace {
 public:
  static IdSpace& global() noexcept;

  DcId dc(std::string_view name) { return dcs_.intern(name); }
  std::optional<DcId> find_dc(std::string_view name) const { return dcs_.find(name); }
  const std::string& dc_name(DcId id) const { return dcs_.name(id); }
  std::size_t dc_count() const { return dcs_.size(); }

  PairId pair(DcId src, DcId dst) { return pairs_.intern(src, dst); }
  std::optional<PairId> find_pair(DcId src, DcId dst) const { return pairs_.find(src, dst); }
  PairId pair_of_names(std::string_view src, std::string_view dst) {
    return pair(dc(src), dc(dst));
  }
  std::optional<PairId> find_pair_of_names(std::string_view src, std::string_view dst) const;
  DcId pair_src(PairId id) const { return pairs_.src(id); }
  DcId pair_dst(PairId id) const { return pairs_.dst(id); }
  const std::string& src_name(PairId id) const { return dcs_.name(pairs_.src(id)); }
  const std::string& dst_name(PairId id) const { return dcs_.name(pairs_.dst(id)); }
  std::size_t pair_count() const { return pairs_.size(); }

  /// Name order on pairs: (src name, dst name) lexicographic. This is the
  /// ordering every string-keyed consumer used to get from std::map, so
  /// id-based paths sort with it to keep output byte-identical.
  bool pair_name_less(PairId a, PairId b) const;

 private:
  Interner dcs_;
  PairInterner pairs_;
};

}  // namespace smn::util
