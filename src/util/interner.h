// Interned identifiers for the telemetry spine. Datacenter names and
// (src, dst) pairs appear in hundreds of millions of log rows; carrying
// them as std::string keys makes every consumer re-hash and re-allocate.
// The interner assigns each distinct name a stable u32 DcId (and each
// distinct ordered pair a stable u32 PairId) once, so logs, coarseners,
// demand extraction, and TE all speak the same compact id space — the
// "one consistent identifier space across aggregation levels" idea from
// Recursive SDN, applied to the fine and supernode-coarse layers alike.
//
// Ids are append-only and never recycled: a DcId handed out stays valid
// for the process lifetime, and `name()` returns a reference that is never
// invalidated (names live in epoch-published chunked storage). Decode-side
// operations (`name`, `src`, `dst`, `size`) are LOCK-FREE: storage is an
// EpochTable whose published size is the reader's generation, so a reader
// that observed id `i` as in-range can read it with no lock at all
// (DESIGN.md §14). Encode-side operations (`intern`, `find`) go through the
// hash index and take a shared lock, first-time interning an exclusive one.
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/epoch_table.h"
#include "util/thread_annotations.h"

namespace smn::util {

/// Handle of an interned datacenter (or supernode-group) name.
using DcId = std::uint32_t;
/// Handle of an interned ordered (src, dst) datacenter pair.
using PairId = std::uint32_t;

inline constexpr DcId kInvalidDcId = 0xFFFFFFFFu;
inline constexpr PairId kInvalidPairId = 0xFFFFFFFFu;

/// Append-only, thread-safe string -> DcId table. Decodes are lock-free.
class Interner {
 public:
  /// Id of `name`, interning it on first sight.
  DcId intern(std::string_view name) SMN_EXCLUDES(mutex_);

  /// Id of `name` if already interned.
  std::optional<DcId> find(std::string_view name) const SMN_EXCLUDES(mutex_);

  /// Name of `id`. Lock-free; the reference stays valid for the interner's
  /// lifetime. Throws std::out_of_range on an id this interner never
  /// produced (i.e. at or above the published generation).
  const std::string& name(DcId id) const;

  /// Published id count — the reader's generation. Lock-free.
  std::size_t size() const noexcept { return names_.size(); }

 private:
  /// Guards the hash index and serializes writers into names_.
  mutable std::shared_mutex mutex_;
  /// Epoch-published stable storage: writers append under mutex_ (the
  /// EpochTable writer contract), readers decode lock-free against the
  /// published size. Not SMN_GUARDED_BY by design — reads are sanctioned
  /// without the lock by the release/acquire protocol in epoch_table.h.
  EpochTable<std::string> names_{256};
  /// Views into names_ storage (addresses are chunk-stable).
  std::unordered_map<std::string_view, DcId> index_ SMN_GUARDED_BY(mutex_);
};

/// Append-only, thread-safe (DcId, DcId) -> PairId table. Decodes (`src`,
/// `dst`, `size`) are lock-free.
class PairInterner {
 public:
  PairId intern(DcId src, DcId dst) SMN_EXCLUDES(mutex_);
  std::optional<PairId> find(DcId src, DcId dst) const SMN_EXCLUDES(mutex_);

  /// Decode; lock-free; throws std::out_of_range on an unknown pair id.
  DcId src(PairId id) const;
  DcId dst(PairId id) const;

  /// Published pair count — the reader's generation. Lock-free.
  std::size_t size() const noexcept { return packed_.size(); }

 private:
  static std::uint64_t pack(DcId src, DcId dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  /// Guards the hash index and serializes writers into packed_.
  mutable std::shared_mutex mutex_;
  /// [PairId] -> packed key; epoch-published, lock-free reads (see names_
  /// in Interner for the protocol).
  EpochTable<std::uint64_t> packed_{1024};
  std::unordered_map<std::uint64_t, PairId> index_ SMN_GUARDED_BY(mutex_);
};

class IdSpace;

/// A consistent read generation of an IdSpace, captured atomically enough
/// for snapshot queries: every PairId below `pair_count` decodes to DcIds
/// below `dc_count`, so a reader resolving names for a snapshot never
/// observes a half-published pair. The capture order makes this true
/// without any lock: DcIds are published BEFORE any pair referencing them
/// (pair_of_names interns names first; callers of pair() hold valid ids),
/// so reading pair_count first and dc_count second can only over-approximate
/// dc_count — never miss a referenced dc.
struct IdSpaceSnapshot {
  std::size_t pair_count = 0;
  std::size_t dc_count = 0;
};

/// The shared id space: one Interner for datacenter/group names plus one
/// PairInterner over those ids. Topology, telemetry, and TE all resolve
/// through the process-wide `global()` instance so a PairId minted at
/// ingest is directly meaningful to every downstream consumer.
class IdSpace {
 public:
  static IdSpace& global() noexcept;

  DcId dc(std::string_view name) { return dcs_.intern(name); }
  std::optional<DcId> find_dc(std::string_view name) const { return dcs_.find(name); }
  const std::string& dc_name(DcId id) const { return dcs_.name(id); }
  std::size_t dc_count() const { return dcs_.size(); }

  PairId pair(DcId src, DcId dst) { return pairs_.intern(src, dst); }
  std::optional<PairId> find_pair(DcId src, DcId dst) const { return pairs_.find(src, dst); }
  PairId pair_of_names(std::string_view src, std::string_view dst) {
    return pair(dc(src), dc(dst));
  }
  std::optional<PairId> find_pair_of_names(std::string_view src, std::string_view dst) const;
  DcId pair_src(PairId id) const { return pairs_.src(id); }
  DcId pair_dst(PairId id) const { return pairs_.dst(id); }
  const std::string& src_name(PairId id) const { return dcs_.name(pairs_.src(id)); }
  const std::string& dst_name(PairId id) const { return dcs_.name(pairs_.dst(id)); }
  std::size_t pair_count() const { return pairs_.size(); }

  /// Captures the current read generation: pair count first, dc count
  /// second (see IdSpaceSnapshot for why that order is the safe one).
  IdSpaceSnapshot snapshot() const noexcept {
    IdSpaceSnapshot snap;
    snap.pair_count = pairs_.size();
    snap.dc_count = dcs_.size();
    return snap;
  }

  /// Name order on pairs: (src name, dst name) lexicographic. This is the
  /// ordering every string-keyed consumer used to get from std::map, so
  /// id-based paths sort with it to keep output byte-identical. Lock-free.
  bool pair_name_less(PairId a, PairId b) const;

 private:
  Interner dcs_;
  PairInterner pairs_;
};

}  // namespace smn::util
