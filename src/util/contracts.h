// Runtime contract macros for the invariants smn_lint cannot see
// statically: preconditions, postconditions, and unreachable branches in
// the thread pool, interner, telemetry spine, and TE solver stack.
//
//   SMN_CHECK(cond [, msg])   — always compiled in; use for cheap checks on
//                               API boundaries (argument validity, lifecycle
//                               state). Cost is one predictable branch.
//   SMN_DCHECK(cond [, msg])  — compiled in when NDEBUG is unset or
//                               SMN_FORCE_DCHECKS is defined (the sanitizer
//                               builds define it); use for checks that are
//                               too hot for release (per-record, per-node).
//   SMN_UNREACHABLE(msg)      — marks a branch the surrounding logic has
//                               excluded; always compiled in and never
//                               returns (in kLog mode it logs, then aborts,
//                               because falling through would be UB).
//
// What a failed contract does is process-global and configurable:
//   kAbort (default) — print to stderr and std::abort(); the right mode for
//                      production and for sanitizer runs (the sanitizer
//                      reports the abort with a full stack).
//   kThrow           — throw util::ContractViolation; the mode tests use to
//                      assert that a contract fires without dying.
//   kLog             — log at error level and continue; a triage mode for
//                      soak runs where one violation should not end the run.
// The mode can also be seeded from the SMN_CONTRACT_MODE environment
// variable ("abort", "throw", "log") before main() runs.
//
// The message argument is evaluated only on failure, so building it with
// string concatenation is free on the hot path.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace smn::util {

enum class ContractMode { kAbort, kThrow, kLog };

/// Thrown by failed contracts in ContractMode::kThrow.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Process-global failure mode. Thread-safe; seeded from SMN_CONTRACT_MODE.
ContractMode contract_mode() noexcept;
void set_contract_mode(ContractMode mode) noexcept;

/// RAII mode override for tests.
class ScopedContractMode {
 public:
  explicit ScopedContractMode(ContractMode mode) : previous_(contract_mode()) {
    set_contract_mode(mode);
  }
  ~ScopedContractMode() { set_contract_mode(previous_); }
  ScopedContractMode(const ScopedContractMode&) = delete;
  ScopedContractMode& operator=(const ScopedContractMode&) = delete;

 private:
  ContractMode previous_;
};

/// Number of contract failures observed so far (all modes). Lets kLog soak
/// runs assert "no violations" at the end without dying mid-run.
std::size_t contract_failure_count() noexcept;

namespace detail {

/// Reports a failed SMN_CHECK/SMN_DCHECK per the global mode. Returns only
/// in kLog mode.
void contract_failed(const char* kind, const char* expr, const char* file, int line,
                     std::string_view message = {});

/// Reports a reached SMN_UNREACHABLE. Never returns: kLog mode logs and
/// then aborts, because the caller has no valid continuation.
[[noreturn]] void unreachable_reached(const char* file, int line,
                                      std::string_view message = {});

}  // namespace detail
}  // namespace smn::util

#define SMN_CHECK(cond, ...)                                                     \
  do {                                                                           \
    if (!(cond)) [[unlikely]] {                                                  \
      ::smn::util::detail::contract_failed("SMN_CHECK", #cond, __FILE__,         \
                                           __LINE__ __VA_OPT__(, ) __VA_ARGS__); \
    }                                                                            \
  } while (false)

#define SMN_UNREACHABLE(...) \
  ::smn::util::detail::unreachable_reached(__FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__)

#if !defined(NDEBUG) || defined(SMN_FORCE_DCHECKS)
#define SMN_DCHECKS_ENABLED 1
#define SMN_DCHECK(cond, ...) SMN_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define SMN_DCHECKS_ENABLED 0
#define SMN_DCHECK(cond, ...) \
  do {                        \
  } while (false)
#endif
