// Leveled logging. Default threshold is Warning so tests and benchmarks stay
// quiet; examples raise it to Info to narrate the control loops.
#pragma once

#include <sstream>
#include <string>

namespace smn::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits `message` at `level` to stderr with a level tag.
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Stream-style helper: collects the message and emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warning() { return detail::LogLine(LogLevel::kWarning); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace smn::util
