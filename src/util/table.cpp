#include "util/table.h"

#include <algorithm>
#include <stdexcept>

#include "util/string_util.h"

namespace smn::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: cell count does not match header");
  }
  rows_.push_back(std::move(row));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (const double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto separator = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) {
      line += std::string(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  }();

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line += std::string(widths[c] - row[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = separator;
  out += render_row(header_);
  out += separator;
  for (const auto& row : rows_) out += render_row(row);
  out += separator;
  return out;
}

}  // namespace smn::util
