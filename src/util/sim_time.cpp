#include "util/sim_time.h"

#include <array>
#include <cstdio>

namespace smn::util {
namespace {

constexpr int kEpochYear = 2025;

bool is_leap(int year) noexcept {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) noexcept {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap(year)) return 29;
  return kDays[static_cast<std::size_t>(month - 1)];
}

struct CalendarDate {
  int year;
  int month;   // 1..12
  int day;     // 1..31
  int hour;    // 0..23
  int minute;  // 0..59
  int second;  // 0..59
};

CalendarDate to_calendar(SimTime t) {
  // Negative times clamp to the epoch; simulations never go earlier.
  if (t < 0) t = 0;
  std::int64_t days = t / kDay;
  std::int64_t rem = t % kDay;
  CalendarDate d{kEpochYear, 1, 1, 0, 0, 0};
  d.hour = static_cast<int>(rem / kHour);
  rem %= kHour;
  d.minute = static_cast<int>(rem / kMinute);
  d.second = static_cast<int>(rem % kMinute);
  while (true) {
    const int year_days = is_leap(d.year) ? 366 : 365;
    if (days < year_days) break;
    days -= year_days;
    ++d.year;
  }
  while (true) {
    const int month_days = days_in_month(d.year, d.month);
    if (days < month_days) break;
    days -= month_days;
    ++d.month;
  }
  d.day = static_cast<int>(days) + 1;
  return d;
}

}  // namespace

std::string format_iso8601(SimTime t) {
  const CalendarDate d = to_calendar(t);
  char buf[20];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d", d.year, d.month, d.day, d.hour,
                d.minute);
  return buf;
}

bool parse_iso8601(const std::string& text, SimTime& out) {
  int year = 0, month = 0, day = 0, hour = 0, minute = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%dT%d:%d", &year, &month, &day, &hour, &minute) != 5) {
    return false;
  }
  if (year < kEpochYear || month < 1 || month > 12 || day < 1 || hour < 0 || hour > 23 ||
      minute < 0 || minute > 59) {
    return false;
  }
  if (day > days_in_month(year, month)) return false;
  std::int64_t days = 0;
  for (int y = kEpochYear; y < year; ++y) days += is_leap(y) ? 366 : 365;
  for (int m = 1; m < month; ++m) days += days_in_month(year, m);
  days += day - 1;
  out = days * kDay + hour * kHour + minute * kMinute;
  return true;
}

int day_of_week(SimTime t) noexcept {
  if (t < 0) t = 0;
  return static_cast<int>((t / kDay) % 7);
}

bool is_holiday(SimTime t) noexcept {
  const CalendarDate d = to_calendar(t);
  if (d.month == 1 && d.day == 1) return true;
  if (d.month == 7 && d.day == 4) return true;
  if (d.month == 12 && d.day == 25) return true;
  if (d.month == 11) {
    // Last Thursday of November. 2025-01-01 is a Wednesday => dow 0 is
    // Wednesday, Thursday is dow 1.
    if (day_of_week(t) == 1 && d.day + 7 > 30) return true;
  }
  return false;
}

double time_of_day_fraction(SimTime t) noexcept {
  if (t < 0) t = 0;
  return static_cast<double>(t % kDay) / static_cast<double>(kDay);
}

}  // namespace smn::util
