// The four §1 war stories, executed against the real library code paths,
// each comparing siloed handling with SMN handling (§2 "How SMNs can
// mitigate operational challenges"):
//
//   1. Capacity Planning and TE in the Dark — naive threshold planning
//      upgrades transiently-overloaded and fiber-locked links; the SMN
//      requires sustained overload and routes infeasible upgrades to the
//      fiber provider.
//   2. Wavelength Modulation and Resilience — recurring routing flaps
//      traced to an aggressive optical modulation change via the CLDS
//      dependency records in one query, versus weeks of siloed search.
//   3. WAN link flaps impacting cluster traffic — failing cluster probes
//      routed to the WAN team by the CDG/explainability router instead of
//      bouncing off the cluster team.
//   4. Database service failure — alerts from dependent services aggregated
//      into one high-priority incident for the database team instead of
//      six low-priority per-team incidents.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smn::smn {

struct WarStoryReport {
  std::string id;        ///< "WS1".."WS4"
  std::string title;
  std::string siloed_outcome;
  std::string smn_outcome;
  /// Cost of the siloed handling and of the SMN handling, in `cost_unit`.
  double siloed_cost = 0.0;
  double smn_cost = 0.0;
  std::string cost_unit;
  bool smn_improved = false;
};

WarStoryReport run_war_story_capacity_te(std::uint64_t seed = 11);
WarStoryReport run_war_story_wavelength(std::uint64_t seed = 12);
WarStoryReport run_war_story_wan_flap(std::uint64_t seed = 13);
WarStoryReport run_war_story_alert_storm(std::uint64_t seed = 14);

/// All four, in order.
std::vector<WarStoryReport> run_all_war_stories(std::uint64_t seed = 10);

}  // namespace smn::smn
