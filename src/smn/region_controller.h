// The lower tier of the two-level federation (DESIGN.md §12): one
// RegionController per WAN region, owning that region's *fine* state — the
// sharded bandwidth store with its spill tier, the drift EWMAs, and the
// retention seal — through the same ControllerCore engine the monolithic
// SmnController runs. Fine telemetry never leaves the region; what goes up
// is build_export(): the coarse window summaries sealed since the previous
// export, the store's aggregate gauges, and the drift summary, packaged as
// a versioned CoarseExport. This is the paper's s = C(S) applied to the
// controller hierarchy itself — the global tier sees only the coarsening.
//
// Failover: adopt() constructs a replacement controller over a dead
// instance's spill directory (stealing its pid lock) and replays the
// spilled segments, restoring the sealed fine state byte-identically.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "smn/coarse_export.h"
#include "smn/control_plane.h"
#include "smn/controller_core.h"
#include "telemetry/bandwidth_log.h"
#include "topology/wan.h"
#include "util/thread_annotations.h"

namespace smn::smn {

class RegionController {
 public:
  /// `region` must be one of `wan`'s regions; `wan` must outlive the
  /// controller. `config.bw_spill_dir`, when set, must be private to this
  /// region (the pid lockfile enforces it).
  RegionController(std::string region, const topology::WanTopology& wan,
                   CoreConfig config = {});
  RegionController(std::string, topology::WanTopology&&, CoreConfig) = delete;

  /// Failover adoption: constructs a controller over a dead instance's
  /// spill directory — takes the lock (`steal`) and replays every spilled
  /// segment into the fresh store. `config.bw_spill_dir` must point at the
  /// dead instance's directory and `config.bw_shards` must match what it
  /// ran with. `*recovered_records`, when non-null, receives the fine
  /// record count replayed.
  static std::unique_ptr<RegionController> adopt(std::string region,
                                                 const topology::WanTopology& wan,
                                                 CoreConfig config,
                                                 std::size_t* recovered_records = nullptr);

  const std::string& region() const noexcept { return region_; }
  ControllerCore& core() noexcept { return core_; }
  const ControllerCore& core() const noexcept { return core_; }
  Mib& mib() noexcept { return mib_; }
  telemetry::BandwidthLogStore& store() noexcept { return core_.store(); }
  const telemetry::BandwidthLogStore& store() const noexcept { return core_.store(); }

  /// True when this controller's region owns `pair` (the pair's source
  /// datacenter lives in the region). Memoized per PairId; safe against
  /// concurrent ingest threads.
  bool owns_pair(util::PairId pair) const SMN_EXCLUDES(memo_mutex_);

  /// Streams a bandwidth log into the region's store. SMN_CHECK-fails on a
  /// record whose pair this region does not own — a misrouted record would
  /// double-count in the global merge. Returns records added.
  std::size_t ingest_bandwidth(const telemetry::BandwidthLog& log);

  /// Retention pass: seals fine segments past the configured age into
  /// coarse summaries (spilling them when the cold tier is on) and
  /// refreshes the store gauges. Returns records retired.
  std::size_t run_retention(util::SimTime now);

  /// Packages everything sealed since the previous export — plus current
  /// gauges and drift — as the next CoarseExport in this region's sequence.
  /// Summaries already exported are never re-sent.
  CoarseExport build_export(util::SimTime now);

  /// Sequence number the next build_export() will carry.
  std::uint64_t next_sequence() const noexcept { return next_sequence_; }

 private:
  std::string region_;
  const topology::WanTopology& wan_;
  Mib mib_;
  ControllerCore core_;
  /// First coarse summary row not yet exported.
  std::size_t export_cursor_ = 0;
  std::uint64_t next_sequence_ = 1;
  mutable std::mutex memo_mutex_;
  /// PairId -> ownership memo: 0 unknown, 1 owned, 2 foreign. Pair ids are
  /// append-only process-global handles, so the memo never invalidates.
  mutable std::vector<std::uint8_t> pair_owned_ SMN_GUARDED_BY(memo_mutex_);
};

}  // namespace smn::smn
