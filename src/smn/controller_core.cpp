#include "smn/controller_core.h"

#include <algorithm>

#include "util/contracts.h"

namespace smn::smn {
namespace {

telemetry::LogStoreConfig store_config(const CoreConfig& config) {
  telemetry::LogStoreConfig store;
  store.streaming_window = config.bw_coarse_window;
  store.shards = config.bw_shards;
  store.ingest_threads = config.bw_ingest_threads;
  store.spill_dir = config.bw_spill_dir;
  store.spill_steal_lock = config.bw_spill_steal_lock;
  return store;
}

/// Knob validation, run from config_'s initializer so a bad config fails
/// before the store constructs (and before it takes any spill lockfile).
CoreConfig validated(CoreConfig config) {
  SMN_CHECK(config.bw_coarse_window > 0, "bw_coarse_window must be positive");
  SMN_CHECK(config.bw_max_fine_age >= 0, "bw_max_fine_age must be non-negative");
  SMN_CHECK(config.bw_shards >= 1, "bw_shards must be at least 1");
  SMN_CHECK(config.drift_resolve_threshold > 0.0,
            "drift_resolve_threshold must be positive");
  SMN_CHECK(config.drift_rearm_threshold >= 0.0,
            "drift_rearm_threshold must be non-negative");
  SMN_CHECK(config.drift_rearm_threshold < config.drift_resolve_threshold,
            "drift hysteresis needs rearm < resolve threshold; an inverted band can "
            "never re-arm after the first early solve");
  SMN_CHECK(config.drift_min_resolve_interval >= 0,
            "drift_min_resolve_interval must be non-negative");
  return config;
}

}  // namespace

ControllerCore::ControllerCore(CoreConfig config, std::string scope)
    : config_(validated(std::move(config))),
      scope_(std::move(scope)),
      store_(store_config(config_)) {}

std::size_t ControllerCore::ingest_bandwidth(const telemetry::BandwidthLog& log, Mib& mib) {
  store_.ingest(log);
  mib.increment_counter(scope_, "bw_records_ingested",
                        static_cast<double>(log.record_count()));
  return log.record_count();
}

std::size_t ControllerCore::run_bw_retention(util::SimTime now) {
  // Seal old fine bandwidth segments into summaries: the store's streaming
  // accumulators make this O(open windows), not O(records).
  return store_.coarsen_older_than(now, config_.bw_max_fine_age, config_.bw_coarse_window);
}

void ControllerCore::publish_store_gauges(Mib& mib, util::SimTime now) const {
  mib.set_gauge(scope_, "last_telemetry_tick", static_cast<double>(now));
  const telemetry::LogStoreStats s = store_.stats();
  mib.set_gauge(scope_, "bw_fine_records", static_cast<double>(s.fine_records));
  mib.set_gauge(scope_, "bw_coarse_summaries", static_cast<double>(s.coarse_summaries));
  mib.set_gauge(scope_, "bw_store_bytes", static_cast<double>(s.total_bytes()));
  // Shard occupancy: skew shows up as max >> mean.
  std::size_t occupied = 0;
  std::size_t max_records = 0;
  for (const std::size_t r : s.shard_records) {
    if (r > 0) ++occupied;
    max_records = std::max(max_records, r);
  }
  mib.set_gauge(scope_, "bw_shard_count", static_cast<double>(s.shard_records.size()));
  mib.set_gauge(scope_, "bw_shards_occupied", static_cast<double>(occupied));
  mib.set_gauge(scope_, "bw_shard_records_max", static_cast<double>(max_records));
  // Storage tiers: resident (hot columnar) vs spilled (cold files), plus
  // lifetime mapping traffic.
  mib.set_gauge(scope_, "bw_resident_bytes", static_cast<double>(s.resident_bytes));
  mib.set_gauge(scope_, "bw_spilled_bytes", static_cast<double>(s.spilled_bytes));
  mib.set_gauge(scope_, "bw_spilled_records", static_cast<double>(s.spilled_records));
  mib.set_gauge(scope_, "bw_spill_files", static_cast<double>(s.spilled_files));
  mib.set_gauge(scope_, "bw_spill_maps", static_cast<double>(s.spill_maps));
  mib.set_gauge(scope_, "bw_spill_unmaps", static_cast<double>(s.spill_unmaps));
  // Snapshot read path (DESIGN.md §14): view traffic, views pinning memory
  // right now, the interner generation readers resolve against, and how far
  // behind `now` a snapshot taken this instant would be.
  mib.set_gauge(scope_, "bw_read_views_acquired", static_cast<double>(s.views_acquired));
  mib.set_gauge(scope_, "bw_read_views_live", static_cast<double>(s.views_live));
  const telemetry::BandwidthLogStore::ReadView view = store_.read_view();
  mib.set_gauge(scope_, "bw_reader_pair_epoch", static_cast<double>(view.ids().pair_count));
  mib.set_gauge(scope_, "bw_reader_dc_epoch", static_cast<double>(view.ids().dc_count));
  mib.set_gauge(scope_, "bw_snapshot_age",
                view.high_water() > 0 ? static_cast<double>(now - view.high_water()) : 0.0);
}

telemetry::DriftReport ControllerCore::check_demand_drift(
    util::SimTime now, Mib& mib, const std::function<void(util::SimTime)>& resolve) {
  const telemetry::DriftReport report = store_.drift();
  mib.set_gauge(scope_, "bw_drift_level", report.level);
  mib.set_gauge(scope_, "bw_drift_deviation_gbps", report.deviation_gbps);
  mib.set_gauge(scope_, "bw_drift_baseline_gbps", report.baseline_gbps);
  if (!report.has_baseline) return report;
  bool fire = false;
  {
    const std::lock_guard<std::mutex> lock(drift_mutex_);
    if (!drift_armed_) {
      // Hysteresis: stay disarmed until drift settles below the rearm
      // threshold, so one excursion fires exactly one early solve.
      if (report.level < config_.drift_rearm_threshold) drift_armed_ = true;
    } else if (report.level >= config_.drift_resolve_threshold &&
               !(last_te_solve_ &&
                 now - *last_te_solve_ < config_.drift_min_resolve_interval)) {
      drift_armed_ = false;
      ++early_te_resolves_;
      fire = true;
    }
  }
  if (!fire) return report;
  // Outside the critical section: the TE solve calls back into
  // note_te_solve, which takes drift_mutex_ itself.
  mib.increment_counter(scope_, "early_te_resolves");
  if (resolve) resolve(now);
  return report;
}

}  // namespace smn::smn
