// Closed-loop adaptive control policy (DESIGN.md §15): maps the measured
// demand-drift level to the TE solver's epsilon. The intuition is a
// cost/fidelity dial: while demand tracks the installed baseline (LOW
// drift) a coarse, cheap solve is plenty — the plan barely moves; when a
// level shift or flash crowd opens a gap (HIGH drift) the re-solve should
// spend for a tight answer, because the new plan will be live until drift
// settles again. A hysteresis band keeps epsilon from thrashing on drift
// noise around the mapping's midpoint.
//
// The policy also owns the reaction clock: the time from drift first
// crossing the resolve threshold to the re-solve that answered it — the
// metric the adaptive soak gates. SmnController wires this into its
// drift-watch loop; the class itself is engine-agnostic and directly
// testable.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>

#include "util/sim_time.h"
#include "util/thread_annotations.h"

namespace smn::smn {

struct AdaptiveConfig {
  /// Epsilon chosen at HIGH drift (expensive, tight solve) and at LOW
  /// drift (cheap, coarse solve). Both in (0, 1), tight <= coarse.
  double eps_tight = 0.05;
  double eps_coarse = 0.30;
  /// Drift levels bounding the linear interpolation: at or below
  /// `drift_low` the policy picks eps_coarse, at or above `drift_high`
  /// eps_tight, linear in between.
  double drift_low = 0.05;
  double drift_high = 0.50;
  /// Hysteresis: the current epsilon only moves when the target differs by
  /// at least this band (endpoints always latch exactly, so sustained
  /// extreme drift pins eps_tight / eps_coarse).
  double eps_hysteresis = 0.04;
  /// Drift level that starts the reaction clock — SmnController overrides
  /// this with its drift_resolve_threshold so the clock measures the same
  /// excursions the core's fire decision acts on.
  double resolve_threshold = 0.25;
};

/// Thread-safe: observe/note_resolve/record_solve and every accessor may be
/// called from the drift-watch loop and from readers concurrently.
class AdaptiveController {
 public:
  /// SMN_CHECK-validates the config (epsilons in (0,1) with tight <=
  /// coarse, drift_low < drift_high, non-negative band, positive
  /// threshold).
  explicit AdaptiveController(AdaptiveConfig config = {});

  /// Pure drift -> epsilon mapping (no hysteresis, no state). Exposed so
  /// tests and the bench can assert the policy shape directly.
  double target_epsilon(double drift_level) const noexcept;

  /// Feeds one drift observation: updates epsilon under hysteresis and
  /// manages the reaction clock (pending starts at the first observation at
  /// or above resolve_threshold; an observation back below it ends the
  /// excursion unanswered). Returns the post-update epsilon.
  double observe(double drift_level, util::SimTime now) SMN_EXCLUDES(mutex_);

  /// Records that a re-solve answered the current excursion. Returns the
  /// reaction latency (now - pending start; 0 when the solve lands the same
  /// tick the excursion began, or when none was pending).
  util::SimTime note_resolve(util::SimTime now) SMN_EXCLUDES(mutex_);

  /// Stats of the re-solve that just ran (mirrored from McfResult), for the
  /// warm-start gauges.
  void record_solve(std::uint64_t warm_hits, std::uint64_t warm_misses,
                    std::uint64_t sp_calls, double lambda) SMN_EXCLUDES(mutex_);

  double epsilon() const SMN_EXCLUDES(mutex_);
  /// warm_hits / (warm_hits + warm_misses) of the last recorded solve; 0
  /// before any solve (or when the solve had no active commodities).
  double warm_hit_rate() const SMN_EXCLUDES(mutex_);
  util::SimTime last_reaction_latency() const SMN_EXCLUDES(mutex_);
  std::uint64_t resolves() const SMN_EXCLUDES(mutex_);
  std::uint64_t last_sp_calls() const SMN_EXCLUDES(mutex_);
  double last_lambda() const SMN_EXCLUDES(mutex_);
  const AdaptiveConfig& config() const noexcept { return config_; }

 private:
  const AdaptiveConfig config_;
  mutable std::mutex mutex_;
  double epsilon_ SMN_GUARDED_BY(mutex_);
  /// Reaction clock: when the current above-threshold excursion began.
  std::optional<util::SimTime> pending_since_ SMN_GUARDED_BY(mutex_);
  util::SimTime last_latency_ SMN_GUARDED_BY(mutex_) = 0;
  std::uint64_t resolves_ SMN_GUARDED_BY(mutex_) = 0;
  std::uint64_t last_warm_hits_ SMN_GUARDED_BY(mutex_) = 0;
  std::uint64_t last_warm_misses_ SMN_GUARDED_BY(mutex_) = 0;
  std::uint64_t last_sp_calls_ SMN_GUARDED_BY(mutex_) = 0;
  double last_lambda_ SMN_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace smn::smn
