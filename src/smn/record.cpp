#include "smn/record.h"

namespace smn::smn {

std::string data_type_name(DataType type) {
  switch (type) {
    case DataType::kAlert:
      return "alert";
    case DataType::kIncident:
      return "incident";
    case DataType::kLog:
      return "log";
    case DataType::kTelemetry:
      return "telemetry";
    case DataType::kTopology:
      return "topology";
    case DataType::kDependency:
      return "dependency";
  }
  return "unknown";
}

std::size_t Record::approximate_bytes() const noexcept {
  std::size_t bytes = 16;  // timestamp + incident id
  for (const auto& [key, _] : numeric) bytes += key.size() + 8;
  for (const auto& [key, value] : tags) bytes += key.size() + value.size();
  return bytes;
}

}  // namespace smn::smn
