// The SMN's query interface over the CLDS — the §2/§6 "architecture and
// interfaces" requirement: "Like SDN, SMN must go beyond merely
// centralizing all data. It also requires an architecture and interfaces
// such as SDN's OpenFlow so that users across teams can query and
// correlate data."
//
// A Query selects records (by dataset or by data type across datasets),
// restricts them by time range, tag equality, and numeric predicates, then
// optionally groups by a tag and aggregates a numeric field. ACLs are
// enforced per requesting team through the catalog, exactly as raw
// DataLake reads are.
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "smn/data_lake.h"

namespace smn::smn {

enum class Aggregation { kCount, kSum, kMean, kMin, kMax, kP95 };

std::string aggregation_name(Aggregation agg);

struct NumericPredicate {
  std::string field;
  double at_least = -std::numeric_limits<double>::infinity();
  double below = std::numeric_limits<double>::infinity();
};

struct Query {
  /// Exactly one of `dataset` / `type` must be set: a single dataset, or a
  /// cross-team sweep over every readable dataset of that type.
  std::optional<std::string> dataset;
  std::optional<DataType> type;

  util::SimTime begin = 0;
  util::SimTime end = std::numeric_limits<util::SimTime>::max();

  /// All must match (tag must exist and equal the value).
  std::vector<std::pair<std::string, std::string>> tag_equals;
  /// All must match (field must exist and lie in [at_least, below)).
  std::vector<NumericPredicate> numeric;

  /// Empty = one global group. "__dataset" groups by source dataset for
  /// type queries.
  std::string group_by_tag;

  Aggregation aggregation = Aggregation::kCount;
  /// Field to aggregate; ignored for kCount.
  std::string field;
};

struct QueryRow {
  std::string group;  ///< group tag value; "" for the global group
  std::size_t matched = 0;
  double value = 0.0;  ///< aggregate; equals matched for kCount
};

/// Runs `query` as `team`. Rows are ordered by group name. Throws
/// std::invalid_argument for malformed queries (neither/both selectors,
/// missing field for non-count aggregations, unknown dataset) and
/// std::runtime_error on ACL violations.
///
/// Thread-safety: run_query itself is stateless; every lake read goes
/// through DataLake's shared lock, so any number of teams may query
/// concurrently with each other and with ingest/retention.
std::vector<QueryRow> run_query(const DataLake& lake, const std::string& team,
                                const Query& query);

}  // namespace smn::smn
