// The SMN Controller of Figure 1: owns the CLDS (data lake + catalog), the
// Cloud Dependency Graph, the CLTO optimizer, the generalized control
// plane (RIB/FIB/MIB), the AIOps hooks, and the multi-timescale control
// loops. This is the library's top-level façade — examples and benches
// drive the whole system through it.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "depgraph/service_graph.h"
#include "lp/mcf.h"
#include "optical/optical.h"
#include "smn/adaptive_controller.h"
#include "smn/aiops.h"
#include "smn/clto.h"
#include "smn/control_plane.h"
#include "smn/controller_core.h"
#include "smn/data_lake.h"
#include "smn/feedback.h"
#include "smn/query.h"
#include "smn/query_serving.h"
#include "telemetry/log_store.h"
#include "topology/wan.h"

namespace smn::smn {

struct SmnConfig {
  CltoConfig clto;
  RetentionPolicy retention;
  /// Periods of the built-in control loops. SMN_CHECK-validated at
  /// construction, as are the drift knobs below: zero/negative periods and
  /// an inverted hysteresis band used to be accepted silently and armed
  /// control loops that could never fire (or never stop firing).
  util::SimTime incident_loop_period = util::kMinute;
  util::SimTime telemetry_loop_period = 5 * util::kMinute;
  util::SimTime retention_loop_period = util::kDay;
  util::SimTime planning_loop_period = util::kMonth;
  /// Bandwidth-store retention: fine segments older than this are sealed
  /// into `bw_coarse_window` summaries by the retention loop.
  util::SimTime bw_max_fine_age = util::kWeek;
  util::SimTime bw_coarse_window = util::kHour;
  /// Bandwidth-store sharding: PairId-hash shards and the worker count for
  /// bulk ingest / retention (0 = min(shards, hardware threads)).
  std::size_t bw_shards = 8;
  std::size_t bw_ingest_threads = 0;
  /// Bandwidth-store cold tier: when non-empty, the retention loop spills
  /// sealed fine segments to flat column files under this directory instead
  /// of discarding them (fine_range() maps them back transparently). Empty
  /// keeps the drop-on-seal behavior. The directory must be private to this
  /// controller instance.
  std::string bw_spill_dir;
  /// Drift-triggered TE re-solve: fire an early capacity-planning pass when
  /// aggregate demand drift vs the last solve crosses
  /// `drift_resolve_threshold`; stay disarmed until drift falls back below
  /// `drift_rearm_threshold` (hysteresis), and never fire within
  /// `drift_min_resolve_interval` of the previous solve.
  double drift_resolve_threshold = 0.25;
  double drift_rearm_threshold = 0.10;
  util::SimTime drift_min_resolve_interval = util::kHour;
  /// Closed-loop adaptive control (DESIGN.md §15): the drift -> epsilon
  /// policy of the drift-triggered re-solve, and the day-ahead horizon (in
  /// telemetry epochs) of its drift-weighted demand forecast.
  /// `adaptive.resolve_threshold` is overridden with
  /// `drift_resolve_threshold` at construction so one knob arms both the
  /// core's fire decision and the policy's reaction clock.
  AdaptiveConfig adaptive;
  std::size_t adaptive_forecast_horizon =
      static_cast<std::size_t>(util::kDay / util::kTelemetryEpoch);
  /// Admission control of the served query surface (serve_query /
  /// serve_bandwidth_range): in-flight cap and per-query deadline SLO.
  QueryBudgetConfig query_budget;
};

/// One row of the paper's Table 1 (SDN vs SMN).
struct ParadigmComparison {
  std::string aspect;
  std::string sdn;
  std::string smn;
};

class SmnController {
 public:
  /// `sg` is the cloud's fine-grained service graph (teams derive from it);
  /// `wan` is the L1-L3 topology under management. Both must outlive the
  /// controller.
  SmnController(const depgraph::ServiceGraph& sg, const topology::WanTopology& wan,
                SmnConfig config = {});
  /// Keeps references to both structures; temporaries would dangle.
  SmnController(depgraph::ServiceGraph&&, const topology::WanTopology&, SmnConfig) = delete;
  SmnController(const depgraph::ServiceGraph&, topology::WanTopology&&, SmnConfig) = delete;

  // --- Figure-1 components ---
  DataLake& clds() noexcept { return lake_; }
  const DataLake& clds() const noexcept { return lake_; }
  const depgraph::Cdg& cdg() const noexcept { return clto_.cdg(); }
  Clto& clto() noexcept { return clto_; }
  FeedbackBus& feedback() noexcept { return bus_; }
  const FeedbackBus& feedback() const noexcept { return bus_; }
  Rib& rib() noexcept { return rib_; }
  Fib& fib() noexcept { return fib_; }
  Mib& mib() noexcept { return mib_; }
  TelemetryDenoiser& denoiser() noexcept { return denoiser_; }
  IncidentEnricher& enricher() noexcept { return enricher_; }
  telemetry::BandwidthLogStore& bandwidth_store() noexcept { return core_.store(); }

  /// Ingests telemetry through the AIOps denoiser into the CLDS.
  void ingest_telemetry(const std::string& dataset, Record record);

  /// Streams a bandwidth log into the store (columnar, builds the open
  /// window accumulators the retention loop seals). Returns records added.
  std::size_t ingest_bandwidth(const telemetry::BandwidthLog& log);

  /// Publishes the optical layer's risk map (per-link flap/cut rates and
  /// SRLG exposure) into the "optical.link-risk" dataset, and the
  /// wavelength->link cartography into "cross-layer.deps" — the §7
  /// cross-layer inputs the CLTO's planning loop consumes. Returns the
  /// number of records written.
  std::size_t ingest_optical_risks(const optical::OpticalNetwork& underlay,
                                   util::SimTime now);

  /// Runs a CLDS query as `team` (convenience over run_query). Unbudgeted:
  /// internal/control-loop callers only — external serving goes through
  /// serve_query below.
  std::vector<QueryRow> query(const std::string& team, const Query& q) const {
    return run_query(lake_, team, q);
  }

  /// Budget-gated CLDS query: the external serving surface. Sheds on
  /// overload instead of queueing (DESIGN.md §14 admission semantics).
  ServedQuery serve_query(const std::string& team, const Query& q) const {
    return smn::serve_query(lake_, team, q, query_budget_);
  }

  /// Budget-gated snapshot read of the bandwidth store: lock-free against
  /// the controller's own ingest and retention loops.
  ServedFineRange serve_bandwidth_range(util::SimTime begin, util::SimTime end) const {
    return smn::serve_fine_range(core_.store(), begin, end, query_budget_);
  }

  QueryBudget& query_budget() const noexcept { return query_budget_; }

  /// Full incident pipeline: route via CLTO, enrich with similar past
  /// incidents, propose mitigations. Returns the routing decision.
  RoutingDecision handle_incident(const incident::Incident& incident, util::SimTime now);

  /// Runs all registered control loops due at `now`.
  std::size_t tick(util::SimTime now);

  /// Retention pass over the CLDS and the bandwidth store (also runs from
  /// the retention loop). Returns lake records plus fine bandwidth records
  /// retired.
  std::size_t run_retention(util::SimTime now);

  /// Capacity planning pass over the managed WAN using the bandwidth store
  /// (also runs from the planning loop). Installs the solved demand matrix
  /// as the store's drift baseline.
  capacity::CapacityPlan run_capacity_planning(util::SimTime now);

  /// Drift-watch pass (also runs from its control loop): publishes drift
  /// gauges, feeds the adaptive policy, and fires an early adaptive
  /// re-solve when aggregate drift crosses the configured threshold,
  /// subject to hysteresis and the min-interval guard. Returns the drift
  /// report it acted on.
  telemetry::DriftReport check_demand_drift(util::SimTime now);

  /// The drift-triggered adaptive re-solve (DESIGN.md §15): forecasts
  /// day-ahead demand with the measured drift discounting stale history,
  /// solves TE at the policy-chosen epsilon warm-started from the previous
  /// solve's path cache, installs the forecast as the new drift baseline
  /// (so drift settles and the trigger re-arms), runs the capacity-planning
  /// tail, and publishes the adaptive gauges (adaptive_epsilon,
  /// adaptive_warm_hit_rate, adaptive_reaction_latency_s,
  /// adaptive_te_resolves). Fired by the drift-watch loop; callable
  /// directly.
  lp::McfResult run_adaptive_resolve(util::SimTime now);

  const AdaptiveController& adaptive() const noexcept { return adaptive_; }
  const lp::McfPathCache& te_path_cache() const noexcept { return te_path_cache_; }

  std::uint64_t early_te_resolves() const noexcept { return core_.early_te_resolves(); }

  std::uint64_t incidents_handled() const noexcept { return next_incident_id_ - 1; }

  /// Table 1 of the paper, as data.
  static std::vector<ParadigmComparison> sdn_vs_smn();

 private:
  /// The trailing-month fine slice both planning passes estimate from.
  telemetry::BandwidthLog recent_bandwidth(util::SimTime now) const;
  /// Shared planning tail: records the solve time (min-interval guard +
  /// gauge) and runs the CLTO capacity planner over `recent`.
  capacity::CapacityPlan finish_planning(const telemetry::BandwidthLog& recent,
                                         util::SimTime now);

  const depgraph::ServiceGraph& sg_;
  const topology::WanTopology& wan_;
  SmnConfig config_;
  FeedbackBus bus_;
  DataLake lake_;
  Clto clto_;
  Rib rib_;
  Fib fib_;
  Mib mib_;
  TelemetryDenoiser denoiser_;
  IncidentEnricher enricher_;
  MitigationEngine mitigator_;
  /// The region-scoped engine (bandwidth store, drift hysteresis, gauge
  /// publication) shared with the federation's RegionController.
  ControllerCore core_;
  /// Drift -> epsilon policy plus the reaction clock of the adaptive loop.
  AdaptiveController adaptive_;
  /// Cross-solve warm-start state of the adaptive re-solve. Only
  /// run_adaptive_resolve touches it, and re-solves are serialized by the
  /// core's drift state machine.
  lp::McfPathCache te_path_cache_;
  /// Admission gate of the served query surface. mutable: serving is
  /// logically read-only on the controller (the budget's atomics are its
  /// own internally-synchronized state).
  mutable QueryBudget query_budget_;
  ControlLoopRunner loops_;
  std::uint64_t next_incident_id_ = 1;
};

}  // namespace smn::smn
