#include "smn/query_serving.h"

#include "util/contracts.h"

namespace smn::smn {

QueryBudget::QueryBudget(QueryBudgetConfig config) : config_(config) {
  SMN_CHECK(config_.max_in_flight > 0, "QueryBudget with zero slots sheds everything");
  SMN_CHECK(config_.deadline.count() > 0, "per-query deadline must be positive");
}

QueryBudget::Admission::Admission(QueryBudget* budget) noexcept
    : budget_(budget), start_(std::chrono::steady_clock::now()) {}

// No inputs to validate: a null budget_ is the legal shed/moved-from
// state, answered as "not late". smn-lint: allow(contract-coverage)
bool QueryBudget::Admission::over_deadline() const noexcept {
  if (budget_ == nullptr) return false;
  return std::chrono::steady_clock::now() - start_ > budget_->config_.deadline;
}

// Counter bookkeeping only; destructors have no inputs to gate.
// smn-lint: allow(contract-coverage)
QueryBudget::Admission::~Admission() {
  if (budget_ == nullptr) return;  // shed or moved-from: no slot held
  if (over_deadline()) budget_->deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  budget_->completed_.fetch_add(1, std::memory_order_relaxed);
  budget_->in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

QueryBudget::Admission QueryBudget::admit() {
  std::size_t cur = in_flight_.load(std::memory_order_relaxed);
  while (true) {
    if (cur >= config_.max_in_flight) {
      // Shed, don't queue: a queued query under overload would be served
      // late anyway, and the waiting thread would hold resources ingest
      // needs. The shed counter is the backpressure signal.
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Admission(nullptr);
    }
    if (in_flight_.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      break;
    }
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  SMN_DCHECK(in_flight_.load(std::memory_order_relaxed) <= config_.max_in_flight,
             "in-flight count escaped the admission bound");
  return Admission(this);
}

double QueryBudget::shed_rate() const noexcept {
  const std::uint64_t shed = shed_.load(std::memory_order_relaxed);
  const std::uint64_t attempts = shed + admitted_.load(std::memory_order_relaxed);
  const double rate =
      attempts == 0 ? 0.0 : static_cast<double>(shed) / static_cast<double>(attempts);
  SMN_DCHECK(rate >= 0.0 && rate <= 1.0, "shed rate is a fraction of admission attempts");
  return rate;
}

void QueryBudget::publish_gauges(Mib& mib, const std::string& scope) const {
  SMN_DCHECK(!scope.empty(), "query gauges need a MIB scope");
  mib.set_gauge(scope, "query_in_flight", static_cast<double>(in_flight()));
  mib.set_gauge(scope, "query_admitted", static_cast<double>(admitted_total()));
  mib.set_gauge(scope, "query_shed", static_cast<double>(shed_total()));
  mib.set_gauge(scope, "query_completed", static_cast<double>(completed_total()));
  mib.set_gauge(scope, "query_deadline_exceeded",
                static_cast<double>(deadline_exceeded_total()));
  mib.set_gauge(scope, "query_shed_rate", shed_rate());
}

ServedQuery serve_query(const DataLake& lake, const std::string& team, const Query& query,
                        QueryBudget& budget) {
  SMN_CHECK(!team.empty(), "queries are served per requesting team");
  ServedQuery served;
  const QueryBudget::Admission ticket = budget.admit();
  if (!ticket.admitted()) return served;
  served.admitted = true;
  served.rows = run_query(lake, team, query);
  served.deadline_exceeded = ticket.over_deadline();
  return served;
}

ServedFineRange serve_fine_range(const telemetry::BandwidthLogStore::ReadView& view,
                                 util::SimTime begin, util::SimTime end,
                                 QueryBudget& budget) {
  SMN_CHECK(begin <= end, "inverted fine-range query");
  ServedFineRange served;
  const QueryBudget::Admission ticket = budget.admit();
  if (!ticket.admitted()) return served;
  served.admitted = true;
  served.log = view.fine_range(begin, end);
  served.deadline_exceeded = ticket.over_deadline();
  return served;
}

ServedFineRange serve_fine_range(const telemetry::BandwidthLogStore& store,
                                 util::SimTime begin, util::SimTime end,
                                 QueryBudget& budget) {
  SMN_CHECK(begin <= end, "inverted fine-range query");
  ServedFineRange served;
  const QueryBudget::Admission ticket = budget.admit();
  if (!ticket.admitted()) return served;
  served.admitted = true;
  // View acquisition inside the admission window: its brief per-shard
  // metadata locks are part of the query's latency budget.
  served.log = store.read_view().fine_range(begin, end);
  served.deadline_exceeded = ticket.over_deadline();
  return served;
}

}  // namespace smn::smn
