#include "smn/model_registry.h"

#include <stdexcept>

namespace smn::smn {

void ModelRegistry::register_model(ModelSnapshot snapshot) {
  if (snapshot.name.empty() || snapshot.model == nullptr) {
    throw std::invalid_argument("ModelRegistry::register_model: need a name and a model");
  }
  snapshots_[{snapshot.name, snapshot.trained_at}] = std::move(snapshot);
}

std::size_t ModelRegistry::size() const noexcept { return snapshots_.size(); }

std::optional<ModelSnapshot> ModelRegistry::latest(const std::string& name,
                                                   util::SimTime as_of) const {
  std::optional<ModelSnapshot> best;
  for (const auto& [key, snapshot] : snapshots_) {
    if (key.first != name || key.second > as_of) continue;
    if (!best || key.second > best->trained_at) best = snapshot;
  }
  return best;
}

std::vector<ModelSnapshot> ModelRegistry::history(const std::string& name) const {
  std::vector<ModelSnapshot> out;
  for (const auto& [key, snapshot] : snapshots_) {
    if (key.first == name) out.push_back(snapshot);
  }
  return out;  // map order is already (name, trained_at) ascending
}

std::optional<double> ModelRegistry::evaluate(const std::string& name, util::SimTime trained_at,
                                              const ml::Dataset& data) const {
  const auto it = snapshots_.find({name, trained_at});
  if (it == snapshots_.end()) return std::nullopt;
  return ml::accuracy(*it->second.model, data);
}

std::size_t ModelRegistry::apply_retention(util::SimTime now, util::SimTime horizon,
                                           std::size_t keep_min) {
  // Count snapshots per name so the newest keep_min always survive.
  std::map<std::string, std::size_t> counts;
  for (const auto& [key, _] : snapshots_) ++counts[key.first];

  std::size_t dropped = 0;
  // Iterate ascending: older snapshots of each name come first.
  for (auto it = snapshots_.begin(); it != snapshots_.end();) {
    const auto& [name, trained_at] = it->first;
    if (now - trained_at > horizon && counts[name] > keep_min) {
      --counts[name];
      it = snapshots_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace smn::smn
