// The upper tier of the two-level federation (DESIGN.md §12). The
// GlobalController never sees fine telemetry: it ingests only CoarseExport
// messages — each region's sealed window summaries, gauges, and drift —
// validates them (known region, strictly increasing sequence), and merges
// the buffered summaries into one global coarse log in the canonical
// single-controller emission order. Global TE runs over the coarse
// inter-region graph through evaluate_federated_te: the CH-routed global
// solve plus the per-region refinement fan-out, gated against the flat
// single-controller solve.
//
// Merge fidelity: when every pair is owned by exactly one region and all
// exports covering a horizon have been ingested before merge_pending(),
// the merged log is byte-identical to what a single controller's
// coarsen_older_than() would have produced over the union of the fine
// telemetry — the federation's correctness invariant (tested in
// test_smn_federation.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "smn/coarse_export.h"
#include "smn/control_plane.h"
#include "smn/region_controller.h"
#include "te/coarse_te.h"
#include "telemetry/time_coarsening.h"
#include "topology/wan.h"
#include "util/thread_annotations.h"

namespace smn::smn {

class GlobalController {
 public:
  /// Registers every region of `wan` as a federation member. `wan` must
  /// outlive the controller.
  explicit GlobalController(const topology::WanTopology& wan);
  explicit GlobalController(topology::WanTopology&&) = delete;

  Mib& mib() noexcept { return mib_; }
  const topology::WanTopology& wan() const noexcept { return wan_; }
  std::size_t region_count() const SMN_EXCLUDES(ingest_mutex_) {
    const std::lock_guard<std::mutex> lock(ingest_mutex_);
    return last_sequence_.size();
  }

  /// Validates and buffers one region export: SMN_CHECK-fails on an unknown
  /// region or a sequence number not strictly above the region's last.
  /// Pair names are re-interned into this process's id space; gauges and
  /// drift land in the MIB under "region/<name>". Returns summaries
  /// buffered. Thread-safe: region export streams may ingest concurrently.
  std::size_t ingest_export(const CoarseExport& exp) SMN_EXCLUDES(ingest_mutex_);

  /// Merges every buffered summary into the global coarse log in the
  /// canonical order (day ascending, then src name, dst name, window
  /// start — the single-controller coarsen_older_than emission order).
  /// Returns summaries merged.
  std::size_t merge_pending() SMN_EXCLUDES(ingest_mutex_);

  /// The global coarse view assembled from region exports so far. The
  /// reference reads the merge phase's output; do not hold it across a
  /// concurrent merge_pending().
  const telemetry::CoarseBandwidthLog& coarse() const noexcept { return coarse_; }

  /// Summaries ingested but not yet merged.
  std::size_t pending_count() const SMN_EXCLUDES(ingest_mutex_) {
    const std::lock_guard<std::mutex> lock(ingest_mutex_);
    return pending_.size();
  }

  /// Failover: constructs a replacement RegionController over the dead
  /// instance's spill directory (stealing its lock, replaying its spilled
  /// segments) and resets the region's export sequence so the adoptee
  /// starts a fresh sequence at 1. See RegionController::adopt.
  std::unique_ptr<RegionController> adopt_region(const std::string& region,
                                                 CoreConfig config,
                                                 std::size_t* recovered_records = nullptr)
      SMN_EXCLUDES(ingest_mutex_);

  /// Runs the federated TE pipeline over the WAN's region partition and
  /// publishes the fidelity/solve gauges under "global". `fine_commodities`
  /// index into `wan().graph()` node ids.
  te::FederatedTeReport run_global_te(const std::vector<lp::Commodity>& fine_commodities,
                                      const te::FederatedTeOptions& options = {});

  std::uint64_t exports_ingested() const SMN_EXCLUDES(ingest_mutex_) {
    const std::lock_guard<std::mutex> lock(ingest_mutex_);
    return exports_ingested_;
  }

 private:
  const topology::WanTopology& wan_;
  Mib mib_;
  /// Serializes concurrent region export streams: the sequence table, the
  /// pending buffer, and the ingest counter all move under it. The merged
  /// coarse log is deliberately outside — merge_pending()/coarse() are the
  /// global tier's serial consumer phase.
  mutable std::mutex ingest_mutex_;
  /// Region -> last accepted export sequence (0 = none yet). Keys double as
  /// the membership set.
  std::map<std::string, std::uint64_t> last_sequence_ SMN_GUARDED_BY(ingest_mutex_);
  /// Summaries buffered by ingest_export, awaiting the canonical merge.
  std::vector<telemetry::WindowSummary> pending_ SMN_GUARDED_BY(ingest_mutex_);
  telemetry::CoarseBandwidthLog coarse_;
  std::uint64_t exports_ingested_ SMN_GUARDED_BY(ingest_mutex_) = 0;
};

}  // namespace smn::smn
