// CLTO feedback objects (§2): "whose output is a set of feedback either to
// teams or external agents. For example, for incident response ... the
// feedback is to the team that is implicated as the cause of the incident;
// for capacity planning ... the feedback may be to an external provider to
// provision additional capacity."
#pragma once

#include <string>
#include <vector>

#include "util/sim_time.h"

namespace smn::smn {

enum class FeedbackKind {
  kIncidentAssignment,   ///< route an incident to a team (minutes)
  kInformational,        ///< keep a team in the loop without assignment
  kCapacityUpgrade,      ///< upgrade an existing link (months)
  kFiberBuildRequest,    ///< external provider: new fiber needed (years)
  kConfigChangeRequest,  ///< ask a team to revert/adjust a configuration
  kProcessChange,        ///< change how a team operates (§2 "Process Changes")
  kMitigation,           ///< automatic action taken (e.g. restart)
};

enum class Priority { kLow, kMedium, kHigh, kCritical };

struct Feedback {
  FeedbackKind kind = FeedbackKind::kInformational;
  /// Team name, or "external:<provider>" for external agents.
  std::string target;
  Priority priority = Priority::kMedium;
  std::string subject;
  std::string detail;
  util::SimTime issued_at = 0;
  std::uint64_t incident_id = 0;  ///< 0 when not incident-related
};

std::string feedback_kind_name(FeedbackKind kind);
std::string priority_name(Priority priority);

/// Append-only feedback channel with simple per-target filtering.
class FeedbackBus {
 public:
  void publish(Feedback feedback) { entries_.push_back(std::move(feedback)); }

  const std::vector<Feedback>& all() const noexcept { return entries_; }
  std::vector<Feedback> for_target(const std::string& target) const;
  std::vector<Feedback> of_kind(FeedbackKind kind) const;
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<Feedback> entries_;
};

}  // namespace smn::smn
