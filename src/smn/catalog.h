// The queryable global catalog of §6:
//
//   "(1) A queryable global catalog describing data sets and metadata,
//    including team names, data type (alert/incident/log/telemetry), data
//    schema, units (2) a uniform schema, (3) access control policies ..."
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "smn/record.h"

namespace smn::smn {

struct FieldSchema {
  std::string name;
  std::string unit;        ///< e.g. "Gbps", "ms", "fraction"
  bool numeric = true;
};

struct DatasetInfo {
  std::string name;
  std::string owner_team;
  DataType type = DataType::kTelemetry;
  std::vector<FieldSchema> schema;
  std::string description;
  /// Teams allowed to read; empty = readable by every team (the SMN
  /// default — visibility is the point — but sensitive sets can narrow it).
  std::set<std::string> readers;

  bool readable_by(const std::string& team) const {
    return readers.empty() || readers.contains(team) || team == owner_team;
  }

  /// Field schema by name, if declared.
  std::optional<FieldSchema> field(const std::string& field_name) const;
};

/// Global catalog: register/lookup/discover datasets across teams.
class DataCatalog {
 public:
  /// Registers or replaces a dataset description. Name must be non-empty.
  void register_dataset(DatasetInfo info);

  const DatasetInfo* find(const std::string& name) const;
  bool contains(const std::string& name) const { return find(name) != nullptr; }

  /// Discovery: all datasets of `type`, readable by `team` (cross-team
  /// discovery is the SMN selling point).
  std::vector<DatasetInfo> discover(DataType type, const std::string& team) const;

  /// All datasets owned by `team`.
  std::vector<DatasetInfo> owned_by(const std::string& team) const;

  std::size_t size() const noexcept { return datasets_.size(); }

  std::vector<std::string> dataset_names() const;

 private:
  std::map<std::string, DatasetInfo> datasets_;
};

}  // namespace smn::smn
