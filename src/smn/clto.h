// CLTO — the Cross-Layer, Cross-Team Optimizer of Figure 1. It consults
// the CLDS and the Cloud Dependency Graph and emits feedback to teams and
// external agents. Two built-in control loops:
//
//   * Incident routing (timescale: minutes): a Random Forest over per-team
//     health metrics + CDG symptom explainability assigns each incident to
//     the implicated team, with informational feedback to other
//     symptomatic teams (§5).
//   * Capacity planning (timescale: months/years): cross-layer-aware
//     threshold planning that respects L1 fiber constraints and ignores
//     transient TE overloads, emitting upgrade feedback to the capacity
//     team and fiber-build requests to external providers (§4, war story 1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "capacity/capacity_planner.h"
#include "depgraph/cdg.h"
#include "depgraph/service_graph.h"
#include "incident/features.h"
#include "incident/routing_experiment.h"
#include "ml/random_forest.h"
#include "smn/feedback.h"
#include "telemetry/bandwidth_log.h"
#include "topology/wan.h"

namespace smn::smn {

struct CltoConfig {
  std::size_t training_incidents = 560;
  std::size_t forest_trees = 200;
  std::size_t forest_max_depth = 14;
  std::uint64_t seed = 20250607;
  capacity::PlannerConfig planner;
};

/// Result of routing one incident.
struct RoutingDecision {
  std::size_t team = 0;
  std::string team_name;
  double confidence = 0.0;
  /// Teams that showed symptoms but were not implicated (informed, not
  /// assigned — war story 3's "informing the cluster team").
  std::vector<std::string> informed_teams;
};

class Clto {
 public:
  /// Builds the CDG from `sg` via the team coarsener and trains the
  /// routing forest on simulated incident history.
  Clto(const depgraph::ServiceGraph& sg, FeedbackBus& bus, CltoConfig config = {});
  /// Keeps a reference to the service graph; temporaries would dangle.
  Clto(depgraph::ServiceGraph&&, FeedbackBus&, CltoConfig) = delete;

  const depgraph::Cdg& cdg() const noexcept { return cdg_; }

  /// Routes one incident: publishes an assignment to the implicated team
  /// and informational feedback to other symptomatic teams.
  RoutingDecision route_incident(const incident::Incident& incident, util::SimTime now,
                                 std::uint64_t incident_id);

  /// Cross-layer capacity pass over `wan` driven by `log`; publishes
  /// upgrade feedback and fiber-build requests. Returns the plan.
  capacity::CapacityPlan plan_capacity(const topology::WanTopology& wan,
                                       const telemetry::BandwidthLog& log, util::SimTime now);

  /// Training accuracy proxy (held-out accuracy from the training run),
  /// for observability.
  double router_holdout_accuracy() const noexcept { return holdout_accuracy_; }

 private:
  const depgraph::ServiceGraph& sg_;
  depgraph::Cdg cdg_;
  incident::FeatureExtractor extractor_;
  ml::RandomForest router_;
  FeedbackBus& bus_;
  CltoConfig config_;
  double holdout_accuracy_ = 0.0;
};

}  // namespace smn::smn
