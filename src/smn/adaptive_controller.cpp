#include "smn/adaptive_controller.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace smn::smn {
namespace {

AdaptiveConfig validated(AdaptiveConfig config) {
  SMN_CHECK(config.eps_tight > 0.0 && config.eps_tight < 1.0,
            "AdaptiveConfig::eps_tight must be in (0, 1)");
  SMN_CHECK(config.eps_coarse > 0.0 && config.eps_coarse < 1.0,
            "AdaptiveConfig::eps_coarse must be in (0, 1)");
  SMN_CHECK(config.eps_tight <= config.eps_coarse,
            "AdaptiveConfig: eps_tight must not exceed eps_coarse");
  SMN_CHECK(config.drift_low < config.drift_high,
            "AdaptiveConfig: drift_low must be below drift_high");
  SMN_CHECK(config.eps_hysteresis >= 0.0,
            "AdaptiveConfig::eps_hysteresis must be non-negative");
  SMN_CHECK(config.resolve_threshold > 0.0,
            "AdaptiveConfig::resolve_threshold must be positive");
  return config;
}

}  // namespace

AdaptiveController::AdaptiveController(AdaptiveConfig config)
    : config_(validated(config)), epsilon_(config_.eps_coarse) {}

double AdaptiveController::target_epsilon(double drift_level) const noexcept {
  // +inf drift (demand against an all-zero baseline) clamps to 1 like any
  // above-range level; NaN would poison the clamp, so treat it as 0.
  if (std::isnan(drift_level)) drift_level = 0.0;
  const double t = std::clamp(
      (drift_level - config_.drift_low) / (config_.drift_high - config_.drift_low), 0.0, 1.0);
  // Return the configured endpoints verbatim at the clamp bounds: the
  // hysteresis latch in observe() compares against them bit for bit, and
  // `coarse + 1.0 * (tight - coarse)` is not `tight` in floating point.
  if (t <= 0.0) return config_.eps_coarse;
  if (t >= 1.0) return config_.eps_tight;
  return config_.eps_coarse + t * (config_.eps_tight - config_.eps_coarse);
}

double AdaptiveController::observe(double drift_level, util::SimTime now) {
  const double target = target_epsilon(drift_level);
  const std::lock_guard<std::mutex> lock(mutex_);
  // Hysteresis: small target moves are noise; endpoint targets latch
  // exactly (the clamp makes them exact values, not asymptotes).
  if (std::abs(target - epsilon_) >= config_.eps_hysteresis ||
      target == config_.eps_tight || target == config_.eps_coarse) {
    epsilon_ = target;
  }
  if (drift_level >= config_.resolve_threshold) {
    if (!pending_since_.has_value()) pending_since_ = now;
  } else {
    // Excursion ended (a re-solve reset the baseline, or the shift
    // reverted) — stop the clock without recording a latency.
    pending_since_.reset();
  }
  return epsilon_;
}

util::SimTime AdaptiveController::note_resolve(util::SimTime now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::SimTime latency = 0;
  if (pending_since_.has_value()) {
    latency = now - *pending_since_;
    pending_since_.reset();
  }
  last_latency_ = latency;
  ++resolves_;
  return latency;
}

void AdaptiveController::record_solve(std::uint64_t warm_hits, std::uint64_t warm_misses,
                                      std::uint64_t sp_calls, double lambda) {
  const std::lock_guard<std::mutex> lock(mutex_);
  last_warm_hits_ = warm_hits;
  last_warm_misses_ = warm_misses;
  last_sp_calls_ = sp_calls;
  last_lambda_ = lambda;
}

double AdaptiveController::epsilon() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return epsilon_;
}

double AdaptiveController::warm_hit_rate() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t total = last_warm_hits_ + last_warm_misses_;
  return total == 0 ? 0.0 : static_cast<double>(last_warm_hits_) / static_cast<double>(total);
}

util::SimTime AdaptiveController::last_reaction_latency() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_latency_;
}

std::uint64_t AdaptiveController::resolves() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resolves_;
}

std::uint64_t AdaptiveController::last_sp_calls() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_sp_calls_;
}

double AdaptiveController::last_lambda() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_lambda_;
}

}  // namespace smn::smn
