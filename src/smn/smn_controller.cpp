#include "smn/smn_controller.h"

#include <algorithm>

#include "te/demand.h"
#include "util/contracts.h"

namespace smn::smn {
namespace {

DataCatalog default_catalog(const depgraph::ServiceGraph& sg) {
  DataCatalog catalog;
  // One telemetry dataset per team plus shared alert/incident/dependency
  // sets — the §6 "uniform schema" starting point.
  for (const std::string& team : sg.teams()) {
    catalog.register_dataset({.name = "telemetry." + team,
                              .owner_team = team,
                              .type = DataType::kTelemetry,
                              .schema = {{"latency_ms", "ms", true},
                                         {"error_rate", "fraction", true},
                                         {"cpu_util", "fraction", true},
                                         {"qps_ratio", "fraction", true}},
                              .description = team + " service health telemetry"});
    catalog.register_dataset({.name = "alerts." + team,
                              .owner_team = team,
                              .type = DataType::kAlert,
                              .schema = {{"severity", "fraction", true}},
                              .description = team + " alerts"});
  }
  catalog.register_dataset({.name = "incidents",
                            .owner_team = "smn",
                            .type = DataType::kIncident,
                            .schema = {{"assigned_team_index", "index", true}},
                            .description = "cloud-wide incident archive"});
  catalog.register_dataset({.name = "bandwidth.logs",
                            .owner_team = "network",
                            .type = DataType::kTelemetry,
                            .schema = {{"bw_gbps", "Gbps", true}},
                            .description = "inter-DC bandwidth logs (Listing 1)"});
  catalog.register_dataset({.name = "cross-layer.deps",
                            .owner_team = "smn",
                            .type = DataType::kDependency,
                            .schema = {},
                            .description = "cross-layer dependency records"});
  catalog.register_dataset({.name = "optical.link-risk",
                            .owner_team = "optical",
                            .type = DataType::kTelemetry,
                            .schema = {{"flaps_per_day", "1/day", true},
                                       {"cuts_per_year", "1/year", true},
                                       {"srlg_partners", "count", true}},
                            .description = "per-link risk from the optical layer"});
  return catalog;
}

/// The region-scoped slice of SmnConfig, in ControllerCore terms. The core
/// SMN_CHECK-validates the drift knobs at construction.
CoreConfig core_config(const SmnConfig& config) {
  CoreConfig core;
  core.bw_max_fine_age = config.bw_max_fine_age;
  core.bw_coarse_window = config.bw_coarse_window;
  core.bw_shards = config.bw_shards;
  core.bw_ingest_threads = config.bw_ingest_threads;
  core.bw_spill_dir = config.bw_spill_dir;
  core.drift_resolve_threshold = config.drift_resolve_threshold;
  core.drift_rearm_threshold = config.drift_rearm_threshold;
  core.drift_min_resolve_interval = config.drift_min_resolve_interval;
  return core;
}

/// Loop-period validation, run from config_'s initializer so a bad config
/// fails before the expensive members (data lake, CLTO training) construct.
SmnConfig validated(SmnConfig config) {
  SMN_CHECK(config.incident_loop_period > 0, "incident_loop_period must be positive");
  SMN_CHECK(config.telemetry_loop_period > 0, "telemetry_loop_period must be positive");
  SMN_CHECK(config.retention_loop_period > 0, "retention_loop_period must be positive");
  SMN_CHECK(config.planning_loop_period > 0, "planning_loop_period must be positive");
  SMN_CHECK(config.adaptive_forecast_horizon > 0,
            "adaptive_forecast_horizon must be positive");
  return config;
}

/// The adaptive policy's reaction clock measures the same excursions the
/// core's fire decision acts on: one threshold knob drives both.
AdaptiveConfig adaptive_config(const SmnConfig& config) {
  AdaptiveConfig adaptive = config.adaptive;
  adaptive.resolve_threshold = config.drift_resolve_threshold;
  return adaptive;
}

}  // namespace

SmnController::SmnController(const depgraph::ServiceGraph& sg, const topology::WanTopology& wan,
                             SmnConfig config)
    : sg_(sg),
      wan_(wan),
      config_(validated(config)),
      lake_(default_catalog(sg), config.clto.seed),
      clto_(sg, bus_, config.clto),
      core_(core_config(config_), "smn"),
      adaptive_(adaptive_config(config_)),
      query_budget_(config_.query_budget) {
  // Seed the control plane: a static route per datacenter via its first
  // graph neighbor (stands in for an IGP) — the generalized control plane
  // manages these alongside everything else.
  for (graph::NodeId n = 0; n < wan_.datacenter_count(); ++n) {
    const auto edges = wan_.graph().out_edges(n);
    if (edges.empty()) continue;
    RibEntry route;
    route.prefix = wan_.datacenter(n).name;
    route.next_hop = wan_.graph().node_name(wan_.graph().edge(edges[0]).to);
    route.metric = 10;
    route.protocol = "static";
    rib_.add_route(route);
  }
  fib_.program_from(rib_);

  loops_.add_loop({"telemetry-ingest", config_.telemetry_loop_period,
                   [this](util::SimTime now) {
                     core_.publish_store_gauges(mib_, now);
                     query_budget_.publish_gauges(mib_, core_.scope());
                   }});
  loops_.add_loop({"drift-watch", config_.telemetry_loop_period,
                   [this](util::SimTime now) { check_demand_drift(now); }});
  loops_.add_loop({"retention", config_.retention_loop_period,
                   [this](util::SimTime now) { run_retention(now); }});
  loops_.add_loop({"capacity-planning", config_.planning_loop_period,
                   [this](util::SimTime now) { run_capacity_planning(now); }});
}

void SmnController::ingest_telemetry(const std::string& dataset, Record record) {
  denoiser_.denoise(dataset, record);
  lake_.ingest(dataset, std::move(record));
  mib_.increment_counter("smn", "records_ingested");
}

std::size_t SmnController::ingest_bandwidth(const telemetry::BandwidthLog& log) {
  return core_.ingest_bandwidth(log, mib_);
}

RoutingDecision SmnController::handle_incident(const incident::Incident& incident,
                                               util::SimTime now) {
  const std::uint64_t id = next_incident_id_++;
  const RoutingDecision decision = clto_.route_incident(incident, now, id);

  // Archive the incident in the CLDS (retention keeps these for years).
  Record archive;
  archive.timestamp = now;
  archive.incident_id = id;
  archive.numeric = {{"assigned_team_index", static_cast<double>(decision.team)}};
  archive.tags = {{"assigned_team", decision.team_name}};
  lake_.ingest("incidents", archive);

  // Enrichment: attach nearest past incidents, then remember this one.
  const incident::FeatureExtractor extractor(sg_, clto_.cdg());
  const std::vector<double> features = extractor.combined_features(incident);
  enricher_.similar(features, 3);  // consumers read via enricher(); archived next:
  enricher_.add_resolved({id, features, decision.team_name, "routed by CLTO"});

  // Automatic mitigation proposals.
  const auto actions = mitigator_.propose(sg_, incident);
  mitigator_.publish(actions, bus_, now, id);
  mib_.increment_counter("smn", "incidents_handled");
  return decision;
}

std::size_t SmnController::ingest_optical_risks(const optical::OpticalNetwork& underlay,
                                                util::SimTime now) {
  std::size_t written = 0;
  for (const optical::LinkRisk& risk : underlay.assess_risks()) {
    if (risk.logical_link >= wan_.link_count()) continue;
    Record r;
    r.timestamp = now;
    r.numeric = {{"flaps_per_day", risk.expected_flaps_per_day},
                 {"cuts_per_year", risk.expected_cuts_per_year},
                 {"srlg_partners", static_cast<double>(risk.srlg_partners.size())}};
    const graph::Edge& edge = wan_.graph().edge(wan_.link(risk.logical_link).forward);
    r.tags = {{"link", wan_.graph().node_name(edge.from) + "<->" +
                           wan_.graph().node_name(edge.to)}};
    lake_.ingest("optical.link-risk", std::move(r));
    ++written;
  }
  // Cartography: wavelength -> logical link dependency records.
  for (std::size_t i = 0; i < underlay.wavelength_count(); ++i) {
    const optical::Wavelength& w = underlay.wavelength(i);
    if (!w.logical_link || *w.logical_link >= wan_.link_count()) continue;
    const graph::Edge& edge = wan_.graph().edge(wan_.link(*w.logical_link).forward);
    Record dep;
    dep.timestamp = now;
    dep.tags = {{"from", "link:" + wan_.graph().node_name(edge.from) + "~" +
                             wan_.graph().node_name(edge.to)},
                {"to", "wavelength:" + w.id}};
    lake_.ingest("cross-layer.deps", std::move(dep));
    ++written;
  }
  mib_.increment_counter("smn", "optical_risk_records", static_cast<double>(written));
  return written;
}

std::size_t SmnController::tick(util::SimTime now) { return loops_.tick(now); }

std::size_t SmnController::run_retention(util::SimTime now) {
  const std::size_t lake_retired = lake_.apply_retention(now, config_.retention);
  const std::size_t bw_retired = core_.run_bw_retention(now);
  mib_.increment_counter("smn", "records_retired",
                         static_cast<double>(lake_retired + bw_retired));
  return lake_retired + bw_retired;
}

telemetry::BandwidthLog SmnController::recent_bandwidth(util::SimTime now) const {
  return core_.store().fine_range(now - util::kMonth < 0 ? 0 : now - util::kMonth, now);
}

capacity::CapacityPlan SmnController::finish_planning(const telemetry::BandwidthLog& recent,
                                                      util::SimTime now) {
  core_.note_te_solve(now);
  mib_.set_gauge("smn", "last_te_solve", static_cast<double>(now));
  return clto_.plan_capacity(wan_, recent, now);
}

capacity::CapacityPlan SmnController::run_capacity_planning(util::SimTime now) {
  const telemetry::BandwidthLog recent = recent_bandwidth(now);
  // Snapshot the demand this solve is based on: the drift-watch loop
  // compares live ingest against it to decide when the plan went stale.
  const te::DemandMatrix demand =
      te::DemandMatrix::from_log(recent, te::DemandStatistic::kMean);
  if (!demand.entries().empty()) {
    core_.store().set_demand_baseline(demand.to_baseline(now));
  }
  return finish_planning(recent, now);
}

lp::McfResult SmnController::run_adaptive_resolve(util::SimTime now) {
  // Read the drift this re-solve is answering before anything resets it;
  // it sets both the forecast's history discount and the chosen epsilon.
  const telemetry::DriftReport report = core_.store().drift();
  adaptive_.observe(report.level, now);
  const util::SimTime latency = adaptive_.note_resolve(now);

  const telemetry::BandwidthLog recent = recent_bandwidth(now);
  telemetry::ForecastOptions forecast_options;
  forecast_options.drift_level = report.level;
  const te::DemandMatrix demand = te::DemandMatrix::from_forecast(
      recent, config_.adaptive_forecast_horizon, telemetry::ForecastMethod::kEwma,
      forecast_options);

  lp::McfOptions mcf_options;
  mcf_options.epsilon = adaptive_.epsilon();
  mcf_options.warm_start = &te_path_cache_;
  lp::McfResult solved =
      lp::max_concurrent_flow(wan_.graph(), demand.to_commodities(wan_), mcf_options);
  adaptive_.record_solve(solved.warm_hits, solved.warm_misses, solved.sp_calls,
                         solved.lambda);

  // The forecast becomes the drift baseline: live ingest is now judged
  // against what this solve planned for, so drift settles and the trigger
  // re-arms once the plan actually matches reality.
  if (!demand.entries().empty()) {
    core_.store().set_demand_baseline(demand.to_baseline(now));
  }
  finish_planning(recent, now);

  mib_.set_gauge("smn", "adaptive_epsilon", adaptive_.epsilon());
  mib_.set_gauge("smn", "adaptive_warm_hit_rate", adaptive_.warm_hit_rate());
  mib_.set_gauge("smn", "adaptive_reaction_latency_s", static_cast<double>(latency));
  mib_.increment_counter("smn", "adaptive_te_resolves");
  return solved;
}

telemetry::DriftReport SmnController::check_demand_drift(util::SimTime now) {
  const telemetry::DriftReport report = core_.check_demand_drift(
      now, mib_, [this](util::SimTime t) { run_adaptive_resolve(t); });
  // Every tick feeds the policy (not just fires), so epsilon relaxes as
  // drift settles between solves; the gauge always shows what the next
  // re-solve would use.
  mib_.set_gauge("smn", "adaptive_epsilon", adaptive_.observe(report.level, now));
  return report;
}

std::vector<ParadigmComparison> SmnController::sdn_vs_smn() {
  return {
      {"Scope", "Data Plane", "All Planes"},
      {"Timescale", "microseconds to Hours", "Minutes to Years"},
      {"Data Inputs", "Structured (Traffic, Topology)", "Mixed (Telemetry, Logs)"},
      {"Outputs", "Actions (e.g., add FIB entry)", "Actions, Process Changes"},
      {"APIs", "OpenFlow, P4", "OpenTelemetry, OpenConfig"},
      {"Enabling Technologies", "NoSQL, Compilers, Optimization",
       "Data Lakes, Generative AI, ML"},
      {"Managed Layers", "L2-L3", "L1-L7"},
  };
}

}  // namespace smn::smn
