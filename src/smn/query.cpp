#include "smn/query.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/contracts.h"
#include "util/stats.h"

namespace smn::smn {

std::string aggregation_name(Aggregation agg) {
  switch (agg) {
    case Aggregation::kCount:
      return "count";
    case Aggregation::kSum:
      return "sum";
    case Aggregation::kMean:
      return "mean";
    case Aggregation::kMin:
      return "min";
    case Aggregation::kMax:
      return "max";
    case Aggregation::kP95:
      return "p95";
  }
  SMN_UNREACHABLE("aggregation_name: unknown Aggregation value");
}

std::vector<QueryRow> run_query(const DataLake& lake, const std::string& team,
                                const Query& query) {
  SMN_CHECK(query.begin <= query.end,
            "run_query: inverted time range — [begin, end) with begin > end matches "
            "nothing and almost always means swapped arguments");
  if (query.dataset.has_value() == query.type.has_value()) {
    throw std::invalid_argument("run_query: set exactly one of dataset/type");
  }
  if (query.aggregation != Aggregation::kCount && query.field.empty()) {
    throw std::invalid_argument("run_query: aggregation '" +
                                aggregation_name(query.aggregation) + "' needs a field");
  }

  std::vector<Record> records =
      query.dataset ? lake.query(*query.dataset, team, query.begin, query.end)
                    : lake.query_by_type(*query.type, team, query.begin, query.end);

  // Predicates.
  std::erase_if(records, [&](const Record& r) {
    for (const auto& [tag, wanted] : query.tag_equals) {
      const auto value = r.tag(tag);
      if (!value || *value != wanted) return true;
    }
    for (const NumericPredicate& p : query.numeric) {
      const auto value = r.value(p.field);
      if (!value || *value < p.at_least || *value >= p.below) return true;
    }
    return false;
  });

  // Group.
  std::map<std::string, std::vector<const Record*>> groups;
  for (const Record& r : records) {
    std::string key;
    if (!query.group_by_tag.empty()) {
      const auto tag = r.tag(query.group_by_tag);
      if (!tag) continue;  // ungroupable records drop out of grouped queries
      key = *tag;
    }
    groups[key].push_back(&r);
  }

  // Aggregate.
  std::vector<QueryRow> rows;
  rows.reserve(groups.size());
  for (const auto& [group, members] : groups) {
    QueryRow row;
    row.group = group;
    row.matched = members.size();
    if (query.aggregation == Aggregation::kCount) {
      row.value = static_cast<double>(members.size());
    } else {
      std::vector<double> values;
      values.reserve(members.size());
      for (const Record* r : members) {
        if (const auto v = r->value(query.field)) values.push_back(*v);
      }
      if (values.empty()) {
        row.value = 0.0;
      } else {
        switch (query.aggregation) {
          case Aggregation::kSum: {
            double total = 0.0;
            for (const double v : values) total += v;
            row.value = total;
            break;
          }
          case Aggregation::kMean: {
            double total = 0.0;
            for (const double v : values) total += v;
            row.value = total / static_cast<double>(values.size());
            break;
          }
          case Aggregation::kMin:
            row.value = *std::min_element(values.begin(), values.end());
            break;
          case Aggregation::kMax:
            row.value = *std::max_element(values.begin(), values.end());
            break;
          case Aggregation::kP95:
            row.value = util::percentile(values, 0.95);
            break;
          case Aggregation::kCount:
            break;  // handled above
        }
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace smn::smn
