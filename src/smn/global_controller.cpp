#include "smn/global_controller.h"

#include <algorithm>
#include <utility>

#include "util/contracts.h"
#include "util/interner.h"
#include "util/sim_time.h"

namespace smn::smn {

GlobalController::GlobalController(const topology::WanTopology& wan) : wan_(wan) {
  for (const std::string& region : wan_.regions()) last_sequence_.emplace(region, 0);
  SMN_CHECK(!last_sequence_.empty(), "a federation needs at least one region");
}

std::size_t GlobalController::ingest_export(const CoarseExport& exp) {
  // One critical section across validate + buffer + publish: exports from
  // different regions may arrive on different threads, and the sequence
  // check must pair atomically with the buffer append it admits.
  const std::lock_guard<std::mutex> lock(ingest_mutex_);
  const auto member = last_sequence_.find(exp.region);
  SMN_CHECK(member != last_sequence_.end(),
            "export from a region that is not a member of this federation");
  SMN_CHECK(exp.sequence > member->second,
            "stale or replayed export — sequence numbers must strictly increase per region");
  member->second = exp.sequence;

  // Re-intern the wire names into this process's id space: PairIds are
  // process-local handles and never travel.
  util::IdSpace& ids = util::IdSpace::global();
  std::vector<util::PairId> pair_of_index;
  pair_of_index.reserve(exp.pair_names.size());
  for (const auto& [src, dst] : exp.pair_names) {
    pair_of_index.push_back(ids.pair_of_names(src, dst));
  }
  for (const ExportSummary& s : exp.summaries) {
    SMN_CHECK(s.pair_index < pair_of_index.size(),
              "export summary references a pair outside its name table");
    telemetry::WindowSummary row;
    row.window_start = s.window_start;
    row.window_length = s.window_length;
    row.pair = pair_of_index[s.pair_index];
    row.sample_count = static_cast<std::size_t>(s.sample_count);
    row.mean = s.mean;
    row.p50 = s.p50;
    row.p95 = s.p95;
    row.min = s.min;
    row.max = s.max;
    pending_.push_back(row);
  }

  const std::string scope = "region/" + exp.region;
  for (const ExportGauge& g : exp.gauges) mib_.set_gauge(scope, g.name, g.value);
  mib_.set_gauge(scope, "export_sequence", static_cast<double>(exp.sequence));
  mib_.set_gauge(scope, "last_export_at", static_cast<double>(exp.exported_at));
  mib_.set_gauge(scope, "bw_drift_level", exp.drift.level);
  mib_.set_gauge(scope, "bw_drift_deviation_gbps", exp.drift.deviation_gbps);
  mib_.set_gauge(scope, "bw_drift_baseline_gbps", exp.drift.baseline_gbps);
  ++exports_ingested_;
  return exp.summaries.size();
}

std::size_t GlobalController::merge_pending() {
  // Drain the buffer under the ingest lock, then sort/append outside it:
  // the merged log belongs to the serial consumer phase, so holding
  // ingest_mutex_ across the sort would only stall concurrent exporters.
  std::vector<telemetry::WindowSummary> pending;
  {
    const std::lock_guard<std::mutex> lock(ingest_mutex_);
    pending.swap(pending_);
  }
  // Canonical single-controller emission order: retention seals day by day
  // (ascending) and merges each day's summaries by (src name, dst name,
  // window start). Reproducing it here is what makes the federated coarse
  // log byte-identical to the monolithic one once all exports are in.
  const util::IdSpace& ids = util::IdSpace::global();
  std::stable_sort(pending.begin(), pending.end(),
                   [&ids](const telemetry::WindowSummary& a, const telemetry::WindowSummary& b) {
                     const util::SimTime day_a = (a.window_start / util::kDay) * util::kDay;
                     const util::SimTime day_b = (b.window_start / util::kDay) * util::kDay;
                     if (day_a != day_b) return day_a < day_b;
                     if (a.pair != b.pair) return ids.pair_name_less(a.pair, b.pair);
                     return a.window_start < b.window_start;
                   });
  // Horizon ordering across merge calls: a batch must never start before a
  // day the global log already merged, or the canonical order breaks.
  if (!pending.empty() && !coarse_.summaries().empty()) {
    const util::SimTime merged_day =
        (coarse_.summaries().back().window_start / util::kDay) * util::kDay;
    const util::SimTime batch_day = (pending.front().window_start / util::kDay) * util::kDay;
    SMN_CHECK(batch_day >= merged_day,
              "merge_pending received summaries older than an already-merged day — "
              "horizon-ordered merges are what keep the global log byte-identical to "
              "the single-controller one");
  }
  for (telemetry::WindowSummary& row : pending) coarse_.append(row);
  return pending.size();
}

std::unique_ptr<RegionController> GlobalController::adopt_region(
    const std::string& region, CoreConfig config, std::size_t* recovered_records) {
  {
    const std::lock_guard<std::mutex> lock(ingest_mutex_);
    SMN_CHECK(last_sequence_.find(region) != last_sequence_.end(),
              "cannot adopt a region that is not a member of this federation");
  }
  // Replay outside the lock — adoption maps every spilled segment back and
  // must not stall the live regions' export streams.
  auto controller =
      RegionController::adopt(region, wan_, std::move(config), recovered_records);
  {
    // The adoptee starts a fresh export sequence at 1.
    const std::lock_guard<std::mutex> lock(ingest_mutex_);
    last_sequence_[region] = 0;
  }
  mib_.increment_counter("global", "regions_adopted");
  return controller;
}

te::FederatedTeReport GlobalController::run_global_te(
    const std::vector<lp::Commodity>& fine_commodities, const te::FederatedTeOptions& options) {
  SMN_CHECK(!fine_commodities.empty(), "global TE needs at least one commodity");
  const te::FederatedTeReport report =
      te::evaluate_federated_te(wan_, wan_.region_partition(), fine_commodities, options);
  mib_.set_gauge("global", "te_lambda_flat", report.lambda_flat);
  mib_.set_gauge("global", "te_lambda_federated", report.lambda_federated);
  mib_.set_gauge("global", "te_throughput_fidelity", report.throughput_fidelity);
  mib_.set_gauge("global", "te_regions", static_cast<double>(report.regions));
  mib_.set_gauge("global", "te_coarse_commodities",
                 static_cast<double>(report.coarse_commodities));
  mib_.set_gauge("global", "te_refined_commodities",
                 static_cast<double>(report.refined_commodities));
  mib_.increment_counter("global", "te_solves");
  return report;
}

}  // namespace smn::smn
