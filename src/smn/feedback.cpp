#include "smn/feedback.h"

namespace smn::smn {

std::string feedback_kind_name(FeedbackKind kind) {
  switch (kind) {
    case FeedbackKind::kIncidentAssignment:
      return "incident-assignment";
    case FeedbackKind::kInformational:
      return "informational";
    case FeedbackKind::kCapacityUpgrade:
      return "capacity-upgrade";
    case FeedbackKind::kFiberBuildRequest:
      return "fiber-build-request";
    case FeedbackKind::kConfigChangeRequest:
      return "config-change-request";
    case FeedbackKind::kProcessChange:
      return "process-change";
    case FeedbackKind::kMitigation:
      return "mitigation";
  }
  return "unknown";
}

std::string priority_name(Priority priority) {
  switch (priority) {
    case Priority::kLow:
      return "low";
    case Priority::kMedium:
      return "medium";
    case Priority::kHigh:
      return "high";
    case Priority::kCritical:
      return "critical";
  }
  return "unknown";
}

std::vector<Feedback> FeedbackBus::for_target(const std::string& target) const {
  std::vector<Feedback> out;
  for (const Feedback& f : entries_) {
    if (f.target == target) out.push_back(f);
  }
  return out;
}

std::vector<Feedback> FeedbackBus::of_kind(FeedbackKind kind) const {
  std::vector<Feedback> out;
  for (const Feedback& f : entries_) {
    if (f.kind == kind) out.push_back(f);
  }
  return out;
}

}  // namespace smn::smn
