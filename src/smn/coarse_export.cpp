#include "smn/coarse_export.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "telemetry/spill_file.h"
#include "util/contracts.h"

namespace smn::smn {
namespace {

static_assert(std::endian::native == std::endian::little,
              "CoarseExport is little-endian; this host would need a swap path");

constexpr std::uint64_t kMagic = 0x31584445464E4D53ull;  // "SMNFEDX1" LE
constexpr std::size_t kHeaderBytes = 56;

/// Fixed-size header; the checksum covers every byte after it.
struct ExportHeader {
  std::uint64_t magic = kMagic;
  std::uint32_t version = CoarseExport::kVersion;
  std::uint32_t region_len = 0;
  std::uint64_t sequence = 0;
  std::int64_t exported_at = 0;
  std::uint32_t pair_count = 0;
  std::uint32_t summary_count = 0;
  std::uint32_t gauge_count = 0;
  std::uint32_t reserved = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(ExportHeader) == kHeaderBytes, "header layout drifted");

template <typename T>
void put(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

void put_string(std::string& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked reader over the payload bytes.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  T take() {
    static_assert(std::is_trivially_copyable_v<T>);
    SMN_CHECK(bytes_.size() - at_ >= sizeof(T), "truncated CoarseExport payload");
    T value;
    std::memcpy(&value, bytes_.data() + at_, sizeof(T));
    at_ += sizeof(T);
    return value;
  }

  std::string take_string() {
    const std::uint32_t len = take<std::uint32_t>();
    SMN_CHECK(bytes_.size() - at_ >= len, "truncated CoarseExport string");
    std::string s(bytes_.substr(at_, len));
    at_ += len;
    return s;
  }

  bool exhausted() const noexcept { return at_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t at_ = 0;
};

}  // namespace

std::string serialize_export(const CoarseExport& exp) {
  SMN_CHECK(exp.sequence >= 1, "export sequence numbers start at 1");
  SMN_CHECK(!exp.region.empty(), "an export must name its region");
  std::string payload;
  payload.append(exp.region);
  for (const auto& [src, dst] : exp.pair_names) {
    put_string(payload, src);
    put_string(payload, dst);
  }
  for (const ExportSummary& s : exp.summaries) {
    SMN_CHECK(s.pair_index < exp.pair_names.size(),
              "summary references a pair outside the name table");
    put<std::uint32_t>(payload, s.pair_index);
    put<std::int64_t>(payload, s.window_start);
    put<std::int64_t>(payload, s.window_length);
    put<std::uint64_t>(payload, s.sample_count);
    put<double>(payload, s.mean);
    put<double>(payload, s.p50);
    put<double>(payload, s.p95);
    put<double>(payload, s.min);
    put<double>(payload, s.max);
  }
  for (const ExportGauge& g : exp.gauges) {
    put_string(payload, g.name);
    put<double>(payload, g.value);
  }
  put<double>(payload, exp.drift.level);
  put<double>(payload, exp.drift.deviation_gbps);
  put<double>(payload, exp.drift.baseline_gbps);
  put<std::uint64_t>(payload, static_cast<std::uint64_t>(exp.drift.pairs_tracked));
  put<std::uint8_t>(payload, exp.drift.has_baseline ? 1 : 0);

  ExportHeader header;
  header.region_len = static_cast<std::uint32_t>(exp.region.size());
  header.sequence = exp.sequence;
  header.exported_at = exp.exported_at;
  header.pair_count = static_cast<std::uint32_t>(exp.pair_names.size());
  header.summary_count = static_cast<std::uint32_t>(exp.summaries.size());
  header.gauge_count = static_cast<std::uint32_t>(exp.gauges.size());
  header.checksum = telemetry::fnv1a(telemetry::kFnvOffsetBasis, payload.data(), payload.size());

  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  put(out, header);
  out.append(payload);
  return out;
}

CoarseExport parse_export(std::string_view bytes) {
  SMN_CHECK(bytes.size() >= kHeaderBytes, "CoarseExport shorter than its header");
  ExportHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  SMN_CHECK(header.magic == kMagic, "bad CoarseExport magic (not an export)");
  SMN_CHECK(header.version == CoarseExport::kVersion, "unsupported CoarseExport version");
  const std::string_view payload = bytes.substr(kHeaderBytes);
  SMN_CHECK(telemetry::fnv1a(telemetry::kFnvOffsetBasis, payload.data(), payload.size()) ==
                header.checksum,
            "CoarseExport checksum mismatch (corrupt payload)");

  CoarseExport exp;
  exp.sequence = header.sequence;
  exp.exported_at = header.exported_at;
  Cursor cursor(payload);
  SMN_CHECK(payload.size() >= header.region_len, "truncated CoarseExport region name");
  exp.region = std::string(payload.substr(0, header.region_len));
  for (std::uint32_t i = 0; i < header.region_len; ++i) (void)cursor.take<char>();
  exp.pair_names.reserve(header.pair_count);
  for (std::uint32_t i = 0; i < header.pair_count; ++i) {
    std::string src = cursor.take_string();
    std::string dst = cursor.take_string();
    exp.pair_names.emplace_back(std::move(src), std::move(dst));
  }
  exp.summaries.reserve(header.summary_count);
  for (std::uint32_t i = 0; i < header.summary_count; ++i) {
    ExportSummary s;
    s.pair_index = cursor.take<std::uint32_t>();
    SMN_CHECK(s.pair_index < header.pair_count,
              "CoarseExport summary references a pair outside the name table");
    s.window_start = cursor.take<std::int64_t>();
    s.window_length = cursor.take<std::int64_t>();
    SMN_CHECK(s.window_length > 0, "CoarseExport summary with a non-positive window");
    s.sample_count = cursor.take<std::uint64_t>();
    s.mean = cursor.take<double>();
    s.p50 = cursor.take<double>();
    s.p95 = cursor.take<double>();
    s.min = cursor.take<double>();
    s.max = cursor.take<double>();
    exp.summaries.push_back(s);
  }
  exp.gauges.reserve(header.gauge_count);
  for (std::uint32_t i = 0; i < header.gauge_count; ++i) {
    ExportGauge g;
    g.name = cursor.take_string();
    g.value = cursor.take<double>();
    exp.gauges.push_back(std::move(g));
  }
  exp.drift.level = cursor.take<double>();
  exp.drift.deviation_gbps = cursor.take<double>();
  exp.drift.baseline_gbps = cursor.take<double>();
  exp.drift.pairs_tracked = static_cast<std::size_t>(cursor.take<std::uint64_t>());
  exp.drift.has_baseline = cursor.take<std::uint8_t>() != 0;
  SMN_CHECK(cursor.exhausted(), "CoarseExport carries trailing bytes past its payload");
  return exp;
}

void write_export_file(const std::string& path, const CoarseExport& exp) {
  SMN_CHECK(!path.empty(), "write_export_file needs a destination path");
  const std::string bytes = serialize_export(exp);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("write_export_file: cannot create " + tmp);
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_export_file: short write on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_export_file: cannot rename " + tmp + " -> " + path);
  }
}

CoarseExport read_export_file(const std::string& path) {
  SMN_CHECK(!path.empty(), "read_export_file needs a source path");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("read_export_file: cannot open " + path);
  std::string bytes;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) bytes.append(buffer, got);
  const bool failed = std::ferror(f) != 0;
  (void)std::fclose(f);
  if (failed) throw std::runtime_error("read_export_file: read error on " + path);
  return parse_export(bytes);
}

}  // namespace smn::smn
