// Region-scoped controller engine shared by the monolithic SmnController
// and the federation's RegionController: the sharded bandwidth store with
// its spill tier, the drift-EWMA hysteresis state machine that fires early
// TE re-solves, the bandwidth retention pass, and the MIB gauge
// publication that goes with them. Extracting this out of SmnController is
// what makes the two-level federation a refactor instead of a fork — one
// process-wide controller and one per-region controller run the identical
// engine, scoped to different slices of the WAN.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "smn/control_plane.h"
#include "telemetry/log_store.h"
#include "util/sim_time.h"
#include "util/thread_annotations.h"

namespace smn::smn {

/// The bandwidth-store and drift knobs of a controller (the region-scoped
/// subset of SmnConfig). Validated with SMN_CHECK at construction —
/// nonsensical values (zero windows, rearm >= resolve threshold) used to be
/// accepted silently and armed broken control loops.
struct CoreConfig {
  /// Fine segments older than this are sealed into `bw_coarse_window`
  /// summaries by the retention pass.
  util::SimTime bw_max_fine_age = util::kWeek;
  util::SimTime bw_coarse_window = util::kHour;
  /// PairId-hash shards and the worker count for bulk ingest / retention
  /// (0 = min(shards, hardware threads)).
  std::size_t bw_shards = 8;
  std::size_t bw_ingest_threads = 0;
  /// Cold tier directory; empty keeps the drop-on-seal behavior. Must be
  /// private to this controller instance (enforced via a pid lockfile).
  std::string bw_spill_dir;
  /// Failover adoption: take over a dead controller's locked spill dir.
  bool bw_spill_steal_lock = false;
  /// Drift-triggered TE re-solve thresholds (hysteresis: fire above
  /// `resolve`, re-arm below `rearm`), plus the min solve spacing.
  double drift_resolve_threshold = 0.25;
  double drift_rearm_threshold = 0.10;
  util::SimTime drift_min_resolve_interval = util::kHour;
};

/// The engine. `scope` names the MIB scope gauges land under ("smn" for the
/// monolithic controller, "region/<name>" for a federated region).
class ControllerCore {
 public:
  explicit ControllerCore(CoreConfig config, std::string scope = "smn");

  telemetry::BandwidthLogStore& store() noexcept { return store_; }
  const telemetry::BandwidthLogStore& store() const noexcept { return store_; }

  /// Snapshot of the bandwidth store for lock-free concurrent reads
  /// (DESIGN.md §14): queried without blocking ingest or retention.
  telemetry::BandwidthLogStore::ReadView read_view() const { return store_.read_view(); }
  const CoreConfig& config() const noexcept { return config_; }
  const std::string& scope() const noexcept { return scope_; }

  /// Streams `log` into the store and bumps the ingest counter in `mib`.
  /// Returns records added.
  std::size_t ingest_bandwidth(const telemetry::BandwidthLog& log, Mib& mib);

  /// Seals fine segments older than the configured age. Returns records
  /// retired.
  std::size_t run_bw_retention(util::SimTime now);

  /// Publishes the store's footprint/occupancy/tiering gauges into `mib`.
  void publish_store_gauges(Mib& mib, util::SimTime now) const;

  /// Drift-watch pass: publishes drift gauges and calls `resolve(now)` (an
  /// early TE re-solve) when aggregate drift crosses the resolve threshold,
  /// subject to hysteresis and the min-interval guard. Returns the report
  /// it acted on. `resolve` runs with no core lock held, so it may call
  /// back into note_te_solve.
  telemetry::DriftReport check_demand_drift(
      util::SimTime now, Mib& mib,
      const std::function<void(util::SimTime)>& resolve) SMN_EXCLUDES(drift_mutex_);

  /// Records that a TE solve happened at `now` (arms the min-interval
  /// guard). Callers invoke this from their capacity-planning pass.
  void note_te_solve(util::SimTime now) SMN_EXCLUDES(drift_mutex_) {
    const std::lock_guard<std::mutex> lock(drift_mutex_);
    last_te_solve_ = now;
  }

  std::uint64_t early_te_resolves() const SMN_EXCLUDES(drift_mutex_) {
    const std::lock_guard<std::mutex> lock(drift_mutex_);
    return early_te_resolves_;
  }

 private:
  CoreConfig config_;
  std::string scope_;
  telemetry::BandwidthLogStore store_;
  /// Serializes the drift-trigger state machine against concurrent
  /// drift-watch ticks and TE solves (the store locks its own shards; this
  /// mutex covers only the hysteresis state below).
  mutable std::mutex drift_mutex_;
  /// Drift-trigger state machine: armed -> fire (disarm) -> re-arm when
  /// drift falls below the rearm threshold after the next solve.
  bool drift_armed_ SMN_GUARDED_BY(drift_mutex_) = true;
  std::optional<util::SimTime> last_te_solve_ SMN_GUARDED_BY(drift_mutex_);
  std::uint64_t early_te_resolves_ SMN_GUARDED_BY(drift_mutex_) = 0;
};

}  // namespace smn::smn
