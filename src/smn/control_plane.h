// The generalized control plane of §2: where SDN centrally programs only
// the FIB, the SMN manages the Routing Information Base (RIB), Forwarding
// Information Base (FIB), Management Information Base (MIB), and
// diagnostic/traffic state together, and runs control loops over multiple
// timescales (minutes for incident response, months+ for capacity).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace smn::smn {

/// RIB entry: a learned/computed route with provenance and preference.
struct RibEntry {
  std::string prefix;      ///< destination (DC name or CIDR-style label)
  std::string next_hop;
  std::uint32_t metric = 0;
  std::string protocol;    ///< "static", "bgp", "te-controller"
};

/// FIB entry: the installed forwarding decision for a prefix.
struct FibEntry {
  std::string prefix;
  std::string next_hop;
};

/// Routing Information Base: multiple candidate routes per prefix; best
/// (lowest metric, then protocol name for determinism) wins FIB selection.
class Rib {
 public:
  void add_route(RibEntry entry);
  /// Removes all routes for `prefix` from `protocol`.
  void withdraw(const std::string& prefix, const std::string& protocol);
  std::vector<RibEntry> routes(const std::string& prefix) const;
  std::optional<RibEntry> best_route(const std::string& prefix) const;
  std::size_t size() const noexcept;
  std::vector<std::string> prefixes() const;

 private:
  std::map<std::string, std::vector<RibEntry>> by_prefix_;
};

/// Forwarding Information Base, programmed from the RIB's best routes.
class Fib {
 public:
  /// Recomputes all entries from `rib` best routes. Returns entries changed.
  std::size_t program_from(const Rib& rib);
  std::optional<FibEntry> lookup(const std::string& prefix) const;
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::map<std::string, FibEntry> entries_;
};

/// Management Information Base: named counters/gauges per managed object.
class Mib {
 public:
  void set_gauge(const std::string& object, const std::string& name, double value);
  void increment_counter(const std::string& object, const std::string& name, double by = 1.0);
  std::optional<double> get(const std::string& object, const std::string& name) const;
  /// All (name, value) pairs for one object.
  std::vector<std::pair<std::string, double>> object_entries(const std::string& object) const;
  std::size_t size() const noexcept;

 private:
  std::map<std::pair<std::string, std::string>, double> values_;
};

/// A periodic control loop with its operating timescale — the SMN runs
/// several (incident routing at minutes, TE at hours, planning at months).
struct ControlLoop {
  std::string name;
  util::SimTime period = util::kMinute;
  std::function<void(util::SimTime)> body;
  util::SimTime last_run = -1;
};

/// Schedules control loops against simulated time.
class ControlLoopRunner {
 public:
  void add_loop(ControlLoop loop);
  /// Runs every loop whose period has elapsed since its last run.
  /// Returns the number of loop bodies executed.
  std::size_t tick(util::SimTime now);
  std::size_t loop_count() const noexcept { return loops_.size(); }

 private:
  std::vector<ControlLoop> loops_;
};

}  // namespace smn::smn
