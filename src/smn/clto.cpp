#include "smn/clto.h"

#include <algorithm>

#include "util/string_util.h"

namespace smn::smn {

Clto::Clto(const depgraph::ServiceGraph& sg, FeedbackBus& bus, CltoConfig config)
    : sg_(sg),
      cdg_(depgraph::CdgCoarsener().coarsen(sg)),
      extractor_(sg, cdg_),
      bus_(bus),
      config_(config) {
  // Train the router on simulated incident history (the CLDS's incident
  // archive stands in for "rules learned from retrospective analysis", §6).
  incident::RoutingExperimentConfig experiment;
  experiment.num_incidents = config_.training_incidents;
  experiment.forest_trees = config_.forest_trees;
  experiment.forest_max_depth = config_.forest_max_depth;
  experiment.seed = config_.seed;

  const incident::IncidentDataset history = generate_incident_dataset(sg_, experiment);
  ml::Dataset data(extractor_.combined_dim(), extractor_.team_count());
  for (std::size_t i = 0; i < history.incidents.size(); ++i) {
    data.add(extractor_.combined_features(history.incidents[i]),
             history.incidents[i].root_team, history.groups[i]);
  }
  util::Rng split_rng(config_.seed ^ 0xC1D0ULL);
  const auto [train, holdout] = data.split_by_group(0.2, split_rng);

  ml::ForestConfig forest;
  forest.num_trees = config_.forest_trees;
  forest.tree.max_depth = config_.forest_max_depth;
  forest.tree.max_features = std::max<std::size_t>(6, extractor_.combined_dim() / 3);
  forest.seed = config_.seed;
  router_.fit(train, forest);
  holdout_accuracy_ = ml::accuracy(router_, holdout);
}

RoutingDecision Clto::route_incident(const incident::Incident& incident, util::SimTime now,
                                     std::uint64_t incident_id) {
  const std::vector<double> features = extractor_.combined_features(incident);
  const std::vector<double> proba = router_.predict_proba(features);
  RoutingDecision decision;
  decision.team = static_cast<std::size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
  decision.team_name = cdg_.team_name(static_cast<graph::NodeId>(decision.team));
  decision.confidence = proba[decision.team];

  Feedback assignment;
  assignment.kind = FeedbackKind::kIncidentAssignment;
  assignment.target = decision.team_name;
  assignment.priority = Priority::kHigh;
  assignment.subject = "incident assigned as probable root cause";
  assignment.detail = "CLTO routed via health metrics + CDG symptom explainability";
  assignment.issued_at = now;
  assignment.incident_id = incident_id;
  bus_.publish(assignment);

  for (std::size_t t = 0; t < incident.team_syndrome_binary.size(); ++t) {
    if (t == decision.team || incident.team_syndrome_binary[t] <= 0.0) continue;
    const std::string name = cdg_.team_name(static_cast<graph::NodeId>(t));
    decision.informed_teams.push_back(name);
    Feedback info;
    info.kind = FeedbackKind::kInformational;
    info.target = name;
    info.priority = Priority::kLow;
    info.subject = "symptoms observed; root cause assigned to " + decision.team_name;
    info.issued_at = now;
    info.incident_id = incident_id;
    bus_.publish(info);
  }
  return decision;
}

capacity::CapacityPlan Clto::plan_capacity(const topology::WanTopology& wan,
                                           const telemetry::BandwidthLog& log,
                                           util::SimTime now) {
  capacity::PlannerConfig planner_config = config_.planner;
  planner_config.cross_layer = true;  // the CLTO is cross-layer by definition
  const capacity::CapacityPlanner planner(wan, planner_config);
  const capacity::CapacityPlan plan = planner.plan(log);

  for (const capacity::LinkUpgrade& upgrade : plan.upgrades) {
    Feedback f;
    f.kind = FeedbackKind::kCapacityUpgrade;
    f.target = "network";
    f.priority = Priority::kMedium;
    f.subject = "upgrade " + upgrade.name;
    f.detail = "sustained overload " + util::format_double(100.0 * upgrade.overload_fraction, 1) +
               "% of epochs; " + util::format_double(upgrade.old_capacity_gbps, 0) + " -> " +
               util::format_double(upgrade.proposed_capacity_gbps, 0) + " Gbps" +
               (upgrade.fiber_limited ? " (clamped by fiber limit)" : "");
    f.issued_at = now;
    bus_.publish(f);
  }
  for (const std::string& link : plan.fiber_build_requests) {
    Feedback f;
    f.kind = FeedbackKind::kFiberBuildRequest;
    f.target = "external:fiber-provider";
    f.priority = Priority::kHigh;
    f.subject = "new fiber required on " + link;
    f.detail = "sustained overload but zero headroom in the ground";
    f.issued_at = now;
    bus_.publish(f);
  }
  return plan;
}

}  // namespace smn::smn
