#include "smn/data_lake.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

namespace smn::smn {

void DataLake::ingest(const std::string& dataset, Record record) {
  const DatasetInfo* info = catalog_.find(dataset);
  if (info == nullptr) {
    throw std::invalid_argument("DataLake::ingest: dataset not in catalog: " + dataset);
  }
  if (strict_schema_) {
    for (const auto& [field, _] : record.numeric) {
      if (!info->field(field).has_value()) {
        throw std::invalid_argument("DataLake::ingest: field '" + field +
                                    "' not in schema of '" + dataset + "'");
      }
    }
  }
  const std::unique_lock<std::shared_mutex> lock(lake_mutex_);
  stores_[dataset].records.push_back(std::move(record));
}

std::size_t DataLake::record_count(const std::string& dataset) const {
  const std::shared_lock<std::shared_mutex> lock(lake_mutex_);
  const auto it = stores_.find(dataset);
  return it == stores_.end() ? 0 : it->second.records.size();
}

std::vector<Record> DataLake::query(const std::string& dataset, const std::string& team,
                                    util::SimTime begin, util::SimTime end,
                                    const std::function<bool(const Record&)>& filter) const {
  const std::shared_lock<std::shared_mutex> lock(lake_mutex_);
  return query_locked(dataset, team, begin, end, filter);
}

std::vector<Record> DataLake::query_locked(const std::string& dataset, const std::string& team,
                                           util::SimTime begin, util::SimTime end,
                                           const std::function<bool(const Record&)>& filter) const {
  const DatasetInfo* info = catalog_.find(dataset);
  if (info == nullptr) {
    throw std::invalid_argument("DataLake::query: unknown dataset: " + dataset);
  }
  if (!info->readable_by(team)) {
    throw std::runtime_error("DataLake::query: team '" + team + "' may not read '" + dataset +
                             "'");
  }
  std::vector<Record> out;
  const auto it = stores_.find(dataset);
  if (it == stores_.end()) return out;
  for (const Record& r : it->second.records) {
    if (r.timestamp < begin || r.timestamp >= end) continue;
    if (filter && !filter(r)) continue;
    out.push_back(r);
  }
  return out;
}

std::vector<Record> DataLake::query_by_type(DataType type, const std::string& team,
                                            util::SimTime begin, util::SimTime end) const {
  std::vector<Record> out;
  const std::shared_lock<std::shared_mutex> lock(lake_mutex_);
  for (const DatasetInfo& info : catalog_.discover(type, team)) {
    auto records = query_locked(info.name, team, begin, end, {});
    for (Record& r : records) {
      r.tags["__dataset"] = info.name;
      out.push_back(std::move(r));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Record& a, const Record& b) { return a.timestamp < b.timestamp; });
  return out;
}

std::size_t DataLake::apply_retention(util::SimTime now, const RetentionPolicy& policy) {
  const std::unique_lock<std::shared_mutex> lock(lake_mutex_);
  std::size_t retired = 0;
  for (auto& [name, store] : stores_) {
    std::vector<Record> kept;
    std::map<std::pair<util::SimTime, std::string>, AgedSummary> windows;
    for (Record& r : store.records) {
      const util::SimTime age = now - r.timestamp;
      if (age <= policy.fine_horizon) {
        kept.push_back(std::move(r));
        continue;
      }
      // Aged record: incident-linked data survives raw; a sampled slice of
      // failure-free data survives as negative examples; the rest folds
      // into window summaries.
      if (r.incident_id != 0 && age <= policy.incident_horizon) {
        ++store.incident_retained;
        kept.push_back(std::move(r));
        continue;
      }
      if (r.incident_id == 0 && rng_.bernoulli(policy.failure_free_sample_rate)) {
        ++store.negative_samples;
        kept.push_back(std::move(r));
        continue;
      }
      ++retired;
      if (age <= policy.coarse_horizon) {
        const util::SimTime window_start =
            (r.timestamp / policy.coarse_window) * policy.coarse_window;
        for (const auto& [field, value] : r.numeric) {
          AgedSummary& s = windows[{window_start, field}];
          if (s.count == 0) {
            s.window_start = window_start;
            s.window_length = policy.coarse_window;
            s.field = field;
            s.max = value;
          }
          s.mean = (s.mean * static_cast<double>(s.count) + value) /
                   static_cast<double>(s.count + 1);
          s.max = std::max(s.max, value);
          ++s.count;
        }
      }
    }
    store.records = std::move(kept);
    for (auto& [_, summary] : windows) store.aged.push_back(std::move(summary));
    // Drop summaries past the coarse horizon.
    std::erase_if(store.aged, [&](const AgedSummary& s) {
      return now - (s.window_start + s.window_length) > policy.coarse_horizon;
    });
  }
  return retired;
}

std::vector<AgedSummary> DataLake::summaries(const std::string& dataset) const {
  const std::shared_lock<std::shared_mutex> lock(lake_mutex_);
  const auto it = stores_.find(dataset);
  return it == stores_.end() ? std::vector<AgedSummary>{} : it->second.aged;
}

LakeStats DataLake::stats() const {
  const std::shared_lock<std::shared_mutex> lock(lake_mutex_);
  LakeStats s;
  for (const auto& [_, store] : stores_) {
    s.raw_records += store.records.size();
    s.summaries += store.aged.size();
    for (const Record& r : store.records) s.raw_bytes += r.approximate_bytes();
    s.summary_bytes += store.aged.size() * 48;
    s.retained_incident_records += store.incident_retained;
    s.retained_negative_samples += store.negative_samples;
  }
  return s;
}

}  // namespace smn::smn
