#include "smn/aiops.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace smn::smn {

std::size_t TelemetryDenoiser::denoise(const std::string& dataset, Record& record) {
  std::size_t clamped = 0;
  for (auto& [field, value] : record.numeric) {
    auto& window = history_[{dataset, field}];
    if (window.size() >= 8) {
      util::RunningStats stats;
      for (const double v : window) stats.add(v);
      const double sigma = stats.stddev();
      if (sigma > 0.0 && std::abs(value - stats.mean()) > k_sigma_ * sigma) {
        // Replace with the window median.
        std::vector<double> sorted(window.begin(), window.end());
        std::sort(sorted.begin(), sorted.end());
        value = sorted[sorted.size() / 2];
        ++clamped;
        ++total_clamped_;
      }
    }
    window.push_back(value);
    if (window.size() > window_) window.pop_front();
  }
  return clamped;
}

std::vector<IncidentEnricher::SimilarIncident> IncidentEnricher::similar(
    const std::vector<double>& features, std::size_t k) const {
  std::vector<SimilarIncident> scored;
  scored.reserve(archive_.size());
  for (const ResolvedIncident& r : archive_) {
    if (r.features.size() != features.size()) continue;
    SimilarIncident s;
    s.id = r.id;
    s.similarity = util::cosine_similarity(features, r.features);
    s.resolved_team = r.resolved_team;
    s.fix_summary = r.fix_summary;
    scored.push_back(std::move(s));
  }
  std::sort(scored.begin(), scored.end(), [](const SimilarIncident& a, const SimilarIncident& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

Record structure_log(const logs::ParsedLog& parsed, const logs::TemplateMiner& miner) {
  Record record;
  record.timestamp = parsed.timestamp;
  record.tags["template_id"] = std::to_string(parsed.template_id);
  record.tags["template"] = miner.template_of(parsed.template_id).text();
  for (std::size_t i = 0; i < parsed.parameters.size(); ++i) {
    const std::string& value = parsed.parameters[i];
    const std::string key = "param" + std::to_string(i);
    // Numeric parameters become queryable fields; the rest stay tags.
    char* end = nullptr;
    const double numeric = std::strtod(value.c_str(), &end);
    if (end != nullptr && *end == '\0' && end != value.c_str()) {
      record.numeric[key] = numeric;
    } else {
      record.tags[key] = value;
    }
  }
  return record;
}

std::vector<MitigationEngine::Action> MitigationEngine::propose(
    const depgraph::ServiceGraph& sg, const incident::Incident& incident,
    double severity_threshold) const {
  using K = depgraph::ComponentKind;
  std::vector<Action> actions;
  for (graph::NodeId n = 0; n < sg.component_count(); ++n) {
    if (incident.severity[n] < severity_threshold) continue;
    const K kind = sg.component(n).kind;
    Action action;
    action.component = sg.component(n).name;
    switch (kind) {
      case K::kAppServer:
      case K::kCache:
      case K::kWorker:
      case K::kSearch:
      case K::kMonitor:
      case K::kQueue:
        action.action = "restart";
        break;
      case K::kWanLink:
      case K::kSwitch:
      case K::kFabric:
        action.action = "drain-traffic";
        break;
      case K::kDatabase:
      case K::kNoSqlStore:
        action.action = "failover";
        break;
      default:
        continue;  // hypervisors/storage/firewall/dns need humans
    }
    actions.push_back(std::move(action));
  }
  return actions;
}

void MitigationEngine::publish(const std::vector<Action>& actions, FeedbackBus& bus,
                               util::SimTime now, std::uint64_t incident_id) const {
  for (const Action& action : actions) {
    Feedback f;
    f.kind = FeedbackKind::kMitigation;
    f.target = "automation";
    f.priority = Priority::kHigh;
    f.subject = action.action + " " + action.component;
    f.issued_at = now;
    f.incident_id = incident_id;
    bus.publish(f);
  }
}

}  // namespace smn::smn
