#include "smn/catalog.h"

#include <stdexcept>

namespace smn::smn {

std::optional<FieldSchema> DatasetInfo::field(const std::string& field_name) const {
  for (const FieldSchema& f : schema) {
    if (f.name == field_name) return f;
  }
  return std::nullopt;
}

void DataCatalog::register_dataset(DatasetInfo info) {
  if (info.name.empty()) {
    throw std::invalid_argument("DataCatalog::register_dataset: empty name");
  }
  datasets_[info.name] = std::move(info);
}

const DatasetInfo* DataCatalog::find(const std::string& name) const {
  const auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : &it->second;
}

std::vector<DatasetInfo> DataCatalog::discover(DataType type, const std::string& team) const {
  std::vector<DatasetInfo> out;
  for (const auto& [_, info] : datasets_) {
    if (info.type == type && info.readable_by(team)) out.push_back(info);
  }
  return out;
}

std::vector<DatasetInfo> DataCatalog::owned_by(const std::string& team) const {
  std::vector<DatasetInfo> out;
  for (const auto& [_, info] : datasets_) {
    if (info.owner_team == team) out.push_back(info);
  }
  return out;
}

std::vector<std::string> DataCatalog::dataset_names() const {
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, _] : datasets_) names.push_back(name);
  return names;
}

}  // namespace smn::smn
