#include "smn/region_controller.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/contracts.h"
#include "util/interner.h"

namespace smn::smn {
namespace {

CoreConfig adopted_config(CoreConfig config) {
  config.bw_spill_steal_lock = true;
  return config;
}

}  // namespace

RegionController::RegionController(std::string region, const topology::WanTopology& wan,
                                   CoreConfig config)
    : region_(std::move(region)),
      wan_(wan),
      core_(std::move(config), "region/" + region_) {
  const std::vector<std::string> regions = wan_.regions();
  SMN_CHECK(std::find(regions.begin(), regions.end(), region_) != regions.end(),
            "RegionController's region is not a region of the managed WAN");
}

std::unique_ptr<RegionController> RegionController::adopt(std::string region,
                                                          const topology::WanTopology& wan,
                                                          CoreConfig config,
                                                          std::size_t* recovered_records) {
  SMN_CHECK(!config.bw_spill_dir.empty(),
            "adoption replays a spill directory; config.bw_spill_dir must be set");
  auto controller = std::make_unique<RegionController>(std::move(region), wan,
                                                       adopted_config(std::move(config)));
  const std::size_t recovered = controller->store().recover_spill_files();
  if (recovered_records != nullptr) *recovered_records = recovered;
  return controller;
}

bool RegionController::owns_pair(util::PairId pair) const {
  SMN_DCHECK(pair != util::kInvalidPairId, "ownership query on the invalid pair id");
  const std::lock_guard<std::mutex> lock(memo_mutex_);
  if (pair >= pair_owned_.size()) pair_owned_.resize(pair + 1, 0);
  if (pair_owned_[pair] == 0) {
    const std::string* region = wan_.region_of_dc(util::IdSpace::global().pair_src(pair));
    pair_owned_[pair] = (region != nullptr && *region == region_) ? 1 : 2;
  }
  return pair_owned_[pair] == 1;
}

std::size_t RegionController::ingest_bandwidth(const telemetry::BandwidthLog& log) {
  for (const util::PairId pair : log.pair_ids()) {
    SMN_CHECK(owns_pair(pair),
              "record routed to the wrong RegionController — a foreign pair here would "
              "double-count in the global merge");
  }
  return core_.ingest_bandwidth(log, mib_);
}

std::size_t RegionController::run_retention(util::SimTime now) {
  SMN_DCHECK(now >= 0, "retention anchored at a negative time");
  const std::size_t retired = core_.run_bw_retention(now);
  core_.publish_store_gauges(mib_, now);
  return retired;
}

CoarseExport RegionController::build_export(util::SimTime now) {
  const std::vector<telemetry::WindowSummary>& all = store().coarse().summaries();
  SMN_CHECK(export_cursor_ <= all.size(), "export cursor ran past the coarse log");

  CoarseExport exp;
  exp.region = region_;
  exp.sequence = next_sequence_++;
  exp.exported_at = now;

  // Dedup pair-name table over the not-yet-exported rows. Indexes are
  // assigned in row order, so the table — like the rows — is deterministic.
  const util::IdSpace& ids = util::IdSpace::global();
  std::unordered_map<util::PairId, std::uint32_t> table_index;
  exp.summaries.reserve(all.size() - export_cursor_);
  for (std::size_t row = export_cursor_; row < all.size(); ++row) {
    const telemetry::WindowSummary& s = all[row];
    auto [it, fresh] =
        table_index.emplace(s.pair, static_cast<std::uint32_t>(exp.pair_names.size()));
    if (fresh) exp.pair_names.emplace_back(ids.src_name(s.pair), ids.dst_name(s.pair));
    ExportSummary out;
    out.pair_index = it->second;
    out.window_start = s.window_start;
    out.window_length = s.window_length;
    out.sample_count = s.sample_count;
    out.mean = s.mean;
    out.p50 = s.p50;
    out.p95 = s.p95;
    out.min = s.min;
    out.max = s.max;
    exp.summaries.push_back(out);
  }
  export_cursor_ = all.size();

  const telemetry::LogStoreStats stats = store().stats();
  exp.gauges.push_back({"bw_fine_records", static_cast<double>(stats.fine_records)});
  exp.gauges.push_back({"bw_coarse_summaries", static_cast<double>(stats.coarse_summaries)});
  exp.gauges.push_back({"bw_store_bytes", static_cast<double>(stats.total_bytes())});
  exp.gauges.push_back({"bw_spilled_records", static_cast<double>(stats.spilled_records)});
  exp.gauges.push_back({"bw_spill_files", static_cast<double>(stats.spilled_files)});
  exp.drift = store().drift();
  return exp;
}

}  // namespace smn::smn
