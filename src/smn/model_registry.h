// The §6 "Network History store" endgame:
//
//   "A more speculative idea is to keep ML models and not logs over very
//    long periods to concisely capture how network patterns evolve with
//    time. These can be viewed as coarsenings in time."
//
// The registry stores period-stamped model snapshots with their training
// metadata. Raw incident logs can then age out entirely: a quarter's
// operational knowledge survives as a trained router a few kilobytes of
// trees wide, queryable by time. Drift between snapshots (an old model
// scored on new data) is the registry's own fidelity signal.
#pragma once

#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/random_forest.h"
#include "util/sim_time.h"

namespace smn::smn {

struct ModelSnapshot {
  util::SimTime trained_at = 0;
  std::string name;                ///< e.g. "incident-router"
  std::size_t training_examples = 0;
  double holdout_accuracy = 0.0;
  std::shared_ptr<const ml::RandomForest> model;
};

class ModelRegistry {
 public:
  /// Registers a snapshot (keyed by name + trained_at; re-registration at
  /// the same instant replaces).
  void register_model(ModelSnapshot snapshot);

  std::size_t size() const noexcept;

  /// Latest snapshot of `name` trained at or before `as_of`; the newest
  /// overall when `as_of` is omitted.
  std::optional<ModelSnapshot> latest(const std::string& name,
                                      util::SimTime as_of = std::numeric_limits<
                                          util::SimTime>::max()) const;

  /// All snapshots of `name` in training-time order.
  std::vector<ModelSnapshot> history(const std::string& name) const;

  /// Drift matrix entry: accuracy of the `trained_at` snapshot of `name`
  /// evaluated on `data` (typically a later period's incidents).
  /// std::nullopt when no such snapshot exists.
  std::optional<double> evaluate(const std::string& name, util::SimTime trained_at,
                                 const ml::Dataset& data) const;

  /// Retention: drops snapshots of every model older than `horizon`
  /// relative to `now`, always keeping at least `keep_min` newest per
  /// name. Returns snapshots dropped.
  std::size_t apply_retention(util::SimTime now, util::SimTime horizon,
                              std::size_t keep_min = 1);

 private:
  std::map<std::pair<std::string, util::SimTime>, ModelSnapshot> snapshots_;
};

}  // namespace smn::smn
