// Generic operational record for the CLDS data lake: timestamped, with
// numeric fields (telemetry values) and string tags (identifiers,
// free-text). Heterogeneous by design — §2 calls for "Mixed (Telemetry,
// Logs)" inputs, unlike SDN's structured-only inputs.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "util/sim_time.h"

namespace smn::smn {

enum class DataType { kAlert, kIncident, kLog, kTelemetry, kTopology, kDependency };

std::string data_type_name(DataType type);

struct Record {
  util::SimTime timestamp = 0;
  std::map<std::string, double> numeric;
  std::map<std::string, std::string> tags;
  /// Non-zero when this record relates to a tracked incident; retention
  /// keeps incident-linked data for a long period (§6).
  std::uint64_t incident_id = 0;

  std::optional<double> value(const std::string& key) const {
    const auto it = numeric.find(key);
    if (it == numeric.end()) return std::nullopt;
    return it->second;
  }

  std::optional<std::string> tag(const std::string& key) const {
    const auto it = tags.find(key);
    if (it == tags.end()) return std::nullopt;
    return it->second;
  }

  /// Approximate serialized footprint in bytes.
  std::size_t approximate_bytes() const noexcept;
};

}  // namespace smn::smn
