#include "smn/control_plane.h"

#include <algorithm>

namespace smn::smn {

void Rib::add_route(RibEntry entry) { by_prefix_[entry.prefix].push_back(std::move(entry)); }

void Rib::withdraw(const std::string& prefix, const std::string& protocol) {
  const auto it = by_prefix_.find(prefix);
  if (it == by_prefix_.end()) return;
  std::erase_if(it->second, [&](const RibEntry& e) { return e.protocol == protocol; });
  if (it->second.empty()) by_prefix_.erase(it);
}

std::vector<RibEntry> Rib::routes(const std::string& prefix) const {
  const auto it = by_prefix_.find(prefix);
  return it == by_prefix_.end() ? std::vector<RibEntry>{} : it->second;
}

std::optional<RibEntry> Rib::best_route(const std::string& prefix) const {
  const auto it = by_prefix_.find(prefix);
  if (it == by_prefix_.end() || it->second.empty()) return std::nullopt;
  return *std::min_element(it->second.begin(), it->second.end(),
                           [](const RibEntry& a, const RibEntry& b) {
                             if (a.metric != b.metric) return a.metric < b.metric;
                             return a.protocol < b.protocol;
                           });
}

std::size_t Rib::size() const noexcept {
  std::size_t total = 0;
  for (const auto& [_, routes] : by_prefix_) total += routes.size();
  return total;
}

std::vector<std::string> Rib::prefixes() const {
  std::vector<std::string> out;
  out.reserve(by_prefix_.size());
  for (const auto& [prefix, _] : by_prefix_) out.push_back(prefix);
  return out;
}

std::size_t Fib::program_from(const Rib& rib) {
  std::size_t changed = 0;
  std::map<std::string, FibEntry> next;
  for (const std::string& prefix : rib.prefixes()) {
    const auto best = rib.best_route(prefix);
    if (!best) continue;
    FibEntry entry{prefix, best->next_hop};
    const auto it = entries_.find(prefix);
    if (it == entries_.end() || it->second.next_hop != entry.next_hop) ++changed;
    next.emplace(prefix, std::move(entry));
  }
  for (const auto& [prefix, _] : entries_) {
    if (!next.contains(prefix)) ++changed;  // withdrawn
  }
  entries_ = std::move(next);
  return changed;
}

std::optional<FibEntry> Fib::lookup(const std::string& prefix) const {
  const auto it = entries_.find(prefix);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void Mib::set_gauge(const std::string& object, const std::string& name, double value) {
  values_[{object, name}] = value;
}

void Mib::increment_counter(const std::string& object, const std::string& name, double by) {
  values_[{object, name}] += by;
}

std::optional<double> Mib::get(const std::string& object, const std::string& name) const {
  const auto it = values_.find({object, name});
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::string, double>> Mib::object_entries(const std::string& object) const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [key, value] : values_) {
    if (key.first == object) out.emplace_back(key.second, value);
  }
  return out;
}

std::size_t Mib::size() const noexcept { return values_.size(); }

void ControlLoopRunner::add_loop(ControlLoop loop) { loops_.push_back(std::move(loop)); }

std::size_t ControlLoopRunner::tick(util::SimTime now) {
  std::size_t executed = 0;
  for (ControlLoop& loop : loops_) {
    if (loop.last_run < 0 || now - loop.last_run >= loop.period) {
      loop.body(now);
      loop.last_run = now;
      ++executed;
    }
  }
  return executed;
}

}  // namespace smn::smn
