// Admission control for the concurrent query surface (DESIGN.md §14): the
// thin layer between "millions of query clients" and the lock-free read
// paths underneath. The snapshot machinery makes individual reads cheap,
// but an unbounded reader fleet can still starve ingest of CPU and blow
// tail latency — so every served query passes a QueryBudget first:
//
//   * max_in_flight caps concurrent queries with one CAS (no lock, no
//     queue — over-budget queries are SHED immediately and counted, the
//     classic load-shedding posture of a control plane that must keep
//     ingesting under overload);
//   * per-query deadline: a query that finishes past its deadline still
//     returns its rows (they are correct — the snapshot does not rot) but
//     is counted as deadline-exceeded, the SLO signal the MIB exports;
//   * shed/admitted/completed counters feed the shed-rate gauge.
//
// serve_query() wraps smn::run_query over the DataLake; serve_fine_range()
// wraps the BandwidthLogStore snapshot read path. Both are the
// contract-surface entry points smn-lint R6 gates.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "smn/control_plane.h"
#include "smn/query.h"
#include "telemetry/log_store.h"

namespace smn::smn {

struct QueryBudgetConfig {
  /// Concurrent queries admitted; one more is shed, not queued.
  std::size_t max_in_flight = 64;
  /// Per-query latency SLO. Queries finishing later still return results
  /// but count as deadline-exceeded.
  std::chrono::microseconds deadline = std::chrono::milliseconds(50);
};

/// Lock-free admission gate. All state is atomics (internally synchronized
/// — no mutex to annotate); any number of threads may call admit()
/// concurrently.
class QueryBudget {
 public:
  explicit QueryBudget(QueryBudgetConfig config = {});

  /// RAII admission ticket: holds one in-flight slot until destruction,
  /// which also classifies the query against the deadline. A shed ticket
  /// (admitted() == false) holds nothing.
  class Admission {
   public:
    Admission(const Admission&) = delete;
    Admission& operator=(const Admission&) = delete;
    Admission(Admission&& other) noexcept
        : budget_(other.budget_), start_(other.start_) {
      other.budget_ = nullptr;
    }
    Admission& operator=(Admission&&) = delete;
    ~Admission();

    bool admitted() const noexcept { return budget_ != nullptr; }

    /// True once the query has outlived its deadline.
    bool over_deadline() const noexcept;

   private:
    friend class QueryBudget;
    explicit Admission(QueryBudget* budget) noexcept;

    QueryBudget* budget_;  ///< null = shed (or moved-from)
    std::chrono::steady_clock::time_point start_;
  };

  /// Admits the calling query or sheds it (bounded by max_in_flight).
  Admission admit();

  // --- Counters (lifetime, monotone) and gauges ---
  std::uint64_t admitted_total() const noexcept {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed_total() const noexcept { return shed_.load(std::memory_order_relaxed); }
  std::uint64_t completed_total() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t deadline_exceeded_total() const noexcept {
    return deadline_exceeded_.load(std::memory_order_relaxed);
  }
  std::size_t in_flight() const noexcept { return in_flight_.load(std::memory_order_relaxed); }

  /// Shed fraction of all admission attempts so far (0 when none).
  double shed_rate() const noexcept;

  const QueryBudgetConfig& config() const noexcept { return config_; }

  /// Publishes the admission gauges under `scope` ("query_*" names).
  void publish_gauges(Mib& mib, const std::string& scope) const;

 private:
  QueryBudgetConfig config_;
  /// CAS-bounded concurrent-query count; the only coordination point of
  /// the whole read path.
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
};

/// A served CLDS query: rows are valid only when `admitted`.
struct ServedQuery {
  std::vector<QueryRow> rows;
  bool admitted = false;
  bool deadline_exceeded = false;
};

/// A served snapshot fine-range read: log is valid only when `admitted`.
struct ServedFineRange {
  telemetry::BandwidthLog log;
  bool admitted = false;
  bool deadline_exceeded = false;
};

/// Budget-gated run_query over the lake as `team`. Shed queries return
/// immediately with admitted == false and no rows.
ServedQuery serve_query(const DataLake& lake, const std::string& team, const Query& query,
                        QueryBudget& budget);

/// Budget-gated snapshot read: acquires a fresh ReadView and merges
/// [begin, end) without blocking ingest (DESIGN.md §14). Shed reads return
/// immediately with admitted == false and an empty log.
ServedFineRange serve_fine_range(const telemetry::BandwidthLogStore& store,
                                 util::SimTime begin, util::SimTime end, QueryBudget& budget);

/// As above over an already-held view (amortizes view acquisition across
/// many queries; the budget still gates each read).
ServedFineRange serve_fine_range(const telemetry::BandwidthLogStore::ReadView& view,
                                 util::SimTime begin, util::SimTime end, QueryBudget& budget);

}  // namespace smn::smn
