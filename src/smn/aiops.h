// AIOps engine hooks (§6): "(1) denoise telemetry and logs on injection
// into the data lake, (2) enrich incidents with metadata such as similar
// incidents ... (5) take automatic mitigation steps such as rebooting an
// unhealthy micro-service".
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "incident/simulator.h"
#include "logs/template_miner.h"
#include "smn/feedback.h"
#include "smn/record.h"

namespace smn::smn {

/// Streaming denoiser: clamps numeric outliers against a rolling window of
/// recent values per (dataset, field). A value beyond `k` sigmas of the
/// window is replaced by the window median and counted.
class TelemetryDenoiser {
 public:
  explicit TelemetryDenoiser(std::size_t window = 64, double k_sigma = 4.0)
      : window_(window), k_sigma_(k_sigma) {}

  /// Denoises in place; returns the number of fields clamped.
  std::size_t denoise(const std::string& dataset, Record& record);

  std::size_t total_clamped() const noexcept { return total_clamped_; }

 private:
  std::size_t window_;
  double k_sigma_;
  std::size_t total_clamped_ = 0;
  std::map<std::pair<std::string, std::string>, std::deque<double>> history_;
};

/// Archive of resolved incidents for similarity-based enrichment.
class IncidentEnricher {
 public:
  struct ResolvedIncident {
    std::uint64_t id = 0;
    std::vector<double> features;
    std::string resolved_team;
    std::string fix_summary;
  };

  struct SimilarIncident {
    std::uint64_t id = 0;
    double similarity = 0.0;
    std::string resolved_team;
    std::string fix_summary;
  };

  void add_resolved(ResolvedIncident incident) { archive_.push_back(std::move(incident)); }
  std::size_t archive_size() const noexcept { return archive_.size(); }

  /// Top-k archive entries by cosine similarity of feature vectors.
  std::vector<SimilarIncident> similar(const std::vector<double>& features,
                                       std::size_t k) const;

 private:
  std::vector<ResolvedIncident> archive_;
};

/// §6 AIOps item 3 — "convert logs into structured inputs for the CLTO":
/// a parsed log line becomes a CLDS record. The template id becomes a tag
/// (the event type), numeric parameters become numeric fields
/// ("param0"...), and the rest become tags, so grouped queries over event
/// types and parameter statistics work out of the box.
Record structure_log(const logs::ParsedLog& parsed, const logs::TemplateMiner& miner);

/// Rule-based automatic mitigation (NetPilot-style coarse fixes): for
/// severely degraded restartable components, propose a restart; for
/// degraded WAN links, propose shifting traffic off them.
class MitigationEngine {
 public:
  struct Action {
    std::string component;
    std::string action;  ///< "restart", "drain-traffic", "failover"
  };

  /// Proposes mitigations for an incident. `severity_threshold` gates how
  /// aggressive automation is.
  std::vector<Action> propose(const depgraph::ServiceGraph& sg,
                              const incident::Incident& incident,
                              double severity_threshold = 0.6) const;

  /// Publishes the proposals as kMitigation feedback.
  void publish(const std::vector<Action>& actions, FeedbackBus& bus, util::SimTime now,
               std::uint64_t incident_id) const;
};

}  // namespace smn::smn
