// The CLDS (Cross-Layer Cross-Team Data Store) of Figure 1: a real-time
// data lake holding every team's alerts, incidents, logs and telemetry
// behind the global catalog, with retention policies that coarsen or drop
// aged data (§6 "Network History store").
//
// Retention implements the paper's ladder:
//   * records linked to incidents are retained for a long period
//     ("it can retain all data that are related to incidents");
//   * a small random sample of failure-free records is kept as negative
//     examples;
//   * everything else older than the fine horizon is *coarsened in time* —
//     per-window mean/max summaries replace raw records — and dropped
//     entirely past the coarse horizon.
#pragma once

#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "smn/catalog.h"
#include "smn/record.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace smn::smn {

struct RetentionPolicy {
  /// Records younger than this stay raw.
  util::SimTime fine_horizon = 7 * util::kDay;
  /// Window for summaries of records older than fine_horizon.
  util::SimTime coarse_window = util::kDay;
  /// Summaries older than this are dropped.
  util::SimTime coarse_horizon = 2 * util::kYear;
  /// Incident-linked records are kept raw up to this age.
  util::SimTime incident_horizon = 2 * util::kYear;
  /// Fraction of failure-free (non-incident) aged records kept raw as
  /// negative examples.
  double failure_free_sample_rate = 0.01;
};

/// Window summary produced by retention (per dataset, numeric field).
struct AgedSummary {
  util::SimTime window_start = 0;
  util::SimTime window_length = 0;
  std::string field;
  std::size_t count = 0;
  double mean = 0.0;
  double max = 0.0;
};

struct LakeStats {
  std::size_t raw_records = 0;
  std::size_t summaries = 0;
  std::size_t raw_bytes = 0;
  std::size_t summary_bytes = 0;
  std::size_t retained_incident_records = 0;
  std::size_t retained_negative_samples = 0;
};

/// One team's view of a query result; access is checked against the
/// catalog entry's reader set.
///
/// Thread-safety: the store is a reader/writer surface — queries from many
/// teams serve concurrently under a shared lock while ingest and retention
/// take it exclusively. The catalog and the strict-schema flag are
/// configure-phase state (set before serving starts) and stay outside the
/// lock.
class DataLake {
 public:
  explicit DataLake(DataCatalog catalog = {}, std::uint64_t seed = 99)
      : catalog_(std::move(catalog)), rng_(seed) {}

  /// Move is a configure-phase operation (populate a lake, then hand it to
  /// the serving phase): the source must be quiescent — a move cannot take
  /// both objects' locks coherently, so no checker can prove it safe.
  /// smn-lint: allow(lock-discipline)
  DataLake(DataLake&& other) noexcept SMN_NO_THREAD_SAFETY_ANALYSIS
      : catalog_(std::move(other.catalog_)),
        stores_(std::move(other.stores_)),
        rng_(std::move(other.rng_)),
        strict_schema_(other.strict_schema_) {}
  DataLake& operator=(DataLake&&) = delete;

  DataCatalog& catalog() noexcept { return catalog_; }
  const DataCatalog& catalog() const noexcept { return catalog_; }

  /// Ingests one record into `dataset`. The dataset must be registered in
  /// the catalog (uniform-schema discipline); throws std::invalid_argument
  /// otherwise. In strict-schema mode, numeric fields not declared in the
  /// dataset's schema are also rejected.
  void ingest(const std::string& dataset, Record record) SMN_EXCLUDES(lake_mutex_);

  /// Enables/disables strict schema validation on ingest (§6's "uniform
  /// schema" requirement enforced, not just documented). Off by default so
  /// exploratory datasets can evolve.
  void set_strict_schema(bool strict) noexcept { strict_schema_ = strict; }
  bool strict_schema() const noexcept { return strict_schema_; }

  /// Number of raw records in `dataset`.
  std::size_t record_count(const std::string& dataset) const SMN_EXCLUDES(lake_mutex_);

  /// Query raw records of `dataset` in [begin, end) as `team`. Throws
  /// std::invalid_argument for unknown datasets and std::runtime_error on
  /// ACL violation. `filter` (optional) keeps records it returns true for.
  std::vector<Record> query(const std::string& dataset, const std::string& team,
                            util::SimTime begin, util::SimTime end,
                            const std::function<bool(const Record&)>& filter = {}) const
      SMN_EXCLUDES(lake_mutex_);

  /// Cross-dataset correlation: all records of any dataset of `type`
  /// readable by `team` in [begin, end), tagged with their dataset name in
  /// tag "__dataset". The SMN's "sift across teams" primitive.
  std::vector<Record> query_by_type(DataType type, const std::string& team,
                                    util::SimTime begin, util::SimTime end) const
      SMN_EXCLUDES(lake_mutex_);

  /// Applies `policy` to every dataset at time `now`. Returns the number
  /// of raw records retired (summarized, sampled away, or dropped).
  std::size_t apply_retention(util::SimTime now, const RetentionPolicy& policy)
      SMN_EXCLUDES(lake_mutex_);

  /// Aged summaries of `dataset` (post-retention history).
  std::vector<AgedSummary> summaries(const std::string& dataset) const
      SMN_EXCLUDES(lake_mutex_);

  LakeStats stats() const SMN_EXCLUDES(lake_mutex_);

 private:
  struct DatasetStore {
    std::vector<Record> records;
    std::vector<AgedSummary> aged;
    std::size_t incident_retained = 0;
    std::size_t negative_samples = 0;
  };

  /// Body of query() — caller holds lake_mutex_ at least shared.
  /// query_by_type() runs many dataset scans under ONE shared acquisition
  /// (a nested shared_lock per scan could deadlock behind a queued writer).
  std::vector<Record> query_locked(const std::string& dataset, const std::string& team,
                                   util::SimTime begin, util::SimTime end,
                                   const std::function<bool(const Record&)>& filter) const
      SMN_REQUIRES_SHARED(lake_mutex_);

  /// Readers (query/stats/summaries) share, writers (ingest/retention) are
  /// exclusive.
  mutable std::shared_mutex lake_mutex_;
  DataCatalog catalog_;
  std::map<std::string, DatasetStore> stores_ SMN_GUARDED_BY(lake_mutex_);
  util::Rng rng_ SMN_GUARDED_BY(lake_mutex_);
  bool strict_schema_ = false;
};

}  // namespace smn::smn
