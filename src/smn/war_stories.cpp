#include "smn/war_stories.h"

#include <algorithm>
#include <map>
#include <set>

#include "capacity/capacity_planner.h"
#include "depgraph/reddit.h"
#include "incident/explainability.h"
#include "incident/simulator.h"
#include "smn/clto.h"
#include "smn/data_lake.h"
#include "smn/feedback.h"
#include "util/string_util.h"

namespace smn::smn {
namespace {

/// WS1 topology: A-B is overloaded *and* fiber-locked, B-C sees only a
/// transient spike, A-C is healthy.
topology::WanTopology make_ws1_wan() {
  topology::WanTopology wan;
  const auto a = wan.add_datacenter({"west/dcA", "west", "na", 0, 0});
  const auto b = wan.add_datacenter({"central/dcB", "central", "na", 10, 0});
  const auto c = wan.add_datacenter({"east/dcC", "east", "na", 20, 0});
  wan.add_link(a, b, /*capacity=*/100.0, /*fiber_limit=*/100.0, /*latency=*/10.0);  // locked
  wan.add_link(b, c, 100.0, 300.0, 10.0);
  wan.add_link(a, c, 100.0, 300.0, 25.0);
  return wan;
}

telemetry::BandwidthLog make_ws1_log() {
  telemetry::BandwidthLog log;
  // 48 epochs (4 hours): A->B sustained at 90 Gbps (90% > 80% threshold in
  // every epoch); B->C spikes to 95 for 3 epochs only (TE shifted traffic
  // briefly), otherwise 40.
  for (int e = 0; e < 48; ++e) {
    const util::SimTime t = e * util::kTelemetryEpoch;
    log.append({t, "west/dcA", "central/dcB", 90.0});
    log.append({t, "central/dcB", "east/dcC", (e >= 10 && e < 13) ? 95.0 : 40.0});
  }
  return log;
}

}  // namespace

WarStoryReport run_war_story_capacity_te(std::uint64_t) {
  WarStoryReport report;
  report.id = "WS1";
  report.title = "Capacity Planning and TE in the Dark";
  report.cost_unit = "wasted planning proposals";

  const topology::WanTopology wan = make_ws1_wan();
  const telemetry::BandwidthLog log = make_ws1_log();

  capacity::PlannerConfig naive_config;
  naive_config.cross_layer = false;
  const capacity::CapacityPlanner naive(wan, naive_config);
  const capacity::CapacityPlan naive_plan = naive.plan(log);

  capacity::PlannerConfig smn_config;
  smn_config.cross_layer = true;
  const capacity::CapacityPlanner smn(wan, smn_config);
  const capacity::CapacityPlan smn_plan = smn.plan(log);

  // Naive waste: proposals on fiber-locked links plus upgrades triggered by
  // the transient spike alone.
  std::size_t naive_transient = 0;
  for (const capacity::LinkUpgrade& u : naive_plan.upgrades) {
    if (u.overload_fraction < smn_config.sustained_fraction) ++naive_transient;
  }
  report.siloed_cost = static_cast<double>(naive_plan.wasted_proposals + naive_transient);
  report.smn_cost = 0.0;
  report.siloed_outcome =
      std::to_string(naive_plan.upgrades.size() + naive_plan.wasted_proposals) +
      " upgrades proposed, " + std::to_string(naive_plan.wasted_proposals) +
      " on fiber-locked links, " + std::to_string(naive_transient) +
      " on transient TE overloads";
  report.smn_outcome = std::to_string(smn_plan.upgrades.size()) +
                       " sustained+feasible upgrades; " +
                       std::to_string(smn_plan.fiber_build_requests.size()) +
                       " fiber-build request(s) routed to the external provider";
  report.smn_improved = report.smn_cost < report.siloed_cost &&
                        !smn_plan.fiber_build_requests.empty();
  return report;
}

WarStoryReport run_war_story_wavelength(std::uint64_t seed) {
  WarStoryReport report;
  report.id = "WS2";
  report.title = "Wavelength Modulation and Resilience";
  report.cost_unit = "hours to diagnosis";

  // CLDS with optical config logs, dependency records, and routing alerts.
  DataCatalog catalog;
  catalog.register_dataset({.name = "optical.config",
                            .owner_team = "optical",
                            .type = DataType::kLog,
                            .schema = {{"modulation_gbps", "Gbps", true}},
                            .description = "wavelength modulation changes"});
  catalog.register_dataset({.name = "routing.alerts",
                            .owner_team = "network",
                            .type = DataType::kAlert,
                            .schema = {{"flap", "count", true}},
                            .description = "logical link flap alerts"});
  catalog.register_dataset({.name = "cross-layer.deps",
                            .owner_team = "smn",
                            .type = DataType::kDependency,
                            .schema = {},
                            .description = "logical link -> wavelength mapping"});
  DataLake lake(catalog, seed);

  // Dependency: logical link ldn-nyc rides wavelength w7.
  {
    Record dep;
    dep.timestamp = 0;
    dep.tags = {{"from", "link:ldn-nyc"}, {"to", "wavelength:w7"}};
    lake.ingest("cross-layer.deps", dep);
  }
  // Day 3: optical team pushes w7 from 200G to 400G (aggressive).
  {
    Record config;
    config.timestamp = 3 * util::kDay;
    config.numeric = {{"modulation_gbps", 400.0}};
    config.tags = {{"object", "wavelength:w7"}, {"change", "modulation 200G->400G"}};
    lake.ingest("optical.config", config);
  }
  // Days 4-10: recurring flaps on the logical link.
  std::size_t flap_count = 0;
  for (util::SimTime t = 4 * util::kDay; t < 10 * util::kDay; t += 6 * util::kHour) {
    Record alert;
    alert.timestamp = t;
    alert.numeric = {{"flap", 1.0}};
    alert.tags = {{"object", "link:ldn-nyc"}};
    lake.ingest("routing.alerts", alert);
    ++flap_count;
  }

  // SMN diagnosis: one pass at day 10 — find the flapping object, follow
  // dependency records downward, look for recent config changes there.
  const util::SimTime now = 10 * util::kDay;
  std::size_t smn_steps = 0;
  std::string implicated;
  {
    const auto alerts = lake.query("routing.alerts", "smn", now - 7 * util::kDay, now);
    ++smn_steps;
    std::set<std::string> flapping;
    for (const Record& a : alerts) {
      if (const auto object = a.tag("object")) flapping.insert(*object);
    }
    const auto deps = lake.query("cross-layer.deps", "smn", 0, now);
    ++smn_steps;
    std::set<std::string> suspects;
    for (const Record& d : deps) {
      const auto from = d.tag("from");
      const auto to = d.tag("to");
      if (from && to && flapping.contains(*from)) suspects.insert(*to);
    }
    const auto configs = lake.query("optical.config", "smn", now - 14 * util::kDay, now);
    ++smn_steps;
    for (const Record& c : configs) {
      const auto object = c.tag("object");
      if (object && suspects.contains(*object)) {
        implicated = *c.tag("change");
        break;
      }
    }
  }

  // Siloed: the routing team cannot see optical.config (layer silo); it
  // exhausts its own layer's hypotheses, then coordinates across teams by
  // meetings — "it took weeks" in the paper's telling.
  const double siloed_hours = 2.0 * 7 * 24;  // two weeks
  const double smn_hours = 1.0;              // one CLTO loop tick

  report.siloed_cost = siloed_hours;
  report.smn_cost = smn_hours;
  report.siloed_outcome = "routing team alone: " + std::to_string(flap_count) +
                          " flaps investigated within L3 for ~2 weeks before the optical "
                          "change surfaced";
  report.smn_outcome = implicated.empty()
                           ? "FAILED to implicate the optical change"
                           : "implicated '" + implicated + "' in " +
                                 std::to_string(smn_steps) + " CLDS queries";
  report.smn_improved = !implicated.empty();
  return report;
}

WarStoryReport run_war_story_wan_flap(std::uint64_t seed) {
  WarStoryReport report;
  report.id = "WS3";
  report.title = "WAN link flaps impacting cluster traffic";
  report.cost_unit = "hours to correct assignment";

  const depgraph::ServiceGraph sg = depgraph::build_reddit_deployment();
  FeedbackBus bus;
  Clto clto(sg, bus);

  // Inject a WAN link flap; cluster probes fail as collateral.
  incident::IncidentSimulator simulator(sg);
  util::Rng rng(seed);
  const auto wan_east = *sg.find("wan-link-east");
  const incident::Fault fault{incident::FaultType::kLinkFlap, wan_east, 0};
  const incident::Incident inc = simulator.simulate(fault, rng);

  // Siloed first assignment: the team with the loudest symptoms (most
  // symptomatic components) — typically the cluster/application side, as in
  // the paper's story where the incident "was first (wrongly) routed to the
  // cluster team".
  const std::size_t siloed_team = static_cast<std::size_t>(
      std::max_element(inc.team_syndrome.begin(), inc.team_syndrome.end()) -
      inc.team_syndrome.begin());
  const bool siloed_correct = siloed_team == inc.root_team;

  // SMN routing through the trained CLTO.
  const RoutingDecision decision = clto.route_incident(inc, util::kHour, 42);
  const bool smn_correct = decision.team == inc.root_team;

  report.siloed_cost = siloed_correct ? 0.5 : 4.0;  // manual joint debugging: hours
  report.smn_cost = 0.05;                           // minutes
  report.siloed_outcome =
      "alert-count triage assigned team '" + sg.teams()[siloed_team] + "' " +
      (siloed_correct ? "(lucky hit)" : "(wrong; resolved manually after hours)");
  report.smn_outcome = "CLTO assigned '" + decision.team_name + "' (confidence " +
                       util::format_double(decision.confidence, 2) + "), informed " +
                       std::to_string(decision.informed_teams.size()) + " symptomatic team(s)";
  report.smn_improved = smn_correct && !siloed_correct;
  return report;
}

WarStoryReport run_war_story_alert_storm(std::uint64_t seed) {
  WarStoryReport report;
  report.id = "WS4";
  report.title = "Database service failure impacting downstream services";
  report.cost_unit = "incidents created";

  const depgraph::ServiceGraph sg = depgraph::build_reddit_deployment();
  const depgraph::Cdg cdg = depgraph::CdgCoarsener().coarsen(sg);

  // Inject a database fault; dependents raise alerts.
  incident::IncidentSimulator simulator(sg);
  util::Rng rng(seed);
  const auto pg = *sg.find("postgres-primary");
  const incident::Fault fault{incident::FaultType::kDiskPressure, pg, 1};
  const incident::Incident inc = simulator.simulate(fault, rng);

  // Alerts land in the CLDS, one dataset per team.
  DataCatalog catalog;
  for (const std::string& team : sg.teams()) {
    catalog.register_dataset({.name = "alerts." + team,
                              .owner_team = team,
                              .type = DataType::kAlert,
                              .schema = {{"severity", "fraction", true}},
                              .description = team + " service alerts"});
  }
  DataLake lake(catalog, seed);
  const util::SimTime now = util::kHour;
  for (graph::NodeId n = 0; n < sg.component_count(); ++n) {
    if (!inc.symptom[n]) continue;
    Record alert;
    alert.timestamp = now;
    alert.numeric = {{"severity", inc.severity[n]}};
    alert.tags = {{"component", sg.component(n).name}};
    lake.ingest("alerts." + sg.component(n).team, alert);
  }

  // Siloed: each team triages its own alert dataset in isolation; every
  // team with alerts opens its own incident, low priority because the
  // local impact is small.
  std::size_t siloed_incidents = 0;
  for (const std::string& team : sg.teams()) {
    if (lake.record_count("alerts." + team) > 0) ++siloed_incidents;
  }

  // SMN: the CLTO reads *all* alert datasets (cross-team discovery),
  // aggregates them into one syndrome, and routes a single high-priority
  // incident by symptom explainability.
  const auto all_alerts = lake.query_by_type(DataType::kAlert, "smn", 0, now + 1);
  std::vector<double> syndrome(sg.teams().size(), 0.0);
  for (const Record& alert : all_alerts) {
    const auto dataset = alert.tag("__dataset");
    if (!dataset) continue;
    const std::string team = dataset->substr(std::string("alerts.").size());
    for (std::size_t t = 0; t < sg.teams().size(); ++t) {
      if (sg.teams()[t] == team) syndrome[t] = 1.0;
    }
  }
  const std::size_t routed = incident::route_by_explainability(cdg, syndrome);
  const bool aggregate_over_threshold = all_alerts.size() >= 3;

  report.siloed_cost = static_cast<double>(siloed_incidents);
  report.smn_cost = 1.0;
  report.siloed_outcome = std::to_string(siloed_incidents) +
                          " independent low-priority incidents, redundant investigation";
  report.smn_outcome = "1 " + std::string(aggregate_over_threshold ? "HIGH" : "medium") +
                       "-priority incident routed to '" + sg.teams()[routed] + "' (" +
                       std::to_string(all_alerts.size()) + " alerts aggregated)";
  report.smn_improved = siloed_incidents > 1 && routed == inc.root_team;
  return report;
}

std::vector<WarStoryReport> run_all_war_stories(std::uint64_t seed) {
  return {run_war_story_capacity_te(seed + 1), run_war_story_wavelength(seed + 2),
          run_war_story_wan_flap(seed + 3), run_war_story_alert_storm(seed + 4)};
}

}  // namespace smn::smn
