// The federation wire format: what a RegionController sends up and the
// only thing the GlobalController ever ingests. The paper's coarsening map
// s = C(S) is the inter-controller protocol (§3) — fine telemetry stays in
// the region; the export carries the region's *coarse* state:
//
//   * the coarse bandwidth summaries sealed since the previous export
//     (per-pair window statistics, exactly what coarsen_older_than emits);
//   * the aggregated MIB gauges of the region's store;
//   * the drift summary vs the region's last TE baseline.
//
// Pairs travel as (src, dst) datacenter *names*: PairIds are process-local
// interning handles and never cross a controller boundary; the ingesting
// side re-interns.
//
// The binary layout reuses the spill-file conventions
// (telemetry/spill_file.h): little-endian, a fixed magic/version header,
// an FNV-1a 64 checksum over the payload, and `.tmp` + rename for file
// writes. parse_export() SMN_CHECK-fails on any structural violation — a
// corrupt export must never feed silent garbage into the global merge.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/log_store.h"
#include "util/sim_time.h"

namespace smn::smn {

/// One coarse window summary row on the wire; `pair_index` indexes
/// CoarseExport::pair_names.
struct ExportSummary {
  std::uint32_t pair_index = 0;
  util::SimTime window_start = 0;
  util::SimTime window_length = 0;
  std::uint64_t sample_count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One aggregated MIB gauge of the exporting region.
struct ExportGauge {
  std::string name;
  double value = 0.0;
};

struct CoarseExport {
  /// Format version this library writes (bumped on layout changes; readers
  /// reject anything else).
  static constexpr std::uint32_t kVersion = 1;

  std::string region;
  /// Per-region sequence number, strictly increasing from 1. The global
  /// controller rejects stale or replayed exports.
  std::uint64_t sequence = 0;
  util::SimTime exported_at = 0;
  /// Deduplicated (src name, dst name) table the summaries index into.
  std::vector<std::pair<std::string, std::string>> pair_names;
  std::vector<ExportSummary> summaries;
  std::vector<ExportGauge> gauges;
  telemetry::DriftReport drift;
};

/// Serializes to the versioned, checksummed little-endian wire format.
std::string serialize_export(const CoarseExport& exp);

/// Parses and validates `bytes`. SMN_CHECK-fails on bad magic, unsupported
/// version, truncation, checksum mismatch, or out-of-range pair indexes.
CoarseExport parse_export(std::string_view bytes);

/// Atomic file write (`.tmp` sibling + rename, like spill files). Throws
/// std::runtime_error on I/O failure.
void write_export_file(const std::string& path, const CoarseExport& exp);

/// Reads and parses an export file (same validation as parse_export).
CoarseExport read_export_file(const std::string& path);

}  // namespace smn::smn
