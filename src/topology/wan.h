// Planetary wide-area network model: datacenters grouped into regions and
// continents, connected by capacitated fiber links. This is the fine
// structure S of the §4 topology-based coarsening, and the substrate for
// traffic engineering and capacity planning.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "graph/contraction.h"
#include "graph/digraph.h"
#include "util/interner.h"

namespace smn::topology {

/// One datacenter. Names follow "<region>/dc<N>" (e.g. "us-east/dc3") so
/// region grouping is recoverable from the name alone, as in Listing 1's
/// "us-e1"-style identifiers.
struct Datacenter {
  std::string name;
  std::string region;
  std::string continent;
  double x = 0.0;  ///< abstract map coordinates; link latency ~ distance
  double y = 0.0;
};

/// One bidirectional WAN link (a pair of directed graph edges).
struct WanLink {
  graph::EdgeId forward = graph::kInvalidEdge;
  graph::EdgeId backward = graph::kInvalidEdge;
  double capacity_gbps = 0.0;
  /// Hard ceiling from fiber in the ground (§1 war story 1: some links
  /// "can't even be upgraded ... due to fiber constraints"). Upgrades may
  /// raise capacity only up to this limit.
  double fiber_limit_gbps = 0.0;
  bool subsea = false;  ///< inter-continent submarine cable

  bool upgradable() const noexcept { return capacity_gbps < fiber_limit_gbps; }
};

/// Immutable-topology WAN: links may change capacity (upgrades) but the
/// node/link structure is fixed after construction.
class WanTopology {
 public:
  /// Adds a datacenter; name must be unique. Returns its node id.
  graph::NodeId add_datacenter(Datacenter dc);

  /// Adds a bidirectional link between existing datacenters.
  /// `fiber_limit_gbps` < `capacity_gbps` is clamped up to capacity.
  std::size_t add_link(graph::NodeId a, graph::NodeId b, double capacity_gbps,
                       double fiber_limit_gbps, double latency_weight, bool subsea = false);

  const graph::Digraph& graph() const noexcept { return graph_; }

  std::size_t datacenter_count() const noexcept { return dcs_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }

  const Datacenter& datacenter(graph::NodeId id) const { return dcs_.at(id); }
  const WanLink& link(std::size_t index) const { return links_.at(index); }

  std::optional<graph::NodeId> find_datacenter(const std::string& name) const {
    return graph_.find_node(name);
  }

  /// Interned id (shared util::IdSpace) of datacenter `id`'s name.
  util::DcId dc_id(graph::NodeId id) const { return dc_ids_.at(id); }

  /// Node carrying interned id `dc`, if this WAN has it. Flat-vector lookup
  /// keyed by DcId — the id-native fast path for telemetry consumers.
  std::optional<graph::NodeId> node_of(util::DcId dc) const {
    if (dc >= node_of_dc_.size() || node_of_dc_[dc] == graph::kInvalidNode) return std::nullopt;
    return node_of_dc_[dc];
  }

  /// Region name of the datacenter carrying interned id `dc`, or nullptr
  /// when this WAN has no such datacenter. The federation's ownership test:
  /// a RegionController owns a pair iff its source resolves to the
  /// controller's region.
  const std::string* region_of_dc(util::DcId dc) const;

  /// Logical link index owning directed edge `e`.
  std::size_t link_of_edge(graph::EdgeId e) const { return link_of_edge_.at(e); }

  /// Raises the capacity of link `index` to `new_capacity_gbps`, clamped to
  /// the fiber limit. Returns the capacity actually installed.
  double upgrade_link(std::size_t index, double new_capacity_gbps);

  /// Partition of datacenters into regions (groups named by region).
  graph::Partition region_partition() const;

  /// Partition of datacenters into continents.
  graph::Partition continent_partition() const;

  /// All distinct region names in first-seen order.
  std::vector<std::string> regions() const;

  /// |S| measure: datacenters + links.
  std::size_t size_measure() const noexcept { return dcs_.size() + links_.size(); }

 private:
  graph::Digraph graph_;
  std::vector<Datacenter> dcs_;
  std::vector<util::DcId> dc_ids_;       ///< node id -> interned DcId
  std::vector<graph::NodeId> node_of_dc_;  ///< interned DcId -> node id
  std::vector<WanLink> links_;
  std::vector<std::size_t> link_of_edge_;
};

}  // namespace smn::topology
