// Topology-based coarsening (§4): grouping datacenters into "supernodes"
// so TE and capacity planning operate on a contracted graph. Supported
// granularities: regions (~30 supernodes for a 300-DC WAN), continents
// (the paper's degenerate 7-node example), or any target supernode count in
// between (regions merged by geographic proximity) — the knob the Pareto
// frontier experiment sweeps.
#pragma once

#include <cstddef>
#include <string>

#include "core/coarsening.h"
#include "graph/contraction.h"
#include "topology/wan.h"

namespace smn::topology {

/// Coarsener from a fine WAN to a supernode WAN. Also exposes the node
/// partition so bandwidth logs can be coarsened consistently with the
/// topology (telemetry::TopologyLogCoarsener reuses it).
class SupernodeCoarsener final : public core::Coarsener<WanTopology, WanTopology> {
 public:
  /// One supernode per region.
  static SupernodeCoarsener by_region();

  /// One supernode per continent (7 nodes at planetary scale).
  static SupernodeCoarsener by_continent();

  /// Approximately `target` supernodes: starts from regions and repeatedly
  /// merges the two geographically closest groups. `target` >= 1.
  static SupernodeCoarsener by_target_count(std::size_t target);

  std::string name() const override;

  /// Node partition induced on `wan` by this granularity.
  graph::Partition partition_for(const WanTopology& wan) const;

  /// Builds the coarse WAN: one datacenter per supernode placed at the
  /// group centroid; inter-group links merge (capacities and fiber limits
  /// add, latency takes the minimum, subsea if any member is subsea).
  WanTopology coarsen(const WanTopology& wan) const override;

  /// Same construction from an explicit partition, for callers that manage
  /// their own grouping (e.g. the coarse-TE pipeline, which must keep the
  /// log and topology coarsenings aligned).
  static WanTopology coarsen_with_partition(const WanTopology& wan,
                                            const graph::Partition& partition);

  std::size_t fine_size(const WanTopology& wan) const override { return wan.size_measure(); }
  std::size_t coarse_size(const WanTopology& wan) const override { return wan.size_measure(); }

 private:
  enum class Mode { kRegion, kContinent, kTargetCount };
  SupernodeCoarsener(Mode mode, std::size_t target) : mode_(mode), target_(target) {}

  Mode mode_;
  std::size_t target_ = 0;
};

}  // namespace smn::topology
