#include "topology/wan_generator.h"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace smn::topology {
namespace {

// Continent codes roughly matching cloud region naming.
constexpr std::array<const char*, 7> kContinentCodes = {"na", "eu", "as", "sa",
                                                        "af", "oc", "me"};

double distance(const Datacenter& a, const Datacenter& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

WanTopology generate_planetary_wan(const WanConfig& config) {
  if (config.continents < 1 || config.continents > static_cast<int>(kContinentCodes.size())) {
    throw std::invalid_argument("generate_planetary_wan: continents must be in [1, 7]");
  }
  if (config.regions_per_continent < 1 || config.dcs_per_region < 1) {
    throw std::invalid_argument("generate_planetary_wan: regions and DCs must be positive");
  }
  util::Rng rng(config.seed);
  WanTopology wan;

  struct RegionInfo {
    std::string name;
    int continent;
    std::vector<graph::NodeId> dcs;
    double cx = 0.0, cy = 0.0;
  };
  std::vector<RegionInfo> regions;

  // Lay continents on a wide circle, regions on a smaller circle around
  // their continent, DCs around their region. Distances then give
  // plausible latency ordering: intra-region < inter-region < subsea.
  for (int c = 0; c < config.continents; ++c) {
    const double cont_angle = 2.0 * 3.14159265358979 * c / config.continents;
    const double cont_x = 1000.0 * std::cos(cont_angle);
    const double cont_y = 1000.0 * std::sin(cont_angle);
    for (int r = 0; r < config.regions_per_continent; ++r) {
      const double reg_angle = 2.0 * 3.14159265358979 * r / config.regions_per_continent;
      RegionInfo region;
      region.continent = c;
      region.name = std::string(kContinentCodes[static_cast<std::size_t>(c)]) + "-r" +
                    std::to_string(r + 1);
      region.cx = cont_x + 180.0 * std::cos(reg_angle);
      region.cy = cont_y + 180.0 * std::sin(reg_angle);
      for (int d = 0; d < config.dcs_per_region; ++d) {
        const double dc_angle = 2.0 * 3.14159265358979 * d / config.dcs_per_region;
        Datacenter dc;
        dc.region = region.name;
        dc.continent = kContinentCodes[static_cast<std::size_t>(c)];
        dc.name = region.name + "/dc" + std::to_string(d + 1);
        dc.x = region.cx + 25.0 * std::cos(dc_angle) + rng.uniform(-3.0, 3.0);
        dc.y = region.cy + 25.0 * std::sin(dc_angle) + rng.uniform(-3.0, 3.0);
        region.dcs.push_back(wan.add_datacenter(dc));
      }
      regions.push_back(std::move(region));
    }
  }

  const auto fiber_limit = [&](double capacity) {
    // Some links are already at the fiber ceiling; others have headroom.
    if (rng.bernoulli(config.fiber_locked_fraction)) return capacity;
    return capacity * rng.uniform(1.5, 3.0);
  };

  const auto connect = [&](graph::NodeId a, graph::NodeId b, double capacity, bool subsea) {
    const double latency = std::max(1.0, distance(wan.datacenter(a), wan.datacenter(b)));
    const double jittered = capacity * rng.uniform(0.8, 1.2);
    wan.add_link(a, b, jittered, fiber_limit(jittered), latency, subsea);
  };

  // Intra-region: ring + random chords.
  for (const RegionInfo& region : regions) {
    const auto& dcs = region.dcs;
    if (dcs.size() == 1) continue;
    for (std::size_t i = 0; i < dcs.size(); ++i) {
      connect(dcs[i], dcs[(i + 1) % dcs.size()], config.intra_region_capacity_gbps, false);
    }
    for (std::size_t i = 0; i + 2 < dcs.size(); ++i) {
      for (std::size_t j = i + 2; j < dcs.size(); ++j) {
        const bool closes_ring = i == 0 && j + 1 == dcs.size();
        if (!closes_ring && rng.bernoulli(config.chord_probability)) {
          connect(dcs[i], dcs[j], config.intra_region_capacity_gbps * 0.5, false);
        }
      }
    }
  }

  // Inter-region within a continent: full mesh over region gateways, two
  // gateways per region pair for redundancy.
  for (std::size_t i = 0; i < regions.size(); ++i) {
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      if (regions[i].continent != regions[j].continent) continue;
      connect(regions[i].dcs[0], regions[j].dcs[0], config.inter_region_capacity_gbps, false);
      if (regions[i].dcs.size() > 1 && regions[j].dcs.size() > 1) {
        connect(regions[i].dcs[1], regions[j].dcs[1], config.inter_region_capacity_gbps * 0.7,
                false);
      }
    }
  }

  // Subsea cables: ring over continents plus one cross cable, landing at
  // the first region's gateway DCs.
  if (config.continents > 1) {
    std::vector<graph::NodeId> landings;
    for (int c = 0; c < config.continents; ++c) {
      landings.push_back(regions[static_cast<std::size_t>(c * config.regions_per_continent)].dcs[0]);
    }
    for (std::size_t c = 0; c < landings.size(); ++c) {
      // A two-continent "ring" would duplicate the single cable.
      if (landings.size() == 2 && c == 1) break;
      connect(landings[c], landings[(c + 1) % landings.size()], config.subsea_capacity_gbps, true);
    }
    if (landings.size() > 3) {
      connect(landings[0], landings[landings.size() / 2], config.subsea_capacity_gbps, true);
    }
  }

  return wan;
}

WanTopology generate_test_wan(std::uint64_t seed) {
  WanConfig config;
  config.continents = 2;
  config.regions_per_continent = 2;
  config.dcs_per_region = 3;
  config.seed = seed;
  return generate_planetary_wan(config);
}

}  // namespace smn::topology
