#include "topology/wan.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace smn::topology {

graph::NodeId WanTopology::add_datacenter(Datacenter dc) {
  const graph::NodeId id = graph_.add_node(dc.name);
  const util::DcId interned = util::IdSpace::global().dc(dc.name);
  dc_ids_.push_back(interned);
  if (interned >= node_of_dc_.size()) node_of_dc_.resize(interned + 1, graph::kInvalidNode);
  node_of_dc_[interned] = id;
  dcs_.push_back(std::move(dc));
  return id;
}

std::size_t WanTopology::add_link(graph::NodeId a, graph::NodeId b, double capacity_gbps,
                                  double fiber_limit_gbps, double latency_weight, bool subsea) {
  if (capacity_gbps <= 0.0) {
    throw std::invalid_argument("WanTopology::add_link: capacity must be positive");
  }
  const auto [fwd, bwd] = graph_.add_bidirectional_edge(a, b, latency_weight, capacity_gbps);
  WanLink link;
  link.forward = fwd;
  link.backward = bwd;
  link.capacity_gbps = capacity_gbps;
  link.fiber_limit_gbps = std::max(fiber_limit_gbps, capacity_gbps);
  link.subsea = subsea;
  links_.push_back(link);
  link_of_edge_.resize(graph_.edge_count());
  link_of_edge_[fwd] = links_.size() - 1;
  link_of_edge_[bwd] = links_.size() - 1;
  return links_.size() - 1;
}

double WanTopology::upgrade_link(std::size_t index, double new_capacity_gbps) {
  WanLink& link = links_.at(index);
  const double installed =
      std::clamp(new_capacity_gbps, link.capacity_gbps, link.fiber_limit_gbps);
  link.capacity_gbps = installed;
  graph_.mutable_edge(link.forward).capacity = installed;
  graph_.mutable_edge(link.backward).capacity = installed;
  return installed;
}

namespace {

graph::Partition partition_by(const WanTopology& wan,
                              const std::string& (*key)(const Datacenter&)) {
  graph::Partition partition;
  partition.group_of.resize(wan.datacenter_count());
  std::map<std::string, graph::NodeId> groups;
  for (graph::NodeId n = 0; n < wan.datacenter_count(); ++n) {
    const std::string& k = key(wan.datacenter(n));
    const auto it = groups.find(k);
    if (it == groups.end()) {
      const auto id = static_cast<graph::NodeId>(partition.group_names.size());
      groups.emplace(k, id);
      partition.group_names.push_back(k);
      partition.group_of[n] = id;
    } else {
      partition.group_of[n] = it->second;
    }
  }
  return partition;
}

const std::string& region_key(const Datacenter& dc) { return dc.region; }
const std::string& continent_key(const Datacenter& dc) { return dc.continent; }

}  // namespace

const std::string* WanTopology::region_of_dc(util::DcId dc) const {
  const auto node = node_of(dc);
  if (!node) return nullptr;
  return &dcs_[*node].region;
}

graph::Partition WanTopology::region_partition() const {
  return partition_by(*this, &region_key);
}

graph::Partition WanTopology::continent_partition() const {
  return partition_by(*this, &continent_key);
}

std::vector<std::string> WanTopology::regions() const {
  std::vector<std::string> names;
  for (const Datacenter& dc : dcs_) {
    if (std::find(names.begin(), names.end(), dc.region) == names.end()) {
      names.push_back(dc.region);
    }
  }
  return names;
}

}  // namespace smn::topology
