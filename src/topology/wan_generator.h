// Synthetic planetary WAN generator.
//
// §4 describes "a planet-scale wide-area network of roughly 300 datacenters"
// [26, 46] grouped into fewer than 30 high-traffic regions across 7
// continents. This generator reproduces that structure: a configurable
// number of continents, regions per continent, and datacenters per region,
// with dense intra-region fiber, sparser inter-region links, and subsea
// cables between continents. Substitution for the proprietary topologies of
// Azure/B4 (see DESIGN.md §3.2).
#pragma once

#include "topology/wan.h"
#include "util/rng.h"

namespace smn::topology {

struct WanConfig {
  int continents = 7;
  int regions_per_continent = 4;   ///< ~28 regions total at defaults
  int dcs_per_region = 11;         ///< ~308 datacenters at defaults
  double intra_region_capacity_gbps = 3200.0;
  double inter_region_capacity_gbps = 1600.0;
  double subsea_capacity_gbps = 800.0;
  /// Fraction of links already at their fiber limit (non-upgradable),
  /// driving war story 1.
  double fiber_locked_fraction = 0.2;
  /// Extra intra-region chord probability beyond the ring backbone.
  double chord_probability = 0.3;
  std::uint64_t seed = 42;
};

/// Generates a connected WAN per `config`. Deterministic given the seed.
///
/// Structure: datacenters in a region form a ring plus random chords;
/// each pair of regions within a continent is connected through two gateway
/// datacenters; each continent pair is connected by one or two subsea
/// cables. Link latency weights grow with coordinate distance.
WanTopology generate_planetary_wan(const WanConfig& config);

/// Convenience: small WAN for unit tests (2 continents, 2 regions each,
/// 3 DCs per region).
WanTopology generate_test_wan(std::uint64_t seed = 7);

}  // namespace smn::topology
