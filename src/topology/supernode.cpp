#include "topology/supernode.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

namespace smn::topology {

SupernodeCoarsener SupernodeCoarsener::by_region() {
  return SupernodeCoarsener(Mode::kRegion, 0);
}

SupernodeCoarsener SupernodeCoarsener::by_continent() {
  return SupernodeCoarsener(Mode::kContinent, 0);
}

SupernodeCoarsener SupernodeCoarsener::by_target_count(std::size_t target) {
  if (target == 0) {
    throw std::invalid_argument("SupernodeCoarsener: target must be >= 1");
  }
  return SupernodeCoarsener(Mode::kTargetCount, target);
}

std::string SupernodeCoarsener::name() const {
  switch (mode_) {
    case Mode::kRegion:
      return "supernode-region";
    case Mode::kContinent:
      return "supernode-continent";
    case Mode::kTargetCount:
      return "supernode-k" + std::to_string(target_);
  }
  return "supernode";
}

graph::Partition SupernodeCoarsener::partition_for(const WanTopology& wan) const {
  if (mode_ == Mode::kRegion) return wan.region_partition();
  if (mode_ == Mode::kContinent) return wan.continent_partition();

  // Target-count mode: agglomerative merging of region groups by centroid
  // distance until `target_` groups remain.
  graph::Partition partition = wan.region_partition();
  const std::size_t group_count = partition.group_count();
  if (target_ >= group_count) return partition;

  struct Group {
    double cx = 0.0, cy = 0.0;
    std::size_t members = 0;
    bool alive = true;
    std::string name;
  };
  std::vector<Group> groups(group_count);
  for (std::size_t gid = 0; gid < group_count; ++gid) {
    groups[gid].name = partition.group_names[gid];
  }
  for (graph::NodeId n = 0; n < wan.datacenter_count(); ++n) {
    Group& g = groups[partition.group_of[n]];
    g.cx += wan.datacenter(n).x;
    g.cy += wan.datacenter(n).y;
    ++g.members;
  }
  for (Group& g : groups) {
    if (g.members > 0) {
      g.cx /= static_cast<double>(g.members);
      g.cy /= static_cast<double>(g.members);
    }
  }

  // Union-find over groups.
  std::vector<std::size_t> parent(group_count);
  for (std::size_t i = 0; i < group_count; ++i) parent[i] = i;
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  std::size_t alive = group_count;
  while (alive > target_) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_a = 0, best_b = 0;
    for (std::size_t a = 0; a < group_count; ++a) {
      if (!groups[a].alive) continue;
      for (std::size_t b = a + 1; b < group_count; ++b) {
        if (!groups[b].alive) continue;
        const double dx = groups[a].cx - groups[b].cx;
        const double dy = groups[a].cy - groups[b].cy;
        const double d = dx * dx + dy * dy;
        if (d < best) {
          best = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    // Merge b into a: weighted centroid, union in the forest.
    Group& ga = groups[best_a];
    Group& gb = groups[best_b];
    const double total = static_cast<double>(ga.members + gb.members);
    ga.cx = (ga.cx * static_cast<double>(ga.members) + gb.cx * static_cast<double>(gb.members)) / total;
    ga.cy = (ga.cy * static_cast<double>(ga.members) + gb.cy * static_cast<double>(gb.members)) / total;
    ga.members += gb.members;
    gb.alive = false;
    parent[find(best_b)] = find(best_a);
    --alive;
  }

  // Re-number surviving roots densely and rebuild the partition.
  graph::Partition merged;
  merged.group_of.resize(wan.datacenter_count());
  std::map<std::size_t, graph::NodeId> root_to_id;
  for (std::size_t gid = 0; gid < group_count; ++gid) {
    const std::size_t root = find(gid);
    if (!root_to_id.contains(root)) {
      const auto id = static_cast<graph::NodeId>(merged.group_names.size());
      root_to_id.emplace(root, id);
      merged.group_names.push_back("super-" + std::to_string(id + 1) + "(" +
                                   groups[root].name + ")");
    }
  }
  for (graph::NodeId n = 0; n < wan.datacenter_count(); ++n) {
    merged.group_of[n] = root_to_id.at(find(partition.group_of[n]));
  }
  return merged;
}

WanTopology SupernodeCoarsener::coarsen(const WanTopology& wan) const {
  return coarsen_with_partition(wan, partition_for(wan));
}

WanTopology SupernodeCoarsener::coarsen_with_partition(const WanTopology& wan,
                                                       const graph::Partition& partition) {
  if (!partition.valid_for(wan.graph())) {
    throw std::invalid_argument("coarsen_with_partition: partition does not cover the WAN");
  }
  WanTopology coarse;

  // One synthetic "datacenter" per supernode at the member centroid; the
  // dominant member continent labels the group.
  struct Accum {
    double cx = 0.0, cy = 0.0;
    std::size_t members = 0;
    std::map<std::string, std::size_t> continents;
  };
  std::vector<Accum> accums(partition.group_count());
  for (graph::NodeId n = 0; n < wan.datacenter_count(); ++n) {
    Accum& a = accums[partition.group_of[n]];
    const Datacenter& dc = wan.datacenter(n);
    a.cx += dc.x;
    a.cy += dc.y;
    ++a.members;
    ++a.continents[dc.continent];
  }
  for (std::size_t gid = 0; gid < partition.group_count(); ++gid) {
    const Accum& a = accums[gid];
    Datacenter dc;
    dc.name = partition.group_names[gid];
    dc.region = partition.group_names[gid];
    dc.x = a.members ? a.cx / static_cast<double>(a.members) : 0.0;
    dc.y = a.members ? a.cy / static_cast<double>(a.members) : 0.0;
    std::size_t best = 0;
    for (const auto& [continent, count] : a.continents) {
      if (count > best) {
        best = count;
        dc.continent = continent;
      }
    }
    coarse.add_datacenter(dc);
  }

  // Merge links crossing group boundaries.
  struct LinkAccum {
    double capacity = 0.0;
    double fiber_limit = 0.0;
    double latency = std::numeric_limits<double>::infinity();
    bool subsea = false;
  };
  std::map<std::pair<graph::NodeId, graph::NodeId>, LinkAccum> merged;
  for (std::size_t li = 0; li < wan.link_count(); ++li) {
    const WanLink& link = wan.link(li);
    const graph::Edge& fwd = wan.graph().edge(link.forward);
    graph::NodeId a = partition.group_of[fwd.from];
    graph::NodeId b = partition.group_of[fwd.to];
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    LinkAccum& acc = merged[{a, b}];
    acc.capacity += link.capacity_gbps;
    acc.fiber_limit += link.fiber_limit_gbps;
    acc.latency = std::min(acc.latency, fwd.weight);
    acc.subsea = acc.subsea || link.subsea;
  }
  for (const auto& [key, acc] : merged) {
    coarse.add_link(key.first, key.second, acc.capacity, acc.fiber_limit, acc.latency,
                    acc.subsea);
  }
  return coarse;
}

}  // namespace smn::topology
