// Fine-grained service dependency graphs (§5): nodes are service
// components (load balancers, app servers, databases, hypervisors,
// switches, ...), and an edge x -> y means "x depends on y at runtime".
// Fine graphs are what tools like Sherlock [28] extract; the paper's point
// is that they are hard to maintain cloud-wide, whereas the team-level
// coarsening (cdg.h) is easy to sketch and maintain.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.h"

namespace smn::depgraph {

/// Broad component classes; they drive which fault types can hit a
/// component and which health metrics it exposes.
enum class ComponentKind {
  kLoadBalancer,
  kAppServer,
  kCache,
  kDatabase,
  kNoSqlStore,
  kQueue,
  kWorker,
  kSearch,
  kDns,
  kFirewall,
  kSwitch,
  kFabric,
  kWanLink,
  kHypervisor,
  kStorage,
  kMonitor,
};

/// OSI-ish layer for cross-layer reasoning (L1 physical .. L7 application).
enum class Layer { kL1Physical = 1, kL3Network = 3, kL4Transport = 4, kL7Application = 7 };

struct ServiceComponent {
  std::string name;
  ComponentKind kind = ComponentKind::kAppServer;
  std::string team;
  Layer layer = Layer::kL7Application;
};

/// Dependency graph over service components, with team metadata used by
/// the CDG coarsener.
class ServiceGraph {
 public:
  /// Adds a component; name must be unique.
  graph::NodeId add_component(ServiceComponent component);

  /// Declares "dependent depends on dependency".
  void add_dependency(graph::NodeId dependent, graph::NodeId dependency);

  /// Name-based convenience; throws std::invalid_argument on unknown names.
  void add_dependency(const std::string& dependent, const std::string& dependency);

  const graph::Digraph& graph() const noexcept { return graph_; }
  std::size_t component_count() const noexcept { return components_.size(); }
  const ServiceComponent& component(graph::NodeId id) const { return components_.at(id); }

  std::optional<graph::NodeId> find(const std::string& name) const {
    return graph_.find_node(name);
  }

  /// Distinct team names in first-seen order.
  const std::vector<std::string>& teams() const noexcept { return teams_; }

  /// Index of a component's team within teams().
  std::size_t team_index(graph::NodeId id) const;

  /// Components belonging to `team`.
  std::vector<graph::NodeId> components_of_team(const std::string& team) const;

  /// |S| measure: components + dependency edges.
  std::size_t size_measure() const noexcept {
    return components_.size() + graph_.edge_count();
  }

 private:
  graph::Digraph graph_;
  std::vector<ServiceComponent> components_;
  std::vector<std::string> teams_;
  std::vector<std::size_t> team_of_;  ///< component -> index into teams_
};

}  // namespace smn::depgraph
