// The simulated Reddit deployment of §5 / Figure 3.
//
// The paper runs 560 fine-grained faults from the Revelio Incident Dataset
// against the open-source Reddit application on the Revelio testbed, with
// 8 teams "including Network, Application and Infrastructure". Neither the
// dataset nor the testbed is public, so this builder reconstructs the
// deployment from the open-source Reddit architecture (HAProxy, r2 app
// servers, PostgreSQL, Cassandra, memcached/mcrouter, RabbitMQ + workers,
// Solr search) plus the infrastructure layers the war stories need
// (hypervisors, ToR switches, cluster fabric, WAN links, firewall, DNS,
// monitoring) — see DESIGN.md Substitution 1.
#pragma once

#include "depgraph/service_graph.h"

namespace smn::depgraph {

/// Team names used by the Reddit deployment, in a stable order.
inline constexpr const char* kTeamNetwork = "network";
inline constexpr const char* kTeamApplication = "application";
inline constexpr const char* kTeamInfrastructure = "infrastructure";
inline constexpr const char* kTeamDatabase = "database";
inline constexpr const char* kTeamNoSql = "nosql";
inline constexpr const char* kTeamCaching = "caching";
inline constexpr const char* kTeamMessaging = "messaging";
inline constexpr const char* kTeamMonitoring = "monitoring";

/// Builds the ~45-component Reddit-like deployment with 8 teams.
ServiceGraph build_reddit_deployment();

/// A churned variant of the deployment (§2's maintainability challenge:
/// "What is hard is generating and maintaining the graph because of legacy
/// code and churn"): the same logical architecture, but replica counts
/// (app servers, Cassandra nodes, memcached shards, hypervisors) and all
/// service-to-hypervisor placements vary with the seed. Fine-grained
/// graphs of different seeds differ substantially; their team-level CDGs
/// are identical — the stability that makes the CDG maintainable.
ServiceGraph build_reddit_deployment_churned(std::uint64_t seed);

/// Jaccard distance (1 - |A∩B| / |A∪B|) between the named dependency-edge
/// sets of two service graphs — the fine-grained maintenance burden churn
/// creates.
double dependency_edit_distance(const ServiceGraph& a, const ServiceGraph& b);

}  // namespace smn::depgraph
