#include "depgraph/reddit.h"

#include <set>
#include <string>

#include "util/rng.h"

namespace smn::depgraph {

ServiceGraph build_reddit_deployment() {
  ServiceGraph sg;
  using K = ComponentKind;
  using L = Layer;

  const auto add = [&sg](const char* name, K kind, const char* team, L layer) {
    sg.add_component(ServiceComponent{name, kind, team, layer});
  };

  // --- network team (L1/L3) ---
  add("wan-link-east", K::kWanLink, kTeamNetwork, L::kL1Physical);
  add("wan-link-west", K::kWanLink, kTeamNetwork, L::kL1Physical);
  add("cluster-fabric", K::kFabric, kTeamNetwork, L::kL3Network);
  add("tor-1", K::kSwitch, kTeamNetwork, L::kL3Network);
  add("tor-2", K::kSwitch, kTeamNetwork, L::kL3Network);
  add("tor-3", K::kSwitch, kTeamNetwork, L::kL3Network);
  add("firewall", K::kFirewall, kTeamNetwork, L::kL3Network);
  add("dns", K::kDns, kTeamNetwork, L::kL7Application);

  // --- infrastructure team (hypervisors + storage) ---
  add("hypervisor-1", K::kHypervisor, kTeamInfrastructure, L::kL1Physical);
  add("hypervisor-2", K::kHypervisor, kTeamInfrastructure, L::kL1Physical);
  add("hypervisor-3", K::kHypervisor, kTeamInfrastructure, L::kL1Physical);
  add("hypervisor-4", K::kHypervisor, kTeamInfrastructure, L::kL1Physical);
  add("hypervisor-5", K::kHypervisor, kTeamInfrastructure, L::kL1Physical);
  add("hypervisor-6", K::kHypervisor, kTeamInfrastructure, L::kL1Physical);
  add("storage-array", K::kStorage, kTeamInfrastructure, L::kL1Physical);

  // --- application team (the Reddit r2 stack) ---
  add("haproxy-1", K::kLoadBalancer, kTeamApplication, L::kL7Application);
  add("haproxy-2", K::kLoadBalancer, kTeamApplication, L::kL7Application);
  add("app-r2-1", K::kAppServer, kTeamApplication, L::kL7Application);
  add("app-r2-2", K::kAppServer, kTeamApplication, L::kL7Application);
  add("app-r2-3", K::kAppServer, kTeamApplication, L::kL7Application);
  add("app-r2-4", K::kAppServer, kTeamApplication, L::kL7Application);
  add("listing-svc", K::kAppServer, kTeamApplication, L::kL7Application);
  add("search-solr", K::kSearch, kTeamApplication, L::kL7Application);
  add("thumbnail-svc", K::kAppServer, kTeamApplication, L::kL7Application);

  // --- database team (PostgreSQL "things") ---
  add("postgres-primary", K::kDatabase, kTeamDatabase, L::kL7Application);
  add("postgres-replica", K::kDatabase, kTeamDatabase, L::kL7Application);

  // --- nosql team (Cassandra ring) ---
  add("cassandra-1", K::kNoSqlStore, kTeamNoSql, L::kL7Application);
  add("cassandra-2", K::kNoSqlStore, kTeamNoSql, L::kL7Application);
  add("cassandra-3", K::kNoSqlStore, kTeamNoSql, L::kL7Application);

  // --- caching team (memcached + mcrouter) ---
  add("mcrouter", K::kCache, kTeamCaching, L::kL7Application);
  add("memcached-1", K::kCache, kTeamCaching, L::kL7Application);
  add("memcached-2", K::kCache, kTeamCaching, L::kL7Application);

  // --- messaging team (RabbitMQ + queue consumers) ---
  add("rabbitmq", K::kQueue, kTeamMessaging, L::kL7Application);
  add("vote-worker", K::kWorker, kTeamMessaging, L::kL7Application);
  add("comment-worker", K::kWorker, kTeamMessaging, L::kL7Application);

  // --- monitoring team (Pingmesh-style probes + health pollers) ---
  add("monitor-agent", K::kMonitor, kTeamMonitoring, L::kL7Application);
  add("probe-cluster-a", K::kMonitor, kTeamMonitoring, L::kL4Transport);
  add("probe-cluster-b", K::kMonitor, kTeamMonitoring, L::kL4Transport);

  const auto dep = [&sg](const char* x, const char* y) { sg.add_dependency(x, y); };

  // Network internals: fabric rides the WAN for inter-cluster reach; ToRs
  // ride the fabric; DNS and firewall sit on the fabric.
  dep("cluster-fabric", "wan-link-east");
  dep("cluster-fabric", "wan-link-west");
  dep("tor-1", "cluster-fabric");
  dep("tor-2", "cluster-fabric");
  dep("tor-3", "cluster-fabric");
  dep("dns", "cluster-fabric");
  dep("firewall", "cluster-fabric");

  // Hypervisors attach to ToR switches and the shared storage array.
  dep("hypervisor-1", "tor-1");
  dep("hypervisor-2", "tor-1");
  dep("hypervisor-3", "tor-2");
  dep("hypervisor-4", "tor-2");
  dep("hypervisor-5", "tor-3");
  dep("hypervisor-6", "tor-3");
  dep("hypervisor-1", "storage-array");
  dep("hypervisor-3", "storage-array");
  dep("hypervisor-5", "storage-array");

  // Service placement: every service depends on its host hypervisor.
  dep("haproxy-1", "hypervisor-1");
  dep("haproxy-2", "hypervisor-4");
  dep("app-r2-1", "hypervisor-1");
  dep("app-r2-2", "hypervisor-2");
  dep("app-r2-3", "hypervisor-3");
  dep("app-r2-4", "hypervisor-4");
  dep("listing-svc", "hypervisor-2");
  dep("search-solr", "hypervisor-5");
  dep("thumbnail-svc", "hypervisor-6");
  dep("postgres-primary", "hypervisor-3");
  dep("postgres-replica", "hypervisor-6");
  dep("cassandra-1", "hypervisor-2");
  dep("cassandra-2", "hypervisor-4");
  dep("cassandra-3", "hypervisor-5");
  dep("mcrouter", "hypervisor-1");
  dep("memcached-1", "hypervisor-5");
  dep("memcached-2", "hypervisor-6");
  dep("rabbitmq", "hypervisor-2");
  dep("vote-worker", "hypervisor-3");
  dep("comment-worker", "hypervisor-5");
  dep("monitor-agent", "hypervisor-6");

  // Application-level dependencies (the Figure-3 structure).
  dep("haproxy-1", "app-r2-1");
  dep("haproxy-1", "app-r2-2");
  dep("haproxy-2", "app-r2-3");
  dep("haproxy-2", "app-r2-4");
  dep("haproxy-1", "dns");
  dep("haproxy-2", "dns");
  dep("haproxy-1", "firewall");
  dep("haproxy-2", "firewall");
  for (const char* app : {"app-r2-1", "app-r2-2", "app-r2-3", "app-r2-4"}) {
    dep(app, "postgres-primary");
    dep(app, "mcrouter");
    dep(app, "cassandra-1");
    dep(app, "cassandra-2");
    dep(app, "rabbitmq");
    dep(app, "listing-svc");
  }
  dep("app-r2-1", "search-solr");
  dep("app-r2-3", "search-solr");
  dep("app-r2-2", "thumbnail-svc");
  dep("listing-svc", "cassandra-3");
  dep("listing-svc", "mcrouter");
  dep("search-solr", "postgres-replica");
  dep("thumbnail-svc", "storage-array");
  dep("postgres-replica", "postgres-primary");
  dep("mcrouter", "memcached-1");
  dep("mcrouter", "memcached-2");
  dep("vote-worker", "rabbitmq");
  dep("comment-worker", "rabbitmq");
  dep("vote-worker", "postgres-primary");
  dep("comment-worker", "cassandra-3");

  // Monitoring: pairwise reachability probes between app server clusters
  // cross the cluster fabric and the WAN (war story 3: "most failing
  // cluster probes depend on the wide area"); the monitoring agent polls
  // application health checks.
  dep("probe-cluster-a", "cluster-fabric");
  dep("probe-cluster-a", "wan-link-east");
  dep("probe-cluster-b", "cluster-fabric");
  dep("probe-cluster-b", "wan-link-west");
  dep("monitor-agent", "probe-cluster-a");
  dep("monitor-agent", "probe-cluster-b");
  dep("monitor-agent", "haproxy-1");
  dep("monitor-agent", "haproxy-2");

  return sg;
}

ServiceGraph build_reddit_deployment_churned(std::uint64_t seed) {
  util::Rng rng(seed);
  ServiceGraph sg;
  using K = ComponentKind;
  using L = Layer;

  const auto add = [&sg](const std::string& name, K kind, const char* team, L layer) {
    sg.add_component(ServiceComponent{name, kind, team, layer});
  };
  const auto dep = [&sg](const std::string& x, const std::string& y) {
    sg.add_dependency(x, y);
  };

  // Fixed network fabric.
  add("wan-link-east", K::kWanLink, kTeamNetwork, L::kL1Physical);
  add("wan-link-west", K::kWanLink, kTeamNetwork, L::kL1Physical);
  add("cluster-fabric", K::kFabric, kTeamNetwork, L::kL3Network);
  const int tors = 3;
  for (int i = 1; i <= tors; ++i) {
    add("tor-" + std::to_string(i), K::kSwitch, kTeamNetwork, L::kL3Network);
  }
  add("firewall", K::kFirewall, kTeamNetwork, L::kL3Network);
  add("dns", K::kDns, kTeamNetwork, L::kL7Application);
  dep("cluster-fabric", "wan-link-east");
  dep("cluster-fabric", "wan-link-west");
  for (int i = 1; i <= tors; ++i) dep("tor-" + std::to_string(i), "cluster-fabric");
  dep("dns", "cluster-fabric");
  dep("firewall", "cluster-fabric");

  // Churned infrastructure: 5-7 hypervisors on random ToRs.
  const int hypervisors = static_cast<int>(rng.uniform_int(5, 7));
  add("storage-array", K::kStorage, kTeamInfrastructure, L::kL1Physical);
  std::vector<std::string> hv_names;
  for (int i = 1; i <= hypervisors; ++i) {
    const std::string name = "hypervisor-" + std::to_string(i);
    add(name, K::kHypervisor, kTeamInfrastructure, L::kL1Physical);
    dep(name, "tor-" + std::to_string(rng.uniform_int(1, tors)));
    if (rng.bernoulli(0.6)) dep(name, "storage-array");
    hv_names.push_back(name);
  }
  const auto place = [&](const std::string& service) {
    dep(service, hv_names[static_cast<std::size_t>(
                     rng.uniform_int(0, static_cast<std::int64_t>(hv_names.size()) - 1))]);
  };

  // Churned application tier: 2 load balancers, 3-5 app servers.
  const int apps = static_cast<int>(rng.uniform_int(3, 5));
  add("haproxy-1", K::kLoadBalancer, kTeamApplication, L::kL7Application);
  add("haproxy-2", K::kLoadBalancer, kTeamApplication, L::kL7Application);
  add("listing-svc", K::kAppServer, kTeamApplication, L::kL7Application);
  add("search-solr", K::kSearch, kTeamApplication, L::kL7Application);
  add("thumbnail-svc", K::kAppServer, kTeamApplication, L::kL7Application);
  std::vector<std::string> app_names;
  for (int i = 1; i <= apps; ++i) {
    const std::string name = "app-r2-" + std::to_string(i);
    add(name, K::kAppServer, kTeamApplication, L::kL7Application);
    app_names.push_back(name);
  }

  // Data tiers: postgres pair, 2-4 Cassandra nodes, 1-3 memcached shards.
  add("postgres-primary", K::kDatabase, kTeamDatabase, L::kL7Application);
  add("postgres-replica", K::kDatabase, kTeamDatabase, L::kL7Application);
  const int cassandras = static_cast<int>(rng.uniform_int(2, 4));
  for (int i = 1; i <= cassandras; ++i) {
    add("cassandra-" + std::to_string(i), K::kNoSqlStore, kTeamNoSql, L::kL7Application);
  }
  add("mcrouter", K::kCache, kTeamCaching, L::kL7Application);
  const int memcacheds = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 1; i <= memcacheds; ++i) {
    add("memcached-" + std::to_string(i), K::kCache, kTeamCaching, L::kL7Application);
  }
  add("rabbitmq", K::kQueue, kTeamMessaging, L::kL7Application);
  add("vote-worker", K::kWorker, kTeamMessaging, L::kL7Application);
  add("comment-worker", K::kWorker, kTeamMessaging, L::kL7Application);
  add("monitor-agent", K::kMonitor, kTeamMonitoring, L::kL7Application);
  add("probe-cluster-a", K::kMonitor, kTeamMonitoring, L::kL4Transport);
  add("probe-cluster-b", K::kMonitor, kTeamMonitoring, L::kL4Transport);

  // Placements for every hosted service (churn lives here).
  for (const char* service :
       {"haproxy-1", "haproxy-2", "listing-svc", "search-solr", "thumbnail-svc",
        "postgres-primary", "postgres-replica", "mcrouter", "rabbitmq", "vote-worker",
        "comment-worker", "monitor-agent"}) {
    place(service);
  }
  for (const std::string& name : app_names) place(name);
  for (int i = 1; i <= cassandras; ++i) place("cassandra-" + std::to_string(i));
  for (int i = 1; i <= memcacheds; ++i) place("memcached-" + std::to_string(i));

  // Logical dependencies: the same cross-team template as the canonical
  // deployment, instantiated per replica.
  for (std::size_t i = 0; i < app_names.size(); ++i) {
    dep(i % 2 ? "haproxy-2" : "haproxy-1", app_names[i]);
    dep(app_names[i], "postgres-primary");
    dep(app_names[i], "mcrouter");
    dep(app_names[i], "cassandra-1");
    if (cassandras >= 2) dep(app_names[i], "cassandra-2");
    dep(app_names[i], "rabbitmq");
    dep(app_names[i], "listing-svc");
    if (rng.bernoulli(0.5)) dep(app_names[i], "search-solr");
    if (rng.bernoulli(0.4)) dep(app_names[i], "thumbnail-svc");
  }
  // Keep every cross-team edge type present regardless of coin flips.
  dep(app_names[0], "search-solr");
  dep("haproxy-1", "dns");
  dep("haproxy-2", "dns");
  dep("haproxy-1", "firewall");
  dep("haproxy-2", "firewall");
  dep("listing-svc", "cassandra-" + std::to_string(cassandras));
  dep("listing-svc", "mcrouter");
  dep("search-solr", "postgres-replica");
  dep("thumbnail-svc", "storage-array");
  dep("postgres-replica", "postgres-primary");
  for (int i = 1; i <= memcacheds; ++i) dep("mcrouter", "memcached-" + std::to_string(i));
  dep("vote-worker", "rabbitmq");
  dep("comment-worker", "rabbitmq");
  dep("vote-worker", "postgres-primary");
  dep("comment-worker", "cassandra-1");
  dep("probe-cluster-a", "cluster-fabric");
  dep("probe-cluster-a", "wan-link-east");
  dep("probe-cluster-b", "cluster-fabric");
  dep("probe-cluster-b", "wan-link-west");
  dep("monitor-agent", "probe-cluster-a");
  dep("monitor-agent", "probe-cluster-b");
  dep("monitor-agent", "haproxy-1");
  dep("monitor-agent", "haproxy-2");

  return sg;
}

double dependency_edit_distance(const ServiceGraph& a, const ServiceGraph& b) {
  const auto edge_set = [](const ServiceGraph& sg) {
    std::set<std::pair<std::string, std::string>> edges;
    for (graph::EdgeId e = 0; e < sg.graph().edge_count(); ++e) {
      const auto& edge = sg.graph().edge(e);
      edges.emplace(sg.graph().node_name(edge.from), sg.graph().node_name(edge.to));
    }
    return edges;
  };
  const auto ea = edge_set(a);
  const auto eb = edge_set(b);
  std::size_t intersection = 0;
  for (const auto& e : ea) intersection += eb.count(e);
  const std::size_t union_size = ea.size() + eb.size() - intersection;
  if (union_size == 0) return 0.0;
  return 1.0 - static_cast<double>(intersection) / static_cast<double>(union_size);
}

}  // namespace smn::depgraph
