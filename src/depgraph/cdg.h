// Coarse Dependency Graphs (§5, Figure 3): the team-level coarsening of a
// fine-grained service graph. "Each node represents a team with edges to
// other teams it depends on to deliver a service." The CDG is deliberately
// lossy (it can create false dependencies) but is easy for engineers to
// sketch and maintain — and, per the paper's headline result, it carries
// enough signal to lift incident-routing accuracy substantially.
#pragma once

#include <string>
#include <vector>

#include "core/coarsening.h"
#include "depgraph/service_graph.h"
#include "graph/digraph.h"
#include "util/rng.h"

namespace smn::depgraph {

/// Team-level dependency graph. Node ids are team indices (matching
/// ServiceGraph::teams() order when built by the coarsener).
class Cdg {
 public:
  explicit Cdg(std::vector<std::string> team_names);

  /// Declares "dependent team depends on dependency team". Self-loops and
  /// duplicates are ignored.
  void add_dependency(graph::NodeId dependent, graph::NodeId dependency);
  void add_dependency(const std::string& dependent, const std::string& dependency);

  const graph::Digraph& graph() const noexcept { return graph_; }
  std::size_t team_count() const noexcept { return graph_.node_count(); }
  const std::string& team_name(graph::NodeId id) const { return graph_.node_name(id); }
  std::optional<graph::NodeId> find_team(const std::string& name) const {
    return graph_.find_node(name);
  }

  /// Predicted incident syndrome if *only* team `team` failed: a 0/1
  /// vector over teams where 1 marks teams expected to show symptoms —
  /// the failed team itself plus every team that transitively depends on
  /// it (fault effects travel from dependency to dependent).
  std::vector<double> predicted_syndrome(graph::NodeId team) const;

  /// |s| measure: teams + team-level edges.
  std::size_t size_measure() const noexcept {
    return graph_.node_count() + graph_.edge_count();
  }

  /// ASCII rendering of the CDG (one "team -> deps" line per team),
  /// Figure-3 style.
  std::string to_string() const;

 private:
  graph::Digraph graph_;
};

/// The §5 coarsening: microservice-level graph -> team-level CDG.
/// A team edge A -> B exists iff some component of A depends on some
/// component of B (A != B).
class CdgCoarsener final : public core::Coarsener<ServiceGraph, Cdg> {
 public:
  std::string name() const override { return "team-cdg"; }
  Cdg coarsen(const ServiceGraph& fine) const override;
  std::size_t fine_size(const ServiceGraph& fine) const override { return fine.size_measure(); }
  std::size_t coarse_size(const Cdg& coarse) const override { return coarse.size_measure(); }
};

/// Simulates an engineer-sketched, imperfect CDG (§5: "engineers can
/// directly sketch the CDG ... and refine it over time"): each true edge
/// is independently forgotten with probability `drop_probability`, and
/// each absent team pair gains a spurious edge with probability
/// `add_probability` (a false dependency, as in the Figure-3 discussion).
/// Deterministic given `rng` state.
Cdg perturb_cdg(const Cdg& truth, double drop_probability, double add_probability,
                util::Rng& rng);

}  // namespace smn::depgraph
