#include "depgraph/service_graph.h"

#include <algorithm>
#include <stdexcept>

namespace smn::depgraph {

graph::NodeId ServiceGraph::add_component(ServiceComponent component) {
  const graph::NodeId id = graph_.add_node(component.name);
  const auto it = std::find(teams_.begin(), teams_.end(), component.team);
  if (it == teams_.end()) {
    team_of_.push_back(teams_.size());
    teams_.push_back(component.team);
  } else {
    team_of_.push_back(static_cast<std::size_t>(it - teams_.begin()));
  }
  components_.push_back(std::move(component));
  return id;
}

void ServiceGraph::add_dependency(graph::NodeId dependent, graph::NodeId dependency) {
  graph_.add_edge(dependent, dependency);
}

void ServiceGraph::add_dependency(const std::string& dependent, const std::string& dependency) {
  const auto from = find(dependent);
  const auto to = find(dependency);
  if (!from || !to) {
    throw std::invalid_argument("ServiceGraph::add_dependency: unknown component name: " +
                                (!from ? dependent : dependency));
  }
  add_dependency(*from, *to);
}

std::size_t ServiceGraph::team_index(graph::NodeId id) const { return team_of_.at(id); }

std::vector<graph::NodeId> ServiceGraph::components_of_team(const std::string& team) const {
  std::vector<graph::NodeId> out;
  for (graph::NodeId n = 0; n < component_count(); ++n) {
    if (components_[n].team == team) out.push_back(n);
  }
  return out;
}

}  // namespace smn::depgraph
