#include "depgraph/cdg.h"

#include <set>
#include <sstream>
#include <stdexcept>

#include "graph/reachability.h"

namespace smn::depgraph {

Cdg::Cdg(std::vector<std::string> team_names) {
  for (std::string& name : team_names) graph_.add_node(std::move(name));
}

void Cdg::add_dependency(graph::NodeId dependent, graph::NodeId dependency) {
  if (dependent == dependency) return;
  if (graph_.find_edge(dependent, dependency)) return;
  graph_.add_edge(dependent, dependency);
}

void Cdg::add_dependency(const std::string& dependent, const std::string& dependency) {
  const auto from = find_team(dependent);
  const auto to = find_team(dependency);
  if (!from || !to) {
    throw std::invalid_argument("Cdg::add_dependency: unknown team name: " +
                                (!from ? dependent : dependency));
  }
  add_dependency(*from, *to);
}

std::vector<double> Cdg::predicted_syndrome(graph::NodeId team) const {
  // Teams showing symptoms = the failed team + its transitive dependents,
  // i.e. every team that can reach `team` along dependency edges.
  const std::vector<bool> dependents = graph::reverse_reachable(graph_, team);
  std::vector<double> syndrome(team_count(), 0.0);
  for (graph::NodeId t = 0; t < team_count(); ++t) {
    syndrome[t] = dependents[t] ? 1.0 : 0.0;
  }
  return syndrome;
}

std::string Cdg::to_string() const {
  std::ostringstream out;
  for (graph::NodeId t = 0; t < team_count(); ++t) {
    out << team_name(t) << " ->";
    bool any = false;
    for (const graph::EdgeId e : graph_.out_edges(t)) {
      out << ' ' << team_name(graph_.edge(e).to);
      any = true;
    }
    if (!any) out << " (none)";
    out << '\n';
  }
  return out.str();
}

Cdg perturb_cdg(const Cdg& truth, double drop_probability, double add_probability,
                util::Rng& rng) {
  std::vector<std::string> names;
  names.reserve(truth.team_count());
  for (graph::NodeId t = 0; t < truth.team_count(); ++t) names.push_back(truth.team_name(t));
  Cdg noisy(std::move(names));
  for (graph::NodeId from = 0; from < truth.team_count(); ++from) {
    for (graph::NodeId to = 0; to < truth.team_count(); ++to) {
      if (from == to) continue;
      const bool present = truth.graph().find_edge(from, to).has_value();
      if (present ? !rng.bernoulli(drop_probability) : rng.bernoulli(add_probability)) {
        noisy.add_dependency(from, to);
      }
    }
  }
  return noisy;
}

Cdg CdgCoarsener::coarsen(const ServiceGraph& fine) const {
  Cdg cdg(fine.teams());
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (graph::EdgeId e = 0; e < fine.graph().edge_count(); ++e) {
    const graph::Edge& edge = fine.graph().edge(e);
    const std::size_t from_team = fine.team_index(edge.from);
    const std::size_t to_team = fine.team_index(edge.to);
    if (from_team == to_team) continue;
    if (seen.emplace(from_team, to_team).second) {
      cdg.add_dependency(static_cast<graph::NodeId>(from_team),
                         static_cast<graph::NodeId>(to_team));
    }
  }
  return cdg;
}

}  // namespace smn::depgraph
