// Synthetic service-log generator: realistic operational log lines drawn
// from a latent template set (connection events, GC pauses, HTTP accesses,
// cache misses, BGP/link events, ...). Substitutes for production logs the
// same way the traffic generator substitutes for bandwidth telemetry.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/sim_time.h"

namespace smn::logs {

struct LogGenConfig {
  std::size_t lines = 10000;
  util::SimTime start = 0;
  /// Mean gap between lines (exponential).
  double mean_gap_seconds = 1.0;
  std::uint64_t seed = 777;
};

/// Timestamped raw log lines, timestamp-ordered. The latent template mix
/// is heavy-tailed (a few chatty templates dominate), matching real logs.
std::vector<std::pair<util::SimTime, std::string>> generate_service_logs(
    const LogGenConfig& config);

/// Number of latent templates the generator draws from (for tests: the
/// miner should recover approximately this many).
std::size_t latent_template_count();

}  // namespace smn::logs
