#include "logs/template_miner.h"

#include <algorithm>
#include <cctype>

#include "util/string_util.h"

namespace smn::logs {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

/// Heuristic: tokens dominated by digits (ids, counts, addresses, ports)
/// are variables a priori.
bool looks_variable(const std::string& token) {
  std::size_t digits = 0;
  for (const char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  return digits > 0 && digits * 2 >= token.size();
}

}  // namespace

std::string LogTemplate::text() const { return util::join(tokens, " "); }

ParsedLog TemplateMiner::parse(util::SimTime timestamp, const std::string& line) {
  std::vector<std::string> tokens = tokenize(line);
  // Preprocess: abstract obviously-variable tokens.
  std::vector<bool> pre_wildcard(tokens.size(), false);
  if (config_.abstract_numbers) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      pre_wildcard[i] = looks_variable(tokens[i]);
    }
  }

  // Bucket by (token count, first stable token).
  const std::string first =
      tokens.empty() ? std::string{} : (pre_wildcard[0] ? std::string(kWildcard) : tokens[0]);
  const auto key = std::make_pair(tokens.size(), first);
  std::vector<std::size_t>* bucket = nullptr;
  for (auto& [k, ids] : buckets_) {
    if (k == key) {
      bucket = &ids;
      break;
    }
  }
  if (bucket == nullptr) {
    buckets_.emplace_back(key, std::vector<std::size_t>{});
    bucket = &buckets_.back().second;
  }

  // Find the most similar template in the bucket.
  std::size_t best_id = SIZE_MAX;
  double best_similarity = -1.0;
  for (const std::size_t id : *bucket) {
    const LogTemplate& t = templates_[id];
    std::size_t stable = 0, matching = 0;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (t.tokens[i] == kWildcard) continue;
      ++stable;
      if (!pre_wildcard[i] && t.tokens[i] == tokens[i]) ++matching;
    }
    const double similarity =
        stable == 0 ? 1.0 : static_cast<double>(matching) / static_cast<double>(stable);
    if (similarity > best_similarity) {
      best_similarity = similarity;
      best_id = id;
    }
  }

  if (best_id == SIZE_MAX || best_similarity < config_.similarity_threshold) {
    // New template: pre-abstracted positions start as wildcards.
    LogTemplate t;
    t.id = templates_.size();
    t.tokens = tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (pre_wildcard[i]) {
        t.tokens[i] = kWildcard;
        ++t.initial_wildcards;
      }
    }
    templates_.push_back(std::move(t));
    bucket->push_back(templates_.size() - 1);
    best_id = templates_.size() - 1;
  } else {
    // Generalize: positions that disagree become wildcards, each recorded
    // as a versioning event so older entries stay reconstructible.
    LogTemplate& t = templates_[best_id];
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (t.tokens[i] != kWildcard && (pre_wildcard[i] || t.tokens[i] != tokens[i])) {
        t.generalization_events.emplace_back(i, t.tokens[i]);
        t.tokens[i] = kWildcard;
      }
    }
  }

  LogTemplate& matched = templates_[best_id];
  ++matched.match_count;
  ParsedLog parsed;
  parsed.timestamp = timestamp;
  parsed.template_id = best_id;
  parsed.wildcards_at_parse = matched.initial_wildcards + matched.generalization_events.size();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (matched.tokens[i] == kWildcard) parsed.parameters.push_back(tokens[i]);
  }
  return parsed;
}

std::string TemplateMiner::reconstruct(const ParsedLog& parsed) const {
  const LogTemplate& t = templates_.at(parsed.template_id);
  std::vector<std::string> tokens = t.tokens;
  // Undo generalizations that happened after this entry was parsed: those
  // positions were literal then, so restore the recorded literal.
  const std::size_t events_at_parse = parsed.wildcards_at_parse - t.initial_wildcards;
  for (std::size_t e = events_at_parse; e < t.generalization_events.size(); ++e) {
    tokens[t.generalization_events[e].first] = t.generalization_events[e].second;
  }
  std::size_t param = 0;
  for (std::string& token : tokens) {
    if (token == kWildcard && param < parsed.parameters.size()) {
      token = parsed.parameters[param++];
    }
  }
  return util::join(tokens, " ");
}

void CompressedLogStore::append(util::SimTime timestamp, const std::string& line) {
  raw_bytes_ += line.size() + 1;
  entries_.push_back(miner_.parse(timestamp, line));
}

std::size_t CompressedLogStore::encoded_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const LogTemplate& t : miner_.templates()) {
    bytes += t.text().size() + 8;
    for (const auto& [_, literal] : t.generalization_events) bytes += literal.size() + 4;
  }
  for (const ParsedLog& entry : entries_) {
    bytes += 12;  // timestamp + template id
    for (const std::string& p : entry.parameters) bytes += p.size() + 1;
  }
  return bytes;
}

double CompressedLogStore::compression_ratio() const noexcept {
  const std::size_t encoded = encoded_bytes();
  return encoded == 0 ? 0.0 : static_cast<double>(raw_bytes_) / static_cast<double>(encoded);
}

namespace {

/// Can `needle` possibly occur in a line produced from `tokens`? The
/// needle's whitespace-split tokens must align with a run of template
/// tokens, where wildcards match anything, the first needle token may
/// begin mid-token (suffix match) and the last may end mid-token (prefix
/// match). Generalization-event literals widen candidacy for old entries,
/// so they are treated as extra wildcards (handled by the caller marking
/// such templates scannable).
bool template_can_match(const std::vector<std::string>& tokens,
                        const std::vector<std::string>& needle_tokens) {
  const std::size_t n = needle_tokens.size();
  if (n == 0 || tokens.size() < n) return false;
  for (std::size_t start = 0; start + n <= tokens.size(); ++start) {
    bool ok = true;
    for (std::size_t j = 0; j < n && ok; ++j) {
      const std::string& tok = tokens[start + j];
      if (tok == kWildcard) continue;
      const std::string& nt = needle_tokens[j];
      if (n == 1) {
        ok = tok.find(nt) != std::string::npos;
      } else if (j == 0) {
        ok = tok.size() >= nt.size() && tok.ends_with(nt);
      } else if (j == n - 1) {
        ok = tok.size() >= nt.size() && tok.starts_with(nt);
      } else {
        ok = tok == nt;
      }
    }
    if (ok) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> CompressedLogStore::search(const std::string& needle) const {
  // Phase 1 (CLP-style): decide per template whether it can match, by
  // aligning the needle's tokens against the template (wildcards match
  // anything). Templates that cannot match are pruned without touching
  // their entries.
  const std::vector<std::string> needle_tokens = [&] {
    std::vector<std::string> out;
    std::string current;
    for (const char c : needle) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!current.empty()) {
          out.push_back(std::move(current));
          current.clear();
        }
      } else {
        current.push_back(c);
      }
    }
    if (!current.empty()) out.push_back(std::move(current));
    return out;
  }();

  std::vector<char> candidate(miner_.templates().size(), 0);
  for (const LogTemplate& t : miner_.templates()) {
    // Old entries of a generalized template may carry the replaced
    // literals: test candidacy against the pre-generalization shape too.
    std::vector<std::string> oldest = t.tokens;
    for (const auto& [pos, literal] : t.generalization_events) oldest[pos] = literal;
    const bool can_match = template_can_match(t.tokens, needle_tokens) ||
                           template_can_match(oldest, needle_tokens);
    if (!can_match) continue;
    // A hit inside the static text guarantees every entry of this template
    // matches: static tokens are never rewritten (generalization only ever
    // removes them from the static set, and the current static tokens were
    // static at every entry's parse time). Guard against needles that
    // contain the wildcard marker itself.
    const bool static_hit = needle.find(kWildcard) == std::string::npos &&
                            t.text().find(needle) != std::string::npos;
    candidate[t.id] = static_hit ? 2 : 1;
  }

  std::vector<std::string> results;
  last_scanned_ = 0;
  for (const ParsedLog& entry : entries_) {
    const char c = candidate[entry.template_id];
    if (c == 0) continue;  // template pruned, entry never touched
    if (c == 2) {
      results.push_back(miner_.reconstruct(entry));
      continue;
    }
    ++last_scanned_;
    const std::string line = miner_.reconstruct(entry);
    if (line.find(needle) != std::string::npos) results.push_back(line);
  }
  return results;
}

}  // namespace smn::logs
