// Unstructured-log handling for the CLDS.
//
// The SMN's inputs are "Mixed (Telemetry, Logs)" (Table 1), and §2 flags
// the cost: "centralizing this data across teams can take an infeasible
// amount of storage [CLP 36, parser-based log compression 43] and
// bandwidth, but is also expensive to sift through." §6's AIOps engine
// wants logs "convert[ed] ... into structured inputs for the CLTO".
//
// This module implements the classical answer both citations build on:
// online template mining (Drain-style). Each raw line parses into a
// template id plus the variable tokens, which simultaneously
//   * compresses the stream (template text stored once),
//   * structures it (parameters become queryable fields), and
//   * accelerates search (match the few templates first, then scan only
//     their entries — the CLP trick).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace smn::logs {

/// The wildcard marking a variable position in a template.
inline constexpr const char* kWildcard = "<*>";

struct LogTemplate {
  std::size_t id = 0;
  /// Tokens with kWildcard at variable positions.
  std::vector<std::string> tokens;
  std::size_t match_count = 0;
  /// Wildcards present at template creation (pre-abstracted positions).
  std::size_t initial_wildcards = 0;
  /// Positions generalized to wildcards *after* creation, in order, with
  /// the literal they replaced — the versioning that keeps entries parsed
  /// before a generalization reconstructible.
  std::vector<std::pair<std::size_t, std::string>> generalization_events;

  /// Static text with wildcards, e.g. "connection to <*> timed out after
  /// <*> ms".
  std::string text() const;
};

struct ParsedLog {
  util::SimTime timestamp = 0;
  std::size_t template_id = 0;
  std::vector<std::string> parameters;  ///< one per wildcard, in order
  /// Wildcard count of the template when this entry was parsed; later
  /// generalizations do not affect this entry's reconstruction.
  std::size_t wildcards_at_parse = 0;
};

struct MinerConfig {
  /// Fraction of non-wildcard token positions that must match to join an
  /// existing template (Drain's similarity threshold).
  double similarity_threshold = 0.6;
  /// Tokens that look numeric/identifier-like are pre-abstracted to
  /// wildcards before matching (Drain's preprocessing heuristic).
  bool abstract_numbers = true;
};

/// Online log template miner (Drain-lite: buckets by token count + first
/// token, merges by similarity). Deterministic; templates only ever
/// generalize (wildcards never revert to literals).
class TemplateMiner {
 public:
  explicit TemplateMiner(MinerConfig config = {}) : config_(config) {}

  /// Parses one line, creating or generalizing a template as needed.
  ParsedLog parse(util::SimTime timestamp, const std::string& line);

  const std::vector<LogTemplate>& templates() const noexcept { return templates_; }
  const LogTemplate& template_of(std::size_t id) const { return templates_.at(id); }

  /// Reconstructs the original line's token stream (wildcards substituted
  /// with the parsed parameters). Lossless modulo whitespace runs.
  std::string reconstruct(const ParsedLog& parsed) const;

 private:
  MinerConfig config_;
  std::vector<LogTemplate> templates_;
  /// Bucket key (token_count, first_token) -> template ids.
  std::vector<std::pair<std::pair<std::size_t, std::string>, std::vector<std::size_t>>>
      buckets_;
};

/// Compressed, searchable log store (CLP-flavored): raw lines parse
/// through the miner; storage holds the template dictionary plus
/// (timestamp, template id, parameters) tuples.
class CompressedLogStore {
 public:
  explicit CompressedLogStore(MinerConfig config = {}) : miner_(config) {}

  void append(util::SimTime timestamp, const std::string& line);

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t template_count() const noexcept { return miner_.templates().size(); }

  /// Bytes of the raw lines as ingested.
  std::size_t raw_bytes() const noexcept { return raw_bytes_; }
  /// Approximate encoded bytes: dictionary + per-entry (8B timestamp +
  /// 4B template id + parameter text).
  std::size_t encoded_bytes() const noexcept;
  double compression_ratio() const noexcept;

  /// All reconstructed lines containing `needle`, in append order.
  /// Template-first search: only entries of templates whose static text or
  /// parameters can match are scanned.
  std::vector<std::string> search(const std::string& needle) const;

  /// Number of entries scanned by the last search (the CLP speedup
  /// metric: scanned / size() << 1 for selective needles).
  std::size_t last_search_scanned() const noexcept { return last_scanned_; }

  const TemplateMiner& miner() const noexcept { return miner_; }
  const std::vector<ParsedLog>& entries() const noexcept { return entries_; }

 private:
  TemplateMiner miner_;
  std::vector<ParsedLog> entries_;
  std::size_t raw_bytes_ = 0;
  mutable std::size_t last_scanned_ = 0;
};

}  // namespace smn::logs
