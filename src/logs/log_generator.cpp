#include "logs/log_generator.h"

#include <array>

#include "util/rng.h"
#include "util/string_util.h"

namespace smn::logs {
namespace {

/// Latent templates with '%' marking a variable slot. Weights follow a
/// rough Zipf so a handful of templates dominate, as in production logs.
struct Latent {
  const char* pattern;
  double weight;
};

constexpr std::array<Latent, 18> kLatents = {{
    {"INFO request % completed in % ms status %", 30.0},
    {"INFO cache hit for key % shard %", 22.0},
    {"INFO cache miss for key % shard %", 14.0},
    {"DEBUG heartbeat from % seq %", 10.0},
    {"INFO connection from % established on port %", 8.0},
    {"WARN connection to % timed out after % ms", 6.0},
    {"INFO query % returned % rows in % ms", 5.0},
    {"WARN gc pause of % ms on heap % mb", 4.0},
    {"INFO replication lag % ms on follower %", 3.0},
    {"ERROR failed to write block % to volume %", 2.0},
    {"WARN retry % of % for request %", 2.0},
    {"INFO bgp peer % session established", 1.0},
    {"WARN bgp peer % hold timer expired", 0.8},
    {"ERROR link % flap detected, reconverging", 0.7},
    {"INFO certificate for % renewed, expires %", 0.4},
    {"ERROR disk % usage at % percent", 0.4},
    {"WARN queue % depth % exceeds threshold", 0.3},
    {"INFO config % applied by %", 0.2},
}};

std::string fill(const char* pattern, util::Rng& rng) {
  std::string out;
  for (const char* p = pattern; *p != '\0'; ++p) {
    if (*p == '%') {
      // Variables: numbers, host-like ids, or hex-ish tokens.
      switch (rng.uniform_int(0, 2)) {
        case 0:
          out += std::to_string(rng.uniform_int(1, 99999));
          break;
        case 1:
          out += "host-" + std::to_string(rng.uniform_int(1, 48));
          break;
        default:
          out += "0x" + std::to_string(rng.uniform_int(4096, 65535));
          break;
      }
    } else {
      out.push_back(*p);
    }
  }
  return out;
}

}  // namespace

std::size_t latent_template_count() { return kLatents.size(); }

std::vector<std::pair<util::SimTime, std::string>> generate_service_logs(
    const LogGenConfig& config) {
  util::Rng rng(config.seed);
  std::vector<double> weights;
  weights.reserve(kLatents.size());
  for (const Latent& l : kLatents) weights.push_back(l.weight);

  std::vector<std::pair<util::SimTime, std::string>> lines;
  lines.reserve(config.lines);
  double t = static_cast<double>(config.start);
  for (std::size_t i = 0; i < config.lines; ++i) {
    t += rng.exponential(1.0 / config.mean_gap_seconds);
    const Latent& latent = kLatents[rng.weighted_index(weights)];
    lines.emplace_back(static_cast<util::SimTime>(t), fill(latent.pattern, rng));
  }
  return lines;
}

}  // namespace smn::logs
