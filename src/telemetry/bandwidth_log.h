// Bandwidth demand logs, Listing 1 of the paper:
//
//   # Format: ts, src_dc, dst_dc, bw_Gbps
//   2025-06-01T00:00, us-e1, eu-w1, 1250
//
// Each record is the demand between a datacenter pair in one five-minute
// window. These logs are the fine structure S of the §4 coarsenings.
//
// Storage is columnar (structure-of-arrays): a record is one SimTime, one
// interned PairId, and one double — 20 bytes instead of two heap-allocated
// strings per row. The string-based API (`BandwidthRecord`, `records()`,
// `pairs()`, `series_by_pair()`) is preserved as shims that materialize
// names through the shared util::IdSpace, so Listing-1 serialization and
// existing callers keep working unchanged.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/interner.h"
#include "util/sim_time.h"

namespace smn::telemetry {

struct BandwidthRecord {
  util::SimTime timestamp = 0;
  std::string src;
  std::string dst;
  double bw_gbps = 0.0;

  bool operator==(const BandwidthRecord&) const = default;
};

/// Per-class counters for Listing-1 parsing (see `from_listing_format`).
/// A line lands in exactly one class; `skipped()` is the total.
struct ListingParseStats {
  std::size_t parsed = 0;          ///< well-formed records accepted
  std::size_t bad_field_count = 0; ///< not exactly 4 comma-separated fields
  std::size_t bad_timestamp = 0;   ///< unparseable ISO-8601 timestamp
  std::size_t bad_value = 0;       ///< non-numeric bandwidth field
  std::size_t non_finite = 0;      ///< NaN or infinite bandwidth
  std::size_t negative = 0;        ///< bandwidth below zero
  std::size_t empty_name = 0;      ///< missing src or dst name
  std::size_t out_of_order = 0;    ///< timestamp went backwards (garbage tail)

  std::size_t skipped() const noexcept {
    return bad_field_count + bad_timestamp + bad_value + non_finite + negative + empty_name +
           out_of_order;
  }
};

/// Append-oriented columnar log of bandwidth records. Records are expected
/// in non-decreasing timestamp order (the generator produces them that
/// way); `sort()` restores the invariant after merges.
class BandwidthLog {
 public:
  /// Id-native append: the hot ingest path. `pair` must come from
  /// util::IdSpace::global().
  void append(util::SimTime timestamp, util::PairId pair, double bw_gbps) {
    timestamps_.push_back(timestamp);
    pairs_.push_back(pair);
    bw_.push_back(bw_gbps);
  }

  /// String shim: interns the names, then appends.
  void append(BandwidthRecord record) {
    append(record.timestamp, util::IdSpace::global().pair_of_names(record.src, record.dst),
           record.bw_gbps);
  }

  /// Bulk column append: copies whole spans into the columnar arrays (range
  /// inserts, so the copies vectorize instead of paying a capacity check
  /// per row). All three spans must be the same length.
  void append_columns(std::span<const util::SimTime> timestamps,
                      std::span<const util::PairId> pairs, std::span<const double> bw_gbps) {
    timestamps_.insert(timestamps_.end(), timestamps.begin(), timestamps.end());
    pairs_.insert(pairs_.end(), pairs.begin(), pairs.end());
    bw_.insert(bw_.end(), bw_gbps.begin(), bw_gbps.end());
  }

  /// Appends every record of the given columns whose timestamp falls in
  /// [begin, end) — the fine_range() read path, shared by resident
  /// segments and mapped spill files (both expose raw column spans). All
  /// three spans must be the same length; relative record order is kept.
  void append_time_filtered(std::span<const util::SimTime> timestamps,
                            std::span<const util::PairId> pairs, std::span<const double> bw_gbps,
                            util::SimTime begin, util::SimTime end);

  void reserve(std::size_t n) {
    timestamps_.reserve(n);
    pairs_.reserve(n);
    bw_.reserve(n);
  }

  // --- Columnar accessors (the id-based consumer path) ---
  std::span<const util::SimTime> timestamps() const noexcept { return timestamps_; }
  std::span<const util::PairId> pair_ids() const noexcept { return pairs_; }
  std::span<const double> bandwidths() const noexcept { return bw_; }

  std::size_t record_count() const noexcept { return timestamps_.size(); }
  bool empty() const noexcept { return timestamps_.empty(); }

  /// Row `i` with names materialized from the id space.
  BandwidthRecord record_at(std::size_t i) const;

  /// Compatibility shim: materializes every row. O(n) strings per call —
  /// rewire hot paths onto the columnar accessors instead.
  std::vector<BandwidthRecord> records() const;

  /// Stable-sorts by (timestamp, src, dst) — name order, not id order, so
  /// serialized output is independent of interning history.
  void sort();

  /// Time range covered: {min_ts, max_ts}; {0, 0} when empty.
  std::pair<util::SimTime, util::SimTime> time_range() const noexcept;

  /// Distinct pair ids in first-seen order.
  std::vector<util::PairId> pair_ids_first_seen() const;

  /// Distinct (src, dst) name pairs in first-seen order (shim).
  std::vector<std::pair<std::string, std::string>> pairs() const;

  /// Per-pair series of (timestamp, bw) in log order, keyed by pair id.
  std::map<util::PairId, std::vector<std::pair<util::SimTime, double>>> series_by_pair_id() const;

  /// Per-pair series keyed by names (shim).
  std::map<std::pair<std::string, std::string>, std::vector<std::pair<util::SimTime, double>>>
  series_by_pair() const;

  /// Total demand summed over all records (Gbps x epochs).
  double total_volume() const noexcept;

  /// Serializes in the Listing-1 text format, with the header comment.
  std::string to_listing_format() const;

  /// Parses the Listing-1 format; malformed lines are skipped, classified
  /// into `*stats`. Rejected outright: wrong field counts, bad timestamps,
  /// non-numeric / NaN / infinite / negative bandwidth, empty names, and
  /// lines whose timestamp runs backwards (corrupt tails in otherwise
  /// ordered logs).
  static BandwidthLog from_listing_format(const std::string& text, ListingParseStats* stats);

  /// As above; `*skipped` receives the total skipped-line count.
  static BandwidthLog from_listing_format(const std::string& text,
                                          std::size_t* skipped = nullptr);

  /// Approximate Listing-1 serialized size in bytes (for storage-reduction
  /// reports; names resolved through the id space).
  std::size_t approximate_bytes() const noexcept;

  /// Actual in-memory footprint of the columnar store (20 bytes/row).
  std::size_t memory_bytes() const noexcept {
    return timestamps_.size() * (sizeof(util::SimTime) + sizeof(util::PairId) + sizeof(double));
  }

 private:
  std::vector<util::SimTime> timestamps_;
  std::vector<util::PairId> pairs_;
  std::vector<double> bw_;
};

/// Ranks the distinct pair ids of `pairs` by (src name, dst name). Id-based
/// group-by paths sort their output with these ranks so emission order stays
/// byte-identical to the old string-keyed std::map paths, independent of
/// interning history.
std::unordered_map<util::PairId, std::uint32_t> pair_name_ranks(
    std::span<const util::PairId> pairs);

}  // namespace smn::telemetry
