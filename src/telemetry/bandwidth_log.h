// Bandwidth demand logs, Listing 1 of the paper:
//
//   # Format: ts, src_dc, dst_dc, bw_Gbps
//   2025-06-01T00:00, us-e1, eu-w1, 1250
//
// Each record is the demand between a datacenter pair in one five-minute
// window. These logs are the fine structure S of the §4 coarsenings.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace smn::telemetry {

struct BandwidthRecord {
  util::SimTime timestamp = 0;
  std::string src;
  std::string dst;
  double bw_gbps = 0.0;

  bool operator==(const BandwidthRecord&) const = default;
};

/// Append-oriented log of bandwidth records. Records are expected in
/// non-decreasing timestamp order (the generator produces them that way);
/// `sort()` restores the invariant after merges.
class BandwidthLog {
 public:
  void append(BandwidthRecord record) { records_.push_back(std::move(record)); }

  const std::vector<BandwidthRecord>& records() const noexcept { return records_; }
  std::size_t record_count() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  /// Stable-sorts by (timestamp, src, dst).
  void sort();

  /// Time range covered: {min_ts, max_ts}; {0, 0} when empty.
  std::pair<util::SimTime, util::SimTime> time_range() const noexcept;

  /// Distinct (src, dst) pairs in first-seen order.
  std::vector<std::pair<std::string, std::string>> pairs() const;

  /// Per-pair series of (timestamp, bw) in log order.
  std::map<std::pair<std::string, std::string>, std::vector<std::pair<util::SimTime, double>>>
  series_by_pair() const;

  /// Total demand summed over all records (Gbps x epochs).
  double total_volume() const noexcept;

  /// Serializes in the Listing-1 text format, with the header comment.
  std::string to_listing_format() const;

  /// Parses the Listing-1 format; malformed lines are skipped and counted
  /// in `*skipped` when provided.
  static BandwidthLog from_listing_format(const std::string& text,
                                          std::size_t* skipped = nullptr);

  /// Approximate serialized size in bytes (for storage-reduction reports).
  std::size_t approximate_bytes() const noexcept;

 private:
  std::vector<BandwidthRecord> records_;
};

}  // namespace smn::telemetry
