// Topology-based coarsening of bandwidth logs (§4): records between
// datacenter pairs collapse into records between supernode pairs, using the
// same partition the SupernodeCoarsener applies to the graph — so the
// coarse log and the coarse topology stay mutually consistent for TE.
#pragma once

#include <string>
#include <unordered_map>

#include "core/coarsening.h"
#include "graph/contraction.h"
#include "telemetry/bandwidth_log.h"
#include "topology/wan.h"

namespace smn::telemetry {

/// Maps fine logs to supernode logs. Demands between datacenters in the
/// same supernode vanish (they become internal traffic the coarse
/// optimization cannot see — part of "what's lost" in Table 2); demands
/// across supernodes sum per epoch.
class TopologyLogCoarsener final : public core::Coarsener<BandwidthLog, BandwidthLog> {
 public:
  /// `partition` must cover `wan`'s datacenters; names resolve through
  /// `wan`. Throws std::invalid_argument otherwise.
  TopologyLogCoarsener(const topology::WanTopology& wan, graph::Partition partition);

  std::string name() const override { return "topology-supernode-log"; }
  BandwidthLog coarsen(const BandwidthLog& fine) const override;
  std::size_t fine_size(const BandwidthLog& fine) const override { return fine.record_count(); }
  std::size_t coarse_size(const BandwidthLog& coarse) const override {
    return coarse.record_count();
  }

  /// Supernode name for datacenter `dc_name`; empty when unknown.
  std::string group_of(const std::string& dc_name) const;

 private:
  std::unordered_map<std::string, std::string> dc_to_group_;
};

}  // namespace smn::telemetry
