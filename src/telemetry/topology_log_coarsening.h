// Topology-based coarsening of bandwidth logs (§4): records between
// datacenter pairs collapse into records between supernode pairs, using the
// same partition the SupernodeCoarsener applies to the graph — so the
// coarse log and the coarse topology stay mutually consistent for TE.
#pragma once

#include <string>
#include <vector>

#include "core/coarsening.h"
#include "graph/contraction.h"
#include "telemetry/bandwidth_log.h"
#include "topology/wan.h"
#include "util/interner.h"

namespace smn::telemetry {

/// Maps fine logs to supernode logs. Demands between datacenters in the
/// same supernode vanish (they become internal traffic the coarse
/// optimization cannot see — part of "what's lost" in Table 2); demands
/// across supernodes sum per epoch.
///
/// The datacenter → supernode map is a flat vector indexed by interned
/// DcId (both datacenter and group names live in the shared id space), so
/// the per-record hot path is two array loads instead of two string-keyed
/// hash probes.
class TopologyLogCoarsener final : public core::Coarsener<BandwidthLog, BandwidthLog> {
 public:
  /// `partition` must cover `wan`'s datacenters; names resolve through
  /// `wan`. Throws std::invalid_argument otherwise.
  TopologyLogCoarsener(const topology::WanTopology& wan, graph::Partition partition);

  std::string name() const override { return "topology-supernode-log"; }
  BandwidthLog coarsen(const BandwidthLog& fine) const override;
  std::size_t fine_size(const BandwidthLog& fine) const override { return fine.record_count(); }
  std::size_t coarse_size(const BandwidthLog& coarse) const override {
    return coarse.record_count();
  }

  /// Supernode id for datacenter `dc`; kInvalidDcId when unknown.
  util::DcId group_of(util::DcId dc) const noexcept {
    return dc < dc_to_group_.size() ? dc_to_group_[dc] : util::kInvalidDcId;
  }

  /// Supernode name for datacenter `dc_name`; empty when unknown.
  std::string group_of(const std::string& dc_name) const;

 private:
  std::vector<util::DcId> dc_to_group_;  ///< indexed by DcId
};

}  // namespace smn::telemetry
