#include "telemetry/time_coarsening.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/stats.h"

namespace smn::telemetry {

std::vector<WindowSummary> CoarseBandwidthLog::pair_summaries(const std::string& src,
                                                              const std::string& dst) const {
  std::vector<WindowSummary> out;
  for (const WindowSummary& s : summaries_) {
    if (s.src == src && s.dst == dst) out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const WindowSummary& a, const WindowSummary& b) {
    return a.window_start < b.window_start;
  });
  return out;
}

double CoarseBandwidthLog::pair_mean(const std::string& src, const std::string& dst) const {
  double weighted = 0.0;
  std::size_t samples = 0;
  for (const WindowSummary& s : summaries_) {
    if (s.src == src && s.dst == dst) {
      weighted += s.mean * static_cast<double>(s.sample_count);
      samples += s.sample_count;
    }
  }
  return samples ? weighted / static_cast<double>(samples) : 0.0;
}

double CoarseBandwidthLog::pair_p95_upper(const std::string& src, const std::string& dst) const {
  double best = 0.0;
  for (const WindowSummary& s : summaries_) {
    if (s.src == src && s.dst == dst) best = std::max(best, s.p95);
  }
  return best;
}

BandwidthLog CoarseBandwidthLog::reconstruct(util::SimTime epoch) const {
  BandwidthLog log;
  if (epoch <= 0) return log;
  for (const WindowSummary& s : summaries_) {
    const util::SimTime end = s.window_start + s.window_length;
    for (util::SimTime t = s.window_start; t < end; t += epoch) {
      BandwidthRecord record;
      record.timestamp = t;
      record.src = s.src;
      record.dst = s.dst;
      record.bw_gbps = s.mean;
      log.append(std::move(record));
    }
  }
  log.sort();
  return log;
}

std::size_t CoarseBandwidthLog::approximate_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const WindowSummary& s : summaries_) {
    // window bounds (2 x 16) + five statistics (~6 each) + names + commas.
    bytes += 32 + 5 * 6 + s.src.size() + s.dst.size() + 8;
  }
  return bytes;
}

TimeCoarsener::TimeCoarsener(util::SimTime window) : window_(window) {
  if (window_ <= 0) throw std::invalid_argument("TimeCoarsener: window must be positive");
}

std::string TimeCoarsener::name() const {
  return "time-window-" + std::to_string(window_ / util::kMinute) + "min";
}

CoarseBandwidthLog TimeCoarsener::coarsen(const BandwidthLog& fine) const {
  // Bucket records by (pair, window index).
  std::map<std::tuple<std::string, std::string, util::SimTime>, std::vector<double>> buckets;
  for (const BandwidthRecord& r : fine.records()) {
    const util::SimTime window_start = (r.timestamp / window_) * window_;
    buckets[{r.src, r.dst, window_start}].push_back(r.bw_gbps);
  }
  CoarseBandwidthLog coarse;
  for (auto& [key, values] : buckets) {
    const util::Summary stats = util::summarize(values);
    WindowSummary s;
    s.window_start = std::get<2>(key);
    s.window_length = window_;
    s.src = std::get<0>(key);
    s.dst = std::get<1>(key);
    s.sample_count = stats.count;
    s.mean = stats.mean;
    s.p50 = stats.p50;
    s.p95 = stats.p95;
    s.min = stats.min;
    s.max = stats.max;
    coarse.append(std::move(s));
  }
  return coarse;
}

NestedTimeCoarsener::NestedTimeCoarsener(std::vector<NestedLevel> levels, util::SimTime now,
                                         util::SimTime epoch)
    : levels_(std::move(levels)), now_(now), epoch_(epoch) {
  if (epoch_ <= 0) throw std::invalid_argument("NestedTimeCoarsener: epoch must be positive");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].window <= 0) {
      throw std::invalid_argument("NestedTimeCoarsener: windows must be positive");
    }
    if (i > 0 && (levels_[i].min_age <= levels_[i - 1].min_age ||
                  levels_[i].window < levels_[i - 1].window)) {
      throw std::invalid_argument(
          "NestedTimeCoarsener: levels must have increasing ages and windows");
    }
  }
}

NestedTimeCoarsener NestedTimeCoarsener::standard_ladder(util::SimTime now) {
  return NestedTimeCoarsener(
      {
          {util::kDay, util::kHour},
          {util::kWeek, util::kDay},
          {13 * util::kWeek, util::kWeek},
      },
      now);
}

std::string NestedTimeCoarsener::name() const {
  return "nested-time-" + std::to_string(levels_.size()) + "levels";
}

util::SimTime NestedTimeCoarsener::window_for_age(util::SimTime age) const noexcept {
  util::SimTime window = epoch_;
  for (const NestedLevel& level : levels_) {
    if (age >= level.min_age) window = level.window;
  }
  return window;
}

CoarseBandwidthLog NestedTimeCoarsener::coarsen(const BandwidthLog& fine) const {
  std::map<std::tuple<std::string, std::string, util::SimTime, util::SimTime>,
           std::vector<double>>
      buckets;  // key: (src, dst, window_start, window_length)
  for (const BandwidthRecord& r : fine.records()) {
    const util::SimTime age = std::max<util::SimTime>(0, now_ - r.timestamp);
    const util::SimTime window = window_for_age(age);
    const util::SimTime window_start = (r.timestamp / window) * window;
    buckets[{r.src, r.dst, window_start, window}].push_back(r.bw_gbps);
  }
  CoarseBandwidthLog coarse;
  for (auto& [key, values] : buckets) {
    const util::Summary stats = util::summarize(values);
    WindowSummary s;
    s.src = std::get<0>(key);
    s.dst = std::get<1>(key);
    s.window_start = std::get<2>(key);
    s.window_length = std::get<3>(key);
    s.sample_count = stats.count;
    s.mean = stats.mean;
    s.p50 = stats.p50;
    s.p95 = stats.p95;
    s.min = stats.min;
    s.max = stats.max;
    coarse.append(std::move(s));
  }
  return coarse;
}

}  // namespace smn::telemetry
