#include "telemetry/time_coarsening.h"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.h"
#include "util/stats.h"

namespace smn::telemetry {
namespace {

/// Emits one summary per bucket in (src name, dst name, window key) order —
/// the exact order the old string-keyed std::map paths produced.
template <typename BucketMap, typename KeyLess, typename MakeSummary>
CoarseBandwidthLog emit_sorted(const BucketMap& buckets, std::span<const util::PairId> pairs,
                               KeyLess key_less, MakeSummary make_summary) {
  using Key = typename BucketMap::key_type;
  std::vector<Key> keys;
  keys.reserve(buckets.size());
  for (const auto& [key, _] : buckets) keys.push_back(key);
  const auto rank = pair_name_ranks(pairs);
  std::sort(keys.begin(), keys.end(),
            [&](const Key& a, const Key& b) { return key_less(a, b, rank); });
  CoarseBandwidthLog coarse;
  for (const Key& key : keys) {
    coarse.append(make_summary(key, util::summarize(buckets.at(key))));
  }
  return coarse;
}

}  // namespace

void CoarseBandwidthLog::append(WindowSummary summary) {
  by_pair_[summary.pair].push_back(static_cast<std::uint32_t>(summaries_.size()));
  summaries_.push_back(summary);
}

std::vector<std::uint32_t> CoarseBandwidthLog::rows_of(util::PairId pair) const {
  const auto it = by_pair_.find(pair);
  return it == by_pair_.end() ? std::vector<std::uint32_t>{} : it->second;
}

std::vector<WindowSummary> CoarseBandwidthLog::pair_summaries(util::PairId pair) const {
  std::vector<WindowSummary> out;
  for (const std::uint32_t row : rows_of(pair)) out.push_back(summaries_[row]);
  std::sort(out.begin(), out.end(), [](const WindowSummary& a, const WindowSummary& b) {
    return a.window_start < b.window_start;
  });
  return out;
}

std::vector<WindowSummary> CoarseBandwidthLog::pair_summaries(const std::string& src,
                                                              const std::string& dst) const {
  const auto pair = util::IdSpace::global().find_pair_of_names(src, dst);
  return pair ? pair_summaries(*pair) : std::vector<WindowSummary>{};
}

double CoarseBandwidthLog::pair_mean(util::PairId pair) const {
  double weighted = 0.0;
  std::size_t samples = 0;
  for (const std::uint32_t row : rows_of(pair)) {
    const WindowSummary& s = summaries_[row];
    weighted += s.mean * static_cast<double>(s.sample_count);
    samples += s.sample_count;
  }
  return samples ? weighted / static_cast<double>(samples) : 0.0;
}

double CoarseBandwidthLog::pair_mean(const std::string& src, const std::string& dst) const {
  const auto pair = util::IdSpace::global().find_pair_of_names(src, dst);
  return pair ? pair_mean(*pair) : 0.0;
}

double CoarseBandwidthLog::pair_p95_upper(util::PairId pair) const {
  double best = 0.0;
  for (const std::uint32_t row : rows_of(pair)) best = std::max(best, summaries_[row].p95);
  return best;
}

double CoarseBandwidthLog::pair_p95_upper(const std::string& src, const std::string& dst) const {
  const auto pair = util::IdSpace::global().find_pair_of_names(src, dst);
  return pair ? pair_p95_upper(*pair) : 0.0;
}

BandwidthLog CoarseBandwidthLog::reconstruct(util::SimTime epoch) const {
  BandwidthLog log;
  if (epoch <= 0) return log;
  for (const WindowSummary& s : summaries_) {
    const util::SimTime end = s.window_start + s.window_length;
    for (util::SimTime t = s.window_start; t < end; t += epoch) {
      log.append(t, s.pair, s.mean);
    }
  }
  log.sort();
  return log;
}

std::size_t CoarseBandwidthLog::approximate_bytes() const noexcept {
  const util::IdSpace& ids = util::IdSpace::global();
  std::unordered_map<util::PairId, std::size_t> name_bytes;
  std::size_t bytes = 0;
  for (const WindowSummary& s : summaries_) {
    auto it = name_bytes.find(s.pair);
    if (it == name_bytes.end()) {
      it = name_bytes.emplace(s.pair, ids.src_name(s.pair).size() + ids.dst_name(s.pair).size())
               .first;
    }
    // window bounds (2 x 16) + five statistics (~6 each) + names + commas.
    bytes += 32 + 5 * 6 + it->second + 8;
  }
  return bytes;
}

TimeCoarsener::TimeCoarsener(util::SimTime window) : window_(window) {
  if (window_ <= 0) throw std::invalid_argument("TimeCoarsener: window must be positive");
}

std::string TimeCoarsener::name() const {
  return "time-window-" + std::to_string(window_ / util::kMinute) + "min";
}

CoarseBandwidthLog TimeCoarsener::coarsen(const BandwidthLog& fine) const {
  // Bucket records by (pair, window index) — one u64 key, no string re-keying.
  const auto timestamps = fine.timestamps();
  const auto pairs = fine.pair_ids();
  const auto bw = fine.bandwidths();
  std::unordered_map<std::uint64_t, std::vector<double>> buckets;
  for (std::size_t i = 0; i < fine.record_count(); ++i) {
    SMN_DCHECK(timestamps[i] / window_ <= 0xFFFFFFFF,
               "window index overflows the packed u32 bucket key");
    const auto window_index = static_cast<std::uint32_t>(timestamps[i] / window_);
    const std::uint64_t key = (static_cast<std::uint64_t>(pairs[i]) << 32) | window_index;
    buckets[key].push_back(bw[i]);
  }
  return emit_sorted(
      buckets, pairs,
      [](std::uint64_t a, std::uint64_t b,
         const std::unordered_map<util::PairId, std::uint32_t>& rank) {
        const auto pa = rank.at(static_cast<util::PairId>(a >> 32));
        const auto pb = rank.at(static_cast<util::PairId>(b >> 32));
        if (pa != pb) return pa < pb;
        return (a & 0xFFFFFFFFu) < (b & 0xFFFFFFFFu);
      },
      [&](std::uint64_t key, const util::Summary& stats) {
        WindowSummary s;
        s.pair = static_cast<util::PairId>(key >> 32);
        s.window_start = static_cast<util::SimTime>(key & 0xFFFFFFFFu) * window_;
        s.window_length = window_;
        s.sample_count = stats.count;
        s.mean = stats.mean;
        s.p50 = stats.p50;
        s.p95 = stats.p95;
        s.min = stats.min;
        s.max = stats.max;
        return s;
      });
}

NestedTimeCoarsener::NestedTimeCoarsener(std::vector<NestedLevel> levels, util::SimTime now,
                                         util::SimTime epoch)
    : levels_(std::move(levels)), now_(now), epoch_(epoch) {
  if (epoch_ <= 0) throw std::invalid_argument("NestedTimeCoarsener: epoch must be positive");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].window <= 0) {
      throw std::invalid_argument("NestedTimeCoarsener: windows must be positive");
    }
    if (i > 0 && (levels_[i].min_age <= levels_[i - 1].min_age ||
                  levels_[i].window < levels_[i - 1].window)) {
      throw std::invalid_argument(
          "NestedTimeCoarsener: levels must have increasing ages and windows");
    }
  }
}

NestedTimeCoarsener NestedTimeCoarsener::standard_ladder(util::SimTime now) {
  return NestedTimeCoarsener(
      {
          {util::kDay, util::kHour},
          {util::kWeek, util::kDay},
          {13 * util::kWeek, util::kWeek},
      },
      now);
}

std::string NestedTimeCoarsener::name() const {
  return "nested-time-" + std::to_string(levels_.size()) + "levels";
}

util::SimTime NestedTimeCoarsener::window_for_age(util::SimTime age) const noexcept {
  util::SimTime window = epoch_;
  for (const NestedLevel& level : levels_) {
    if (age >= level.min_age) window = level.window;
  }
  return window;
}

CoarseBandwidthLog NestedTimeCoarsener::coarsen(const BandwidthLog& fine) const {
  struct Key {
    util::PairId pair;
    util::SimTime window_start;
    util::SimTime window_length;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.pair;
      h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(k.window_start);
      h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(k.window_length);
      return static_cast<std::size_t>(h);
    }
  };
  const auto timestamps = fine.timestamps();
  const auto pairs = fine.pair_ids();
  const auto bw = fine.bandwidths();
  std::unordered_map<Key, std::vector<double>, KeyHash> buckets;
  for (std::size_t i = 0; i < fine.record_count(); ++i) {
    const util::SimTime age = std::max<util::SimTime>(0, now_ - timestamps[i]);
    const util::SimTime window = window_for_age(age);
    const util::SimTime window_start = (timestamps[i] / window) * window;
    buckets[Key{pairs[i], window_start, window}].push_back(bw[i]);
  }
  return emit_sorted(
      buckets, pairs,
      [](const Key& a, const Key& b,
         const std::unordered_map<util::PairId, std::uint32_t>& rank) {
        const auto pa = rank.at(a.pair);
        const auto pb = rank.at(b.pair);
        if (pa != pb) return pa < pb;
        if (a.window_start != b.window_start) return a.window_start < b.window_start;
        return a.window_length < b.window_length;
      },
      [](const Key& key, const util::Summary& stats) {
        WindowSummary s;
        s.pair = key.pair;
        s.window_start = key.window_start;
        s.window_length = key.window_length;
        s.sample_count = stats.count;
        s.mean = stats.mean;
        s.p50 = stats.p50;
        s.p95 = stats.p95;
        s.min = stats.min;
        s.max = stats.max;
        return s;
      });
}

}  // namespace smn::telemetry
