#include "telemetry/forecast.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.h"

namespace smn::telemetry {
namespace {

/// Turns one pair's (timestamp -> bandwidth) points into a dense series:
/// the shared back half of every extract_series flavor.
Series densify(const std::map<util::SimTime, double>& points, util::SimTime epoch) {
  Series series;
  series.epoch = epoch;
  if (points.empty()) return series;
  series.start = points.begin()->first;
  const util::SimTime last = points.rbegin()->first;
  const auto n = static_cast<std::size_t>((last - series.start) / epoch) + 1;
  series.values.assign(n, std::numeric_limits<double>::quiet_NaN());
  for (const auto& [t, v] : points) {
    const auto idx = static_cast<std::size_t>((t - series.start) / epoch);
    if (idx < n) series.values[idx] = v;
  }
  // Fill gaps: linear interpolation between known neighbors.
  std::size_t prev_known = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(series.values[i])) continue;
    if (i > prev_known + 1 && !std::isnan(series.values[prev_known])) {
      const double lo = series.values[prev_known];
      const double hi = series.values[i];
      for (std::size_t j = prev_known + 1; j < i; ++j) {
        const double frac = static_cast<double>(j - prev_known) /
                            static_cast<double>(i - prev_known);
        series.values[j] = lo + frac * (hi - lo);
      }
    }
    prev_known = i;
  }
  // Edge gaps repeat the nearest known value.
  double last_known = 0.0;
  bool seen = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isnan(series.values[i])) {
      if (!seen) {
        for (std::size_t j = 0; j < i; ++j) series.values[j] = series.values[i];
      }
      last_known = series.values[i];
      seen = true;
    } else if (seen) {
      series.values[i] = last_known;
    }
  }
  return series;
}

}  // namespace

Series extract_series(const BandwidthLog& log, const std::string& src, const std::string& dst,
                      util::SimTime epoch) {
  if (epoch <= 0) throw std::invalid_argument("extract_series: epoch must be positive");
  // One id lookup, then a scan over the pair-id column — no per-record
  // string compares.
  const auto pair = util::IdSpace::global().find_pair_of_names(src, dst);
  return extract_series(log, pair.value_or(util::kInvalidPairId), epoch);
}

Series extract_series(const BandwidthLog& log, util::PairId pair, util::SimTime epoch) {
  if (epoch <= 0) throw std::invalid_argument("extract_series: epoch must be positive");
  std::map<util::SimTime, double> points;
  if (pair != util::kInvalidPairId) {
    const auto timestamps = log.timestamps();
    const auto pairs = log.pair_ids();
    const auto bw = log.bandwidths();
    for (std::size_t i = 0; i < log.record_count(); ++i) {
      if (pairs[i] == pair) points[timestamps[i]] = bw[i];
    }
  }
  return densify(points, epoch);
}

std::vector<std::pair<util::PairId, Series>> extract_all_series(const BandwidthLog& log,
                                                                util::SimTime epoch) {
  if (epoch <= 0) throw std::invalid_argument("extract_all_series: epoch must be positive");
  // Single scan groups the columnar log; the per-pair maps then densify
  // exactly like the single-pair path (duplicate timestamps: last wins).
  std::map<util::PairId, std::map<util::SimTime, double>> grouped;
  const auto timestamps = log.timestamps();
  const auto pairs = log.pair_ids();
  const auto bw = log.bandwidths();
  for (std::size_t i = 0; i < log.record_count(); ++i) {
    grouped[pairs[i]][timestamps[i]] = bw[i];
  }
  std::vector<std::pair<util::PairId, Series>> out;
  out.reserve(grouped.size());
  for (const auto& [pair, points] : grouped) {
    out.emplace_back(pair, densify(points, epoch));
  }
  return out;
}

std::string forecast_method_name(ForecastMethod method) {
  switch (method) {
    case ForecastMethod::kSeasonalNaive:
      return "seasonal-naive";
    case ForecastMethod::kEwma:
      return "ewma";
    case ForecastMethod::kSeasonalGrowth:
      return "seasonal+growth";
  }
  SMN_UNREACHABLE("forecast_method_name: unhandled ForecastMethod");
}

namespace {

std::vector<double> ewma_forecast(const Series& history, std::size_t horizon, double alpha) {
  double level = history.values.empty() ? 0.0 : history.values.front();
  for (const double v : history.values) level = alpha * v + (1.0 - alpha) * level;
  return std::vector<double>(horizon, level);
}

/// Re-weighting strength of the measured drift: exactly 0 at drift 0 (the
/// drift-aware paths are then never entered, keeping every method
/// byte-identical to the drift-blind forecast), saturating toward 1 as
/// drift_decay * drift_level grows.
double drift_weight(const ForecastOptions& options) {
  // !(x > 0) rather than x <= 0: NaN drift (an empty-baseline report) must
  // also take the quiescent path, not poison the forecast.
  if (!(options.drift_level > 0.0) || options.drift_decay <= 0.0) return 0.0;
  return 1.0 - std::exp(-options.drift_decay * options.drift_level);
}

}  // namespace

std::vector<double> forecast(const Series& history, std::size_t horizon, ForecastMethod method,
                             const ForecastOptions& options) {
  if (horizon == 0) return {};
  const std::size_t n = history.size();
  const double w = drift_weight(options);
  if (method == ForecastMethod::kEwma || n < options.season || options.season == 0) {
    // Drift raises the effective alpha toward 1, so the level estimate
    // weights the post-shift tail over stale history; w == 0 leaves the
    // configured alpha untouched.
    const double alpha = w > 0.0
                             ? options.ewma_alpha + (1.0 - options.ewma_alpha) * w
                             : options.ewma_alpha;
    return ewma_forecast(history, horizon, alpha);
  }

  // Seasonal-naive core: value one season ago (wrapping forward for long
  // horizons).
  std::vector<double> out(horizon, 0.0);
  for (std::size_t h = 0; h < horizon; ++h) {
    const std::size_t offset = (h % options.season);
    out[h] = history.values[n - options.season + offset];
  }

  if (method == ForecastMethod::kSeasonalGrowth && n >= 2 * options.season) {
    // Trailing week-over-week growth ratio, clamped to a sane band.
    double growth_recent = 0.0, previous = 0.0;
    for (std::size_t i = n - options.season; i < n; ++i) growth_recent += history.values[i];
    for (std::size_t i = n - 2 * options.season; i < n - options.season; ++i) {
      previous += history.values[i];
    }
    const double growth =
        previous > 0.0 ? std::clamp(growth_recent / previous, 0.5, 2.0) : 1.0;
    for (double& v : out) v *= growth;
  }

  if (w > 0.0) {
    // Drift re-anchoring: scale the seasonal template by the ratio of the
    // trailing recent level to the same epochs one season earlier, blended
    // in by the drift weight. Under a confirmed level shift (w -> 1) the
    // forecast tracks the new level while keeping last season's shape;
    // at low drift the template stays authoritative. The window is clamped
    // so the season-ago reference always exists, and the ratio is clamped
    // like the growth ratio (a wider band: shifts are larger than trends).
    const std::size_t window = std::min(std::max<std::size_t>(options.drift_recent_window, 1),
                                        n - options.season);
    if (window > 0) {
      double recent = 0.0, reference = 0.0;
      for (std::size_t i = n - window; i < n; ++i) recent += history.values[i];
      for (std::size_t i = n - options.season - window; i < n - options.season; ++i) {
        reference += history.values[i];
      }
      if (reference > 0.0) {
        const double ratio = std::clamp(recent / reference, 0.2, 5.0);
        const double anchor = 1.0 + w * (ratio - 1.0);
        for (double& v : out) v *= anchor;
      }
    }
  }
  return out;
}

double forecast_mape(const Series& actuals, ForecastMethod method, std::size_t horizon,
                     std::size_t min_history, const ForecastOptions& options) {
  const std::size_t n = actuals.size();
  if (horizon == 0 || min_history == 0 || n <= min_history) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t split = min_history; split + 1 <= n; split += horizon) {
    Series prefix;
    prefix.start = actuals.start;
    prefix.epoch = actuals.epoch;
    prefix.values.assign(actuals.values.begin(),
                         actuals.values.begin() + static_cast<std::ptrdiff_t>(split));
    const auto predicted = forecast(prefix, horizon, method, options);
    for (std::size_t h = 0; h < horizon && split + h < n; ++h) {
      const double truth = actuals.values[split + h];
      if (truth == 0.0) continue;
      total += std::abs((truth - predicted[h]) / truth);
      ++counted;
    }
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace smn::telemetry
