#include "telemetry/forecast.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.h"

namespace smn::telemetry {

Series extract_series(const BandwidthLog& log, const std::string& src, const std::string& dst,
                      util::SimTime epoch) {
  if (epoch <= 0) throw std::invalid_argument("extract_series: epoch must be positive");
  std::map<util::SimTime, double> points;
  // One id lookup, then a scan over the pair-id column — no per-record
  // string compares.
  if (const auto pair = util::IdSpace::global().find_pair_of_names(src, dst)) {
    const auto timestamps = log.timestamps();
    const auto pairs = log.pair_ids();
    const auto bw = log.bandwidths();
    for (std::size_t i = 0; i < log.record_count(); ++i) {
      if (pairs[i] == *pair) points[timestamps[i]] = bw[i];
    }
  }
  Series series;
  series.epoch = epoch;
  if (points.empty()) return series;
  series.start = points.begin()->first;
  const util::SimTime last = points.rbegin()->first;
  const auto n = static_cast<std::size_t>((last - series.start) / epoch) + 1;
  series.values.assign(n, std::numeric_limits<double>::quiet_NaN());
  for (const auto& [t, v] : points) {
    const auto idx = static_cast<std::size_t>((t - series.start) / epoch);
    if (idx < n) series.values[idx] = v;
  }
  // Fill gaps: linear interpolation between known neighbors.
  std::size_t prev_known = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(series.values[i])) continue;
    if (i > prev_known + 1 && !std::isnan(series.values[prev_known])) {
      const double lo = series.values[prev_known];
      const double hi = series.values[i];
      for (std::size_t j = prev_known + 1; j < i; ++j) {
        const double frac = static_cast<double>(j - prev_known) /
                            static_cast<double>(i - prev_known);
        series.values[j] = lo + frac * (hi - lo);
      }
    }
    prev_known = i;
  }
  // Edge gaps repeat the nearest known value.
  double last_known = 0.0;
  bool seen = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isnan(series.values[i])) {
      if (!seen) {
        for (std::size_t j = 0; j < i; ++j) series.values[j] = series.values[i];
      }
      last_known = series.values[i];
      seen = true;
    } else if (seen) {
      series.values[i] = last_known;
    }
  }
  return series;
}

std::string forecast_method_name(ForecastMethod method) {
  switch (method) {
    case ForecastMethod::kSeasonalNaive:
      return "seasonal-naive";
    case ForecastMethod::kEwma:
      return "ewma";
    case ForecastMethod::kSeasonalGrowth:
      return "seasonal+growth";
  }
  SMN_UNREACHABLE("forecast_method_name: unhandled ForecastMethod");
}

namespace {

std::vector<double> ewma_forecast(const Series& history, std::size_t horizon, double alpha) {
  double level = history.values.empty() ? 0.0 : history.values.front();
  for (const double v : history.values) level = alpha * v + (1.0 - alpha) * level;
  return std::vector<double>(horizon, level);
}

}  // namespace

std::vector<double> forecast(const Series& history, std::size_t horizon, ForecastMethod method,
                             const ForecastOptions& options) {
  if (horizon == 0) return {};
  const std::size_t n = history.size();
  if (method == ForecastMethod::kEwma || n < options.season || options.season == 0) {
    return ewma_forecast(history, horizon, options.ewma_alpha);
  }

  // Seasonal-naive core: value one season ago (wrapping forward for long
  // horizons).
  std::vector<double> out(horizon, 0.0);
  for (std::size_t h = 0; h < horizon; ++h) {
    const std::size_t offset = (h % options.season);
    out[h] = history.values[n - options.season + offset];
  }

  if (method == ForecastMethod::kSeasonalGrowth && n >= 2 * options.season) {
    // Trailing week-over-week growth ratio, clamped to a sane band.
    double recent = 0.0, previous = 0.0;
    for (std::size_t i = n - options.season; i < n; ++i) recent += history.values[i];
    for (std::size_t i = n - 2 * options.season; i < n - options.season; ++i) {
      previous += history.values[i];
    }
    const double growth =
        previous > 0.0 ? std::clamp(recent / previous, 0.5, 2.0) : 1.0;
    for (double& v : out) v *= growth;
  }
  return out;
}

double forecast_mape(const Series& actuals, ForecastMethod method, std::size_t horizon,
                     std::size_t min_history, const ForecastOptions& options) {
  const std::size_t n = actuals.size();
  if (horizon == 0 || min_history == 0 || n <= min_history) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t split = min_history; split + 1 <= n; split += horizon) {
    Series prefix;
    prefix.start = actuals.start;
    prefix.epoch = actuals.epoch;
    prefix.values.assign(actuals.values.begin(),
                         actuals.values.begin() + static_cast<std::ptrdiff_t>(split));
    const auto predicted = forecast(prefix, horizon, method, options);
    for (std::size_t h = 0; h < horizon && split + h < n; ++h) {
      const double truth = actuals.values[split + h];
      if (truth == 0.0) continue;
      total += std::abs((truth - predicted[h]) / truth);
      ++counted;
    }
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace smn::telemetry
