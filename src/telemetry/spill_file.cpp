#include "telemetry/spill_file.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace smn::telemetry {
namespace {

// The format is defined little-endian; columns are written and mapped as
// raw memory, so the host must match. (Every supported target is LE; a
// big-endian port would add a byte-swapping read path here.)
static_assert(std::endian::native == std::endian::little,
              "spill files are little-endian; this host would need a swap path");

constexpr std::uint64_t kMagic = 0x314C495053'4E4D53ull;  // "SMNSPIL1" LE
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 64;

struct SpillHeader {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t reserved = 0;
  std::uint64_t record_count = 0;
  std::int64_t day = 0;
  std::uint64_t off_timestamps = 0;
  std::uint64_t off_bandwidths = 0;
  std::uint64_t off_pairs = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(SpillHeader) == kHeaderBytes, "header layout drifted");

std::uint64_t column_checksum(std::span<const util::SimTime> timestamps,
                              std::span<const double> bandwidths,
                              std::span<const util::PairId> pairs) {
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a(h, timestamps.data(), timestamps.size_bytes());
  h = fnv1a(h, bandwidths.data(), bandwidths.size_bytes());
  h = fnv1a(h, pairs.data(), pairs.size_bytes());
  return h;
}

[[noreturn]] void corrupt(const std::string& path, const char* what) {
  throw std::runtime_error("SpilledSegment: " + path + ": " + what);
}

}  // namespace

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::size_t write_spill_file(const std::string& path, util::SimTime day,
                             std::span<const util::SimTime> timestamps,
                             std::span<const double> bandwidths,
                             std::span<const util::PairId> pairs) {
  const std::size_t n = timestamps.size();
  if (bandwidths.size() != n || pairs.size() != n) {
    throw std::runtime_error("write_spill_file: column lengths differ for " + path);
  }
  SpillHeader header;
  header.record_count = n;
  header.day = day;
  header.off_timestamps = kHeaderBytes;
  header.off_bandwidths = header.off_timestamps + n * sizeof(util::SimTime);
  header.off_pairs = header.off_bandwidths + n * sizeof(double);
  // The PairId column is last so every column start stays 8-byte aligned
  // without padding (u32 tail needs none).
  header.checksum = column_checksum(timestamps, bandwidths, pairs);
  const std::size_t total = header.off_pairs + n * sizeof(util::PairId);

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("write_spill_file: cannot create " + tmp);
  const bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1 &&
                  (n == 0 || (std::fwrite(timestamps.data(), sizeof(util::SimTime), n, f) == n &&
                              std::fwrite(bandwidths.data(), sizeof(double), n, f) == n &&
                              std::fwrite(pairs.data(), sizeof(util::PairId), n, f) == n));
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_spill_file: short write on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_spill_file: cannot rename " + tmp + " -> " + path);
  }
  return total;
}

SpilledSegment SpilledSegment::open(const std::string& path, bool verify_checksum,
                                    bool allow_mmap) {
  SpilledSegment out;
  out.map_ = util::MmapFile::open(path, allow_mmap);
  if (out.map_.size() < kHeaderBytes) corrupt(path, "file shorter than the header");
  SpillHeader header;
  std::memcpy(&header, out.map_.data(), sizeof(header));
  if (header.magic != kMagic) corrupt(path, "bad magic (not a spill file)");
  if (header.version != kVersion) corrupt(path, "unsupported version");
  const std::size_t n = header.record_count;
  const std::size_t expect_bw = header.off_timestamps + n * sizeof(util::SimTime);
  const std::size_t expect_pairs = expect_bw + n * sizeof(double);
  const std::size_t expect_total = expect_pairs + n * sizeof(util::PairId);
  if (header.off_timestamps != kHeaderBytes || header.off_bandwidths != expect_bw ||
      header.off_pairs != expect_pairs || out.map_.size() != expect_total) {
    corrupt(path, "column offsets inconsistent with record count / file size");
  }
  out.records_ = n;
  out.day_ = header.day;
  const std::byte* base = out.map_.data();
  out.timestamps_ = reinterpret_cast<const util::SimTime*>(base + header.off_timestamps);
  out.bandwidths_ = reinterpret_cast<const double*>(base + header.off_bandwidths);
  out.pairs_ = reinterpret_cast<const util::PairId*>(base + header.off_pairs);
  if (verify_checksum &&
      column_checksum(out.timestamps(), out.bandwidths(), out.pair_ids()) != header.checksum) {
    corrupt(path, "checksum mismatch (corrupt columns)");
  }
  return out;
}

}  // namespace smn::telemetry
