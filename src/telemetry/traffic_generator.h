// Synthetic inter-datacenter traffic, substituting for the production
// bandwidth logs §4 analyzes (see DESIGN.md Substitution 2). The generator
// reproduces the distributional features the paper's argument rests on:
//   * heavy-tailed pair volumes — "only a small fraction (<= 10%) of
//     datacenters exchange high volume traffic" [27];
//   * diurnal cycles phase-shifted by source continent (timezones);
//   * weekday/weekend structure;
//   * seasonal spikes on federal holidays — the signal §4 warns
//     time-coarsening can destroy;
//   * multiplicative log-normal noise and long-term growth;
//   * injected regime changes (level shifts, flash crowds, regional
//     evacuations) — the events the closed-loop adaptive controller
//     (DESIGN.md §15) must detect and react to.
//
// Demand is a deterministic function of (pair, epoch) given the seed, so
// ground truth is random-access: coarsening-fidelity experiments can compare
// any reconstruction against the exact fine value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/bandwidth_log.h"
#include "topology/wan.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace smn::telemetry {

/// An injected regime change — the class of events the closed-loop adaptive
/// controller must react to (DESIGN.md §15): demand moves to a new level
/// that no amount of seasonal history predicts. Events compose
/// multiplicatively with the seasonal structure; an empty regime list
/// leaves the generator bit-identical to the pre-regime trace.
enum class RegimeKind {
  /// Fleet-wide demand multiplier (product launch, pricing change): every
  /// pair scales by `factor`.
  kLevelShift,
  /// Demand surge into one continent: pairs whose *destination* sits there.
  kFlashCrowd,
  /// Demand drain of one continent (disaster evacuation): pairs touching it
  /// as source or destination.
  kRegionalEvacuation,
};

struct RegimeEvent {
  RegimeKind kind = RegimeKind::kLevelShift;
  util::SimTime at = 0;
  /// Active for [at, at + duration); 0 = permanent (to the end of the
  /// trace).
  util::SimTime duration = 0;
  /// Demand multiplier while active (> 1 surge, < 1 drain).
  double factor = 2.0;
  /// Scope of kFlashCrowd / kRegionalEvacuation; ignored by kLevelShift.
  std::string continent;
};

struct TrafficConfig {
  util::SimTime start = 0;
  util::SimTime duration = util::kWeek;
  util::SimTime epoch = util::kTelemetryEpoch;
  /// Number of communicating (ordered) datacenter pairs. 0 = all pairs.
  std::size_t active_pairs = 2000;
  /// Fraction of sampled pairs forced to share a continent (traffic
  /// locality). 0 = uniform over all ordered pairs (the default); cloud
  /// traffic studies put most bytes within a continent, so Pareto-frontier
  /// experiments raise this. Ignored when active_pairs == 0.
  double intra_continent_fraction = 0.0;
  /// Fraction of active pairs in the high-volume tier.
  double high_volume_fraction = 0.10;
  double high_volume_mean_gbps = 900.0;
  double low_volume_mean_gbps = 25.0;
  /// Pareto shape for per-pair base volume within a tier (heavier < 2).
  double pareto_shape = 1.8;
  double diurnal_amplitude = 0.35;
  /// Weekend demand multiplier (< 1: enterprise-dominated traffic).
  double weekend_factor = 0.7;
  /// Holiday demand multiplier (> 1: seasonal-event spike).
  double holiday_spike_factor = 2.2;
  /// Sigma of multiplicative log-normal noise per epoch.
  double noise_sigma = 0.08;
  /// Compound annual demand growth.
  double annual_growth = 0.30;
  std::uint64_t seed = 123;
  /// Injected regime changes, applied on top of the seasonal structure.
  /// Validated at construction (positive factor, non-negative duration, a
  /// continent on scoped kinds — std::invalid_argument otherwise).
  std::vector<RegimeEvent> regimes;
};

/// One communicating pair with its latent demand parameters.
struct TrafficPair {
  graph::NodeId src = graph::kInvalidNode;
  graph::NodeId dst = graph::kInvalidNode;
  double base_gbps = 0.0;
  double diurnal_phase = 0.0;  ///< fraction of day, derived from continent
  bool high_volume = false;
};

class TrafficGenerator {
 public:
  TrafficGenerator(const topology::WanTopology& wan, TrafficConfig config);
  /// The generator keeps a reference to the topology; temporaries would dangle.
  TrafficGenerator(topology::WanTopology&&, TrafficConfig) = delete;

  const std::vector<TrafficPair>& pairs() const noexcept { return pairs_; }
  const TrafficConfig& config() const noexcept { return config_; }

  /// Ground-truth demand of pair `index` in the epoch containing `t`
  /// (Gbps). Deterministic in (seed, index, epoch).
  double demand_at(std::size_t index, util::SimTime t) const;

  /// Deterministic demand *without* the noise term — the latent seasonal
  /// curve, useful for testing trend recovery.
  double latent_demand_at(std::size_t index, util::SimTime t) const;

  /// Emits the full log: one record per active pair per epoch over
  /// [start, start + duration), timestamps ascending.
  BandwidthLog generate() const;

  /// Number of epochs covered by the config.
  std::size_t epoch_count() const noexcept;

 private:
  const topology::WanTopology& wan_;
  TrafficConfig config_;
  std::vector<TrafficPair> pairs_;
  /// Per-event, per-pair multiplier (1.0 out of scope), precomputed so the
  /// demand hot path does no string comparisons.
  std::vector<std::vector<double>> regime_scope_;
};

}  // namespace smn::telemetry
