// Time-based coarsening of bandwidth logs (§4):
//
//   "traffic engineering controllers can replace per-epoch demand traces,
//    collected over months, with summary statistics (e.g., mean or 95th
//    percentile bandwidth usage) over fixed smaller time windows. More
//    sophisticated variants ... compute multiple summary statistics over
//    nested time windows to preserve important trends."
//
// TimeCoarsener implements the fixed-window variant; NestedTimeCoarsener
// implements the multi-resolution variant (fine windows for recent data,
// coarse windows for old data). Summaries carry interned PairIds, and the
// coarse log keeps a per-pair index so pair queries are O(windows of that
// pair) instead of a full scan.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/coarsening.h"
#include "telemetry/bandwidth_log.h"
#include "util/sim_time.h"

namespace smn::telemetry {

/// One coarse row: summary statistics of one pair over one window.
struct WindowSummary {
  util::SimTime window_start = 0;
  util::SimTime window_length = 0;
  util::PairId pair = util::kInvalidPairId;
  std::size_t sample_count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Names resolved through the shared id space.
  const std::string& src() const { return util::IdSpace::global().src_name(pair); }
  const std::string& dst() const { return util::IdSpace::global().dst_name(pair); }
};

/// The coarse structure s: a bag of window summaries, queryable per pair.
class CoarseBandwidthLog {
 public:
  void append(WindowSummary summary);

  const std::vector<WindowSummary>& summaries() const noexcept { return summaries_; }
  std::size_t summary_count() const noexcept { return summaries_.size(); }

  /// Summaries for one pair in window order (index lookup, no full scan).
  std::vector<WindowSummary> pair_summaries(util::PairId pair) const;
  std::vector<WindowSummary> pair_summaries(const std::string& src,
                                            const std::string& dst) const;

  /// Sample-weighted mean of a pair across all windows.
  double pair_mean(util::PairId pair) const;
  double pair_mean(const std::string& src, const std::string& dst) const;

  /// Upper bound on a pair's p95 reconstructed from window summaries (max
  /// of window p95s — conservative, as any exact cross-window percentile is
  /// unrecoverable after coarsening).
  double pair_p95_upper(util::PairId pair) const;
  double pair_p95_upper(const std::string& src, const std::string& dst) const;

  /// Reconstructs a per-epoch log by holding each window's mean flat across
  /// its epochs ("acting on s"): downstream TE/planning consumes this as if
  /// it were a fine log.
  BandwidthLog reconstruct(util::SimTime epoch) const;

  /// Approximate serialized size: each summary row stores 5 statistics plus
  /// window bounds and names.
  std::size_t approximate_bytes() const noexcept;

 private:
  /// Rows of `pair` via the index; empty when the pair never appears.
  std::vector<std::uint32_t> rows_of(util::PairId pair) const;

  std::vector<WindowSummary> summaries_;
  std::unordered_map<util::PairId, std::vector<std::uint32_t>> by_pair_;  ///< row index
};

/// Fixed-window time coarsener.
class TimeCoarsener final : public core::Coarsener<BandwidthLog, CoarseBandwidthLog> {
 public:
  /// `window` must be positive; typical values range from 1 hour to 1 month.
  explicit TimeCoarsener(util::SimTime window);

  std::string name() const override;
  CoarseBandwidthLog coarsen(const BandwidthLog& fine) const override;
  std::size_t fine_size(const BandwidthLog& fine) const override { return fine.record_count(); }
  std::size_t coarse_size(const CoarseBandwidthLog& coarse) const override {
    return coarse.summary_count();
  }

  util::SimTime window() const noexcept { return window_; }

 private:
  util::SimTime window_;
};

/// One resolution level of the nested coarsener: records older than
/// `min_age` (relative to `now`) are summarized with `window`.
struct NestedLevel {
  util::SimTime min_age = 0;
  util::SimTime window = 0;
};

/// Multi-resolution coarsener: recent history stays fine-grained, older
/// history gets progressively coarser windows. Levels must be given in
/// increasing min_age order with increasing windows.
class NestedTimeCoarsener final : public core::Coarsener<BandwidthLog, CoarseBandwidthLog> {
 public:
  /// `now` anchors ages; records newer than levels.front().min_age keep a
  /// one-epoch window (i.e. stay effectively uncoarsened).
  NestedTimeCoarsener(std::vector<NestedLevel> levels, util::SimTime now,
                      util::SimTime epoch = util::kTelemetryEpoch);

  /// The default ladder used by the SMN history store: epochs for the last
  /// day, hours for the last week, days for the last quarter, weeks beyond.
  static NestedTimeCoarsener standard_ladder(util::SimTime now);

  std::string name() const override;
  CoarseBandwidthLog coarsen(const BandwidthLog& fine) const override;
  std::size_t fine_size(const BandwidthLog& fine) const override { return fine.record_count(); }
  std::size_t coarse_size(const CoarseBandwidthLog& coarse) const override {
    return coarse.summary_count();
  }

  /// Window applied to a record of age `age`.
  util::SimTime window_for_age(util::SimTime age) const noexcept;

 private:
  std::vector<NestedLevel> levels_;
  util::SimTime now_;
  util::SimTime epoch_;
};

}  // namespace smn::telemetry
