#include "telemetry/log_store.h"

#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "telemetry/spill_file.h"
#include "util/contracts.h"
#include "util/stats.h"

namespace smn::telemetry {
namespace {

/// Samples per (pair, day) at the standard five-minute telemetry epoch;
/// accumulators reserve this up front so a full day appends without
/// reallocation (sparser pairs waste at most one day-sized buffer).
constexpr std::size_t kSamplesPerDayReserve =
    static_cast<std::size_t>(util::kDay / util::kTelemetryEpoch);

/// Exclusivity guard of a spill directory: one LOCK file per live store.
constexpr const char* kSpillLockName = "LOCK";

/// Parses one unsigned decimal run of `name` starting at `*pos`, leaving
/// `*pos` just past it. Returns false when no digits are present.
bool parse_number(const std::string& name, std::size_t* pos, std::uint64_t* value) {
  const char* begin = name.data() + *pos;
  const char* end = name.data() + name.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *value);
  if (ec != std::errc{} || ptr == begin) return false;
  *pos += static_cast<std::size_t>(ptr - begin);
  return true;
}

/// Parses a spill filename "shard<s>_day<d>_gen<g>.col". Anything else
/// (the LOCK file, a leftover .tmp) is not a spill segment.
bool parse_spill_name(const std::string& name, std::size_t* shard, util::SimTime* day,
                      std::size_t* gen) {
  std::size_t pos = 0;
  std::uint64_t s = 0;
  std::uint64_t d = 0;
  std::uint64_t g = 0;
  const auto expect = [&](std::string_view literal) {
    if (name.compare(pos, literal.size(), literal) != 0) return false;
    pos += literal.size();
    return true;
  };
  if (!expect("shard") || !parse_number(name, &pos, &s)) return false;
  if (!expect("_day") || !parse_number(name, &pos, &d)) return false;
  if (!expect("_gen") || !parse_number(name, &pos, &g)) return false;
  if (!expect(".col") || pos != name.size()) return false;
  *shard = static_cast<std::size_t>(s);
  *day = static_cast<util::SimTime>(d);
  *gen = static_cast<std::size_t>(g);
  return true;
}

}  // namespace

BandwidthLogStore::BandwidthLogStore(const LogStoreConfig& config)
    : window_(config.streaming_window),
      drift_alpha_(config.drift_alpha),
      spill_dir_(config.spill_dir),
      shards_(std::max<std::size_t>(1, config.shards)),
      core_(std::make_shared<ViewCore>(config.spill_verify_checksum)) {
  if (window_ <= 0) {
    throw std::invalid_argument("BandwidthLogStore: streaming window must be positive");
  }
  if (!spill_dir_.empty()) {
    // Fail construction, not the first retention pass, when the cold tier
    // cannot exist.
    std::error_code ec;
    std::filesystem::create_directories(spill_dir_, ec);
    if (ec || !std::filesystem::is_directory(spill_dir_)) {
      throw std::invalid_argument("BandwidthLogStore: cannot create spill_dir " + spill_dir_);
    }
  }
  SMN_CHECK(drift_alpha_ > 0.0 && drift_alpha_ <= 1.0,
            "drift EWMA alpha must be in (0, 1]");
  SMN_CHECK(shards_.size() <= 0xFFFFu, "shard ids are staged as 16-bit");
  std::size_t threads = config.ingest_threads;
  if (threads == 0) {
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    threads = std::min(shards_.size(), hw);
  }
  threads = std::min(threads, shards_.size());
  if (threads > 1) pool_ = std::make_unique<util::ThreadPool>(threads);
  // Last, so a failed contract above never leaves a stray lockfile behind.
  if (spill_enabled()) acquire_spill_lock(config.spill_steal_lock);
}

BandwidthLogStore::~BandwidthLogStore() {
  if (holds_spill_lock_) {
    std::error_code ec;
    std::filesystem::remove(std::filesystem::path(spill_dir_) / kSpillLockName, ec);
  }
}

void BandwidthLogStore::acquire_spill_lock(bool steal) {
  const std::string lock_path = (std::filesystem::path(spill_dir_) / kSpillLockName).string();
  std::error_code ec;
  const bool already_locked = std::filesystem::exists(lock_path, ec);
  SMN_CHECK(steal || !already_locked,
            "spill_dir already carries a LOCK file — each spill directory is private to "
            "one live store; a failover adopter must take it over explicitly via "
            "LogStoreConfig::spill_steal_lock");
  std::FILE* f = std::fopen(lock_path.c_str(), "wb");
  if (f == nullptr) {
    throw std::invalid_argument("BandwidthLogStore: cannot write lockfile " + lock_path);
  }
  const std::string pid = std::to_string(static_cast<long long>(::getpid())) + "\n";
  const bool ok = std::fwrite(pid.data(), 1, pid.size(), f) == pid.size();
  if (std::fclose(f) != 0 || !ok) {
    throw std::invalid_argument("BandwidthLogStore: short write on lockfile " + lock_path);
  }
  holds_spill_lock_ = true;
}

std::size_t BandwidthLogStore::recover_spill_files() {
  SMN_CHECK(spill_enabled(), "recover_spill_files needs a configured spill_dir");
  struct FoundFile {
    std::size_t shard = 0;
    util::SimTime day = 0;
    std::size_t gen = 0;
    std::string path;
  };
  std::vector<FoundFile> found;
  for (const auto& entry : std::filesystem::directory_iterator(spill_dir_)) {
    if (!entry.is_regular_file()) continue;
    FoundFile f;
    const std::string name = entry.path().filename().string();
    if (!parse_spill_name(name, &f.shard, &f.day, &f.gen)) continue;
    SMN_CHECK(f.shard < shards_.size(),
              "spill file names a shard beyond this store's shard count — adopt with the "
              "dead store's shard configuration (PairId routing depends on it)");
    f.path = entry.path().string();
    found.push_back(std::move(f));
  }
  // Directory iteration order is filesystem-dependent; generation order is
  // ingest order and must be reconstructed deterministically.
  std::sort(found.begin(), found.end(), [](const FoundFile& a, const FoundFile& b) {
    if (a.shard != b.shard) return a.shard < b.shard;
    if (a.day != b.day) return a.day < b.day;
    return a.gen < b.gen;
  });
  std::size_t records = 0;
  for (const FoundFile& f : found) {
    // Validate up front: a truncated or corrupt file must fail the adoption,
    // not a later fine_range() merge.
    const SpilledSegment seg = SpilledSegment::open(f.path, /*verify_checksum=*/true);
    SMN_CHECK(seg.day() == f.day, "spill filename day disagrees with its header");
    Shard& shard = shards_[f.shard];
    std::lock_guard<std::mutex> lock(shard.mutex);
    std::vector<SpillEntry>& generations = shard.spilled[f.day];
    SMN_CHECK(generations.size() == f.gen,
              "spill generations are not dense — the cold tier is already populated or a "
              "generation file is missing");
    generations.push_back(SpillEntry{f.path, seg.record_count(), seg.file_bytes()});
    records += seg.record_count();
  }
  return records;
}

std::uint32_t BandwidthLogStore::slot_of(Shard& shard, util::PairId pair) {
  if (pair >= shard.local_of.size()) shard.local_of.resize(pair + 1, kNoSlot);
  std::uint32_t slot = shard.local_of[pair];
  if (slot == kNoSlot) {
    slot = static_cast<std::uint32_t>(shard.pairs.size());
    shard.local_of[pair] = slot;
    shard.pairs.push_back(pair);
    shard.drift.emplace_back();
  }
  return slot;
}

BandwidthLogStore::DaySlab& BandwidthLogStore::open_slab_locked(Shard& shard,
                                                                util::SimTime day) {
  if (day != shard.open_day) {
    std::shared_ptr<DaySlab>& slot = shard.days[day];
    if (!slot) slot = std::make_shared<DaySlab>();
    shard.open = slot.get();
    shard.open_day = day;
  }
  return *shard.open;
}

void BandwidthLogStore::append_locked(Shard& shard, util::SimTime timestamp,
                                      util::PairId pair, double bw_gbps) {
  SMN_DCHECK(pair != util::kInvalidPairId, "ingest with an invalid PairId");
  SMN_DCHECK(timestamp >= 0, "negative timestamps break day-segment keying");
  const util::SimTime day = (timestamp / util::kDay) * util::kDay;
  DaySlab& slab = open_slab_locked(shard, day);
  slab.seg.append(timestamp, pair, bw_gbps);
  accumulate_locked(shard, slab, timestamp, pair, bw_gbps);
}

void BandwidthLogStore::accumulate_locked(Shard& shard, DaySlab& slab,
                                          util::SimTime timestamp, util::PairId pair,
                                          double bw_gbps) {
  const std::uint32_t slot = slot_of(shard, pair);
  if (slot >= slab.accums.size()) slab.accums.resize(shard.pairs.size());
  PairDayAccum& acc = slab.accums[slot];
  // A record belongs to the open run iff it falls inside the run's window
  // (run_window stores window starts, so the membership test is two
  // comparisons). Only window transitions and out-of-order arrivals pay
  // the divide by the runtime window — for in-order streams that is once
  // per (pair, window), not once per record.
  const bool in_open_run = !acc.run_window.empty() &&
                           timestamp >= acc.run_window.back() &&
                           timestamp - acc.run_window.back() < window_;
  if (!in_open_run) {
    if (acc.samples.empty()) {
      acc.samples.reserve(kSamplesPerDayReserve);
      acc.run_window.reserve(
          static_cast<std::size_t>(std::max<util::SimTime>(1, util::kDay / window_)));
      acc.run_begin.reserve(acc.run_window.capacity());
    }
    acc.run_window.push_back((timestamp / window_) * window_);
    acc.run_begin.push_back(static_cast<std::uint32_t>(acc.samples.size()));
  }
  acc.samples.push_back(bw_gbps);

  if (shard.drift_enabled) {
    PairDrift& d = shard.drift[slot];
    if (!d.has_observed) {
      d.observed = bw_gbps;
      d.has_observed = true;
    } else {
      d.observed += drift_alpha_ * (bw_gbps - d.observed);
    }
  }
}

void BandwidthLogStore::ingest(util::SimTime timestamp, util::PairId pair, double bw_gbps) {
  Shard& shard = shards_[shard_of(pair)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  append_locked(shard, timestamp, pair, bw_gbps);
}

void BandwidthLogStore::append_batch(Shard& shard, const StagedColumns& records) {
  const auto timestamps = records.timestamps;
  const auto pairs = records.pairs;
  const auto bw = records.bw_gbps;
  const std::size_t n = timestamps.size();
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::size_t j = 0;
  while (j < n) {
    // Maximal same-day run: the whole run lands in one slab, so its columns
    // copy in bulk (chunk-sized range copies) instead of a capacity-checked
    // push per row; only the accumulator/drift state updates per record.
    const util::SimTime day = (timestamps[j] / util::kDay) * util::kDay;
    std::size_t k = j + 1;
    while (k < n && timestamps[k] - day >= 0 && timestamps[k] - day < util::kDay) ++k;
    DaySlab& slab = open_slab_locked(shard, day);
    slab.seg.append_columns(timestamps.subspan(j, k - j), pairs.subspan(j, k - j),
                            bw.subspan(j, k - j));
    for (std::size_t i = j; i < k; ++i) {
      accumulate_locked(shard, slab, timestamps[i], pairs[i], bw[i]);
    }
    j = k;
  }
}

void BandwidthLogStore::ingest(const BandwidthLog& log) {
  const std::size_t n = log.record_count();
  if (n == 0) return;
  const auto timestamps = log.timestamps();
  const auto pairs = log.pair_ids();
  const auto bw = log.bandwidths();
  if (shards_.size() == 1) {
    Shard& shard = shards_[0];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t i = 0; i < n; ++i) {
      append_locked(shard, timestamps[i], pairs[i], bw[i]);
    }
    return;
  }
  // Counting partition into per-shard contiguous staging runs: one pass
  // over the pair column to count, one pass to scatter record values
  // (recomputing the two-cycle hash beats memoizing it — a memo array is
  // more memory traffic than the multiply). The per-shard append loops then
  // read their inputs sequentially instead of gathering the source columns
  // through an index array — the batch touches each source cache line once.
  // The staging buffer is raw new[] (trivial type): records are written
  // exactly once, with no value-initialization pass over the whole buffer.
  // No locks are held here; each append task takes only its shard's lock.
  std::vector<std::uint32_t> offset(shards_.size() + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++offset[shard_of(pairs[i]) + 1];
  for (std::size_t s = 1; s <= shards_.size(); ++s) offset[s] += offset[s - 1];
  const std::unique_ptr<util::SimTime[]> st_ts(new util::SimTime[n]);
  const std::unique_ptr<util::PairId[]> st_pair(new util::PairId[n]);
  const std::unique_ptr<double[]> st_bw(new double[n]);
  std::vector<std::uint32_t> fill(offset.begin(), offset.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t d = fill[shard_of(pairs[i])]++;
    st_ts[d] = timestamps[i];
    st_pair[d] = pairs[i];
    st_bw[d] = bw[i];
  }
  for_each_shard([&](std::size_t s) {
    const std::size_t b = offset[s];
    const std::size_t len = offset[s + 1] - b;
    append_batch(shards_[s],
                 StagedColumns{{st_ts.get() + b, len},
                               {st_pair.get() + b, len},
                               {st_bw.get() + b, len}});
  });
}

void BandwidthLogStore::seal_day_locked(Shard& shard, util::SimTime day,
                                        std::vector<WindowSummary>* out) {
  const auto it = shard.days.find(day);
  if (it == shard.days.end()) return;
  DaySlab& slab = *it->second;
  std::vector<std::uint32_t> run_order;
  std::vector<double> scratch;
  for (std::size_t slot = 0; slot < slab.accums.size(); ++slot) {
    const PairDayAccum& acc = slab.accums[slot];
    const std::size_t nruns = acc.run_window.size();
    if (nruns == 0) continue;
    // Group the runs of each window in run (= record) order, so the sample
    // sequence fed to summarize() matches a batch pass over the segment.
    run_order.resize(nruns);
    std::iota(run_order.begin(), run_order.end(), 0u);
    std::stable_sort(run_order.begin(), run_order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return acc.run_window[a] < acc.run_window[b];
                     });
    std::size_t k = 0;
    while (k < nruns) {
      const util::SimTime window_start = acc.run_window[run_order[k]];
      scratch.clear();
      util::Summary stats;
      std::size_t group = k;
      while (group < nruns && acc.run_window[run_order[group]] == window_start) ++group;
      if (group == k + 1) {
        // Single run (in-order stream): summarize straight off the buffer.
        const std::uint32_t b = acc.run_begin[run_order[k]];
        const std::uint32_t e = run_order[k] + 1 < nruns
                                    ? acc.run_begin[run_order[k] + 1]
                                    : static_cast<std::uint32_t>(acc.samples.size());
        stats = util::summarize(std::span<const double>(acc.samples).subspan(b, e - b));
      } else {
        for (std::size_t g = k; g < group; ++g) {
          const std::uint32_t r = run_order[g];
          const std::uint32_t b = acc.run_begin[r];
          const std::uint32_t e = r + 1 < nruns
                                      ? acc.run_begin[r + 1]
                                      : static_cast<std::uint32_t>(acc.samples.size());
          scratch.insert(scratch.end(), acc.samples.begin() + b, acc.samples.begin() + e);
        }
        stats = util::summarize(scratch);
      }
      k = group;
      WindowSummary summary;
      summary.pair = shard.pairs[slot];
      summary.window_start = window_start;
      summary.window_length = window_;
      summary.sample_count = stats.count;
      summary.mean = stats.mean;
      summary.p50 = stats.p50;
      summary.p95 = stats.p95;
      summary.min = stats.min;
      summary.max = stats.max;
      out->push_back(summary);
    }
  }
}

void BandwidthLogStore::batch_day_locked(Shard& shard, util::SimTime day,
                                         const TimeCoarsener& coarsener,
                                         std::vector<WindowSummary>* out) {
  const auto it = shard.days.find(day);
  if (it == shard.days.end()) return;
  // Seal-time copy: the coarsener wants contiguous columns, and batch
  // coarsening runs once per retired (shard, day), off the ingest path.
  const BandwidthLog seg = it->second->seg.materialize(it->second->seg.rows());
  const CoarseBandwidthLog summarized = coarsener.coarsen(seg);
  out->assign(summarized.summaries().begin(), summarized.summaries().end());
}

void BandwidthLogStore::spill_day_locked(std::size_t s, Shard& shard, util::SimTime day) {
  const auto it = shard.days.find(day);
  if (it == shard.days.end() || it->second->seg.empty()) return;
  const BandwidthLog seg = it->second->seg.materialize(it->second->seg.rows());
  std::vector<SpillEntry>& generations = shard.spilled[day];
  // Re-ingest after an earlier seal produces a second generation; file
  // names carry the generation index so nothing is overwritten.
  SpillEntry entry;
  entry.path = (std::filesystem::path(spill_dir_) /
                ("shard" + std::to_string(s) + "_day" + std::to_string(day) + "_gen" +
                 std::to_string(generations.size()) + ".col"))
                   .string();
  entry.records = seg.record_count();
  entry.file_bytes =
      write_spill_file(entry.path, day, seg.timestamps(), seg.bandwidths(), seg.pair_ids());
  generations.push_back(std::move(entry));
}

std::size_t BandwidthLogStore::retire_shard_day(std::size_t s, util::SimTime day,
                                                bool streaming,
                                                const TimeCoarsener& coarsener,
                                                std::vector<WindowSummary>* out) {
  Shard& shard = shards_[s];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (streaming) {
    seal_day_locked(shard, day, out);
  } else {
    batch_day_locked(shard, day, coarsener, out);
  }
  if (spill_enabled()) spill_day_locked(s, shard, day);
  const auto it = shard.days.find(day);
  if (it == shard.days.end()) return 0;
  const std::size_t retired = it->second->seg.rows();
  if (shard.open == it->second.get()) {
    shard.open = nullptr;
    shard.open_day = kNoDay;
  }
  // Erasing drops the map's reference only; a ReadView holding the slab
  // keeps serving it unchanged (no writer ever touches it again).
  shard.days.erase(it);
  return retired;
}

std::size_t BandwidthLogStore::coarsen_older_than(util::SimTime now, util::SimTime max_fine_age,
                                                  util::SimTime window) {
  SMN_CHECK(window > 0, "coarsening window must be positive");
  // One retention pass at a time: the pass is the single writer of the
  // epoch-published coarse row table (and of coarse_).
  std::lock_guard<std::mutex> retention_lock(retention_mutex_);
  // Sealing from accumulators is only valid when they were built for this
  // window and windows never straddle the day-segment boundary.
  const bool streaming = (window == window_) && (util::kDay % window_ == 0);
  const TimeCoarsener coarsener(window);

  // Due days, union across shards, ascending — the single-shard store
  // retired segments in day order, so the merged output must too.
  std::vector<util::SimTime> due;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [day, slab] : shard.days) {
      if (now - (day + util::kDay) >= max_fine_age) due.push_back(day);
    }
  }
  std::sort(due.begin(), due.end());
  due.erase(std::unique(due.begin(), due.end()), due.end());

  std::size_t retired = 0;
  std::vector<std::vector<WindowSummary>> parts(shards_.size());
  std::vector<std::size_t> shard_retired(shards_.size(), 0);
  for (const util::SimTime day : due) {
    for (auto& p : parts) p.clear();
    // Each shard retires the day in one critical section — summarize,
    // spill, erase under a single mutex acquisition — so a record ingested
    // concurrently into a due day is either coarsened with the rest or
    // reopens the day, never dropped between a seal and a later erase.
    // Each task writes only its own parts/shard_retired slot.
    for_each_shard([&](std::size_t s) {
      shard_retired[s] = retire_shard_day(s, day, streaming, coarsener, &parts[s]);
    });
    for (const std::size_t r : shard_retired) retired += r;
    // Merge in the single-shard emission order: (src name, dst name,
    // window start). (pair, window) is unique across shards, so a plain
    // sort fully determines the order.
    std::size_t total = 0;
    for (const auto& p : parts) total += p.size();
    std::vector<WindowSummary> merged;
    merged.reserve(total);
    for (const auto& p : parts) merged.insert(merged.end(), p.begin(), p.end());
    std::vector<util::PairId> day_pairs;
    day_pairs.reserve(merged.size());
    for (const WindowSummary& summary : merged) day_pairs.push_back(summary.pair);
    const auto rank = pair_name_ranks(day_pairs);
    std::sort(merged.begin(), merged.end(),
              [&](const WindowSummary& a, const WindowSummary& b) {
                const auto ra = rank.at(a.pair);
                const auto rb = rank.at(b.pair);
                if (ra != rb) return ra < rb;
                return a.window_start < b.window_start;
              });
    for (const WindowSummary& summary : merged) {
      coarse_.append(summary);
      // Lockstep publication into the snapshot-readable twin: a ReadView's
      // coarse_limit_ always names a prefix of the same emission order.
      core_->coarse_rows.push_back(summary);
    }
  }
  return retired;
}

BandwidthLogStore::ReadView BandwidthLogStore::read_view() const {
  ReadView view;
  view.core_ = core_;
  view.shards_.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    ReadView::ShardView& sv = view.shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    sv.resident.reserve(shard.days.size());
    for (const auto& [day, slab] : shard.days) {
      ReadView::ResidentDay rd;
      rd.day = day;
      rd.slab = slab;
      rd.rows = slab->seg.rows();  // the per-slab high-water mark
      if (rd.rows > 0) {
        view.high_water_ = std::max(view.high_water_, slab->seg.timestamp_at(rd.rows - 1));
      }
      view.fine_rows_ += rd.rows;
      sv.resident.push_back(std::move(rd));
    }
    sv.spilled.reserve(shard.spilled.size());
    for (const auto& [day, generations] : shard.spilled) {
      for (const SpillEntry& entry : generations) view.fine_rows_ += entry.records;
      view.high_water_ = std::max(view.high_water_, day + util::kDay - 1);
      sv.spilled.emplace_back(day, generations);
    }
  }
  // Coarse mark AFTER the shard walk: a day retired mid-acquisition is
  // covered by its pinned slab or new spill generation when the shard was
  // walked first, and by the coarse prefix otherwise — data is never lost
  // to a view, though a concurrent retention can make it visible on both
  // the fine and coarse surface (see the ReadView class comment).
  view.coarse_limit_ = core_->coarse_rows.size();
  // Interner generation last: every pair id published to any captured row
  // or summary was interned before it, so it decodes within this snapshot.
  view.ids_ = util::IdSpace::global().snapshot();
  core_->views_acquired.fetch_add(1, std::memory_order_relaxed);
  core_->views_live.fetch_add(1, std::memory_order_relaxed);
  return view;
}

BandwidthLogStore::ReadView::~ReadView() {
  if (core_) core_->views_live.fetch_sub(1, std::memory_order_relaxed);
}

const WindowSummary& BandwidthLogStore::ReadView::coarse_at(std::size_t i) const {
  SMN_CHECK(i < coarse_limit_, "coarse_at beyond this view's snapshot");
  return core_->coarse_rows[i];
}

BandwidthLog BandwidthLogStore::ReadView::fine_range(util::SimTime begin,
                                                     util::SimTime end) const {
  BandwidthLog out;
  const auto day_in_range = [&](util::SimTime day) {
    return day < end && day + util::kDay > begin;
  };
  const auto emit_cold = [&](const std::vector<SpillEntry>& generations) {
    for (const SpillEntry& entry : generations) {
      const SpilledSegment seg = SpilledSegment::open(entry.path, core_->verify_checksum);
      core_->spill_maps.fetch_add(1, std::memory_order_relaxed);
      out.append_time_filtered(seg.timestamps(), seg.pair_ids(), seg.bandwidths(), begin, end);
      core_->spill_unmaps.fetch_add(1, std::memory_order_relaxed);
    }
  };
  const auto emit_warm = [&](const ResidentDay& rd) {
    rd.slab->seg.emit_time_filtered(&out, rd.rows, begin, end);
  };
  for (const ShardView& shard : shards_) {
    // Two-iterator merge over the cold tier and the resident slabs, in
    // ascending day order. On a day present in both (re-ingest after a
    // seal), spilled generations precede the resident slab: that is their
    // ingest order, which the stable sort below must be able to recover
    // for equal (timestamp, pair) keys.
    std::size_t cold = 0;
    std::size_t warm = 0;
    while (cold < shard.spilled.size() || warm < shard.resident.size()) {
      if (warm == shard.resident.size() ||
          (cold < shard.spilled.size() &&
           shard.spilled[cold].first <= shard.resident[warm].day)) {
        // Out-of-range spilled days are skipped by key alone — no map, no
        // checksum pass, so point queries touch only the days they cover.
        if (day_in_range(shard.spilled[cold].first)) emit_cold(shard.spilled[cold].second);
        if (warm < shard.resident.size() &&
            shard.resident[warm].day == shard.spilled[cold].first) {
          if (day_in_range(shard.resident[warm].day)) emit_warm(shard.resident[warm]);
          ++warm;
        }
        ++cold;
      } else {
        if (day_in_range(shard.resident[warm].day)) emit_warm(shard.resident[warm]);
        ++warm;
      }
    }
  }
  // Stable sort by (timestamp, name rank): rows with equal keys share a
  // pair, hence a shard, hence their ingest order — so the merged output is
  // byte-identical to the single-shard store's.
  out.sort();
  return out;
}

BandwidthLog BandwidthLogStore::fine_range(util::SimTime begin, util::SimTime end) const {
  return read_view().fine_range(begin, end);
}

LogStoreStats BandwidthLogStore::stats() const {
  LogStoreStats s;
  s.shard_records.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    std::size_t records = 0;
    for (const auto& [day, slab] : shard.days) {
      records += slab->seg.rows();
      s.fine_bytes += slab->seg.approximate_listing_bytes();
      s.resident_bytes += slab->seg.memory_bytes();
      for (const PairDayAccum& acc : slab->accums) s.open_window_samples += acc.samples.size();
    }
    for (const auto& [day, generations] : shard.spilled) {
      s.spilled_files += generations.size();
      for (const SpillEntry& entry : generations) {
        s.spilled_records += entry.records;
        s.spilled_bytes += entry.file_bytes;
      }
    }
    s.shard_records.push_back(records);
    s.fine_records += records;
  }
  s.spill_maps = core_->spill_maps.load(std::memory_order_relaxed);
  s.spill_unmaps = core_->spill_unmaps.load(std::memory_order_relaxed);
  s.views_acquired = core_->views_acquired.load(std::memory_order_relaxed);
  s.views_live = core_->views_live.load(std::memory_order_relaxed);
  // Coarse footprint off the epoch-published row table (safe against a
  // concurrent retention pass), with the same Listing-style estimate
  // CoarseBandwidthLog::approximate_bytes uses: window bounds (2 x 16) +
  // five statistics (~6 each) + names + commas.
  const util::IdSpace& ids = util::IdSpace::global();
  std::unordered_map<util::PairId, std::size_t> name_bytes;
  const std::size_t n_coarse = core_->coarse_rows.size();
  s.coarse_summaries = n_coarse;
  for (std::size_t i = 0; i < n_coarse; ++i) {
    const WindowSummary& sum = core_->coarse_rows[i];
    auto it = name_bytes.find(sum.pair);
    if (it == name_bytes.end()) {
      it = name_bytes
               .emplace(sum.pair, ids.src_name(sum.pair).size() + ids.dst_name(sum.pair).size())
               .first;
    }
    s.coarse_bytes += 32 + 5 * 6 + it->second + 8;
  }
  return s;
}

void BandwidthLogStore::set_demand_baseline(const DemandBaseline& baseline) {
  const bool enable = !baseline.entries.empty();
  std::vector<std::vector<std::pair<util::PairId, double>>> per_shard(shards_.size());
  for (const auto& [pair, gbps] : baseline.entries) {
    SMN_CHECK(pair != util::kInvalidPairId, "baseline entry with an invalid PairId");
    per_shard[shard_of(pair)].emplace_back(pair, gbps);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (PairDrift& d : shard.drift) d = PairDrift{};
    shard.drift_enabled = enable;
    for (const auto& [pair, gbps] : per_shard[s]) {
      const std::uint32_t slot = slot_of(shard, pair);
      shard.drift[slot].expected = gbps;
      shard.drift[slot].has_expected = true;
    }
  }
  baseline_set_ = enable;
}

DriftReport BandwidthLogStore::drift() const {
  DriftReport report;
  report.has_baseline = baseline_set_;
  if (!baseline_set_) return report;
  struct Term {
    util::PairId pair;
    double observed;
    double expected;
    bool has_observed;
    bool has_expected;
  };
  std::vector<Term> terms;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t slot = 0; slot < shard.drift.size(); ++slot) {
      const PairDrift& d = shard.drift[slot];
      if (!d.has_observed && !d.has_expected) continue;
      terms.push_back({shard.pairs[slot], d.observed, d.expected, d.has_observed,
                       d.has_expected});
    }
  }
  // Fold in PairId order: the float sums come out bit-identical for any
  // shard count or thread count.
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.pair < b.pair; });
  for (const Term& t : terms) {
    if (t.has_expected) report.baseline_gbps += t.expected;
    if (!t.has_observed) continue;  // no post-baseline evidence yet
    ++report.pairs_tracked;
    report.deviation_gbps +=
        t.has_expected ? std::abs(t.observed - t.expected) : t.observed;
  }
  if (report.baseline_gbps > 0.0) {
    report.level = report.deviation_gbps / report.baseline_gbps;
  } else {
    report.level =
        report.deviation_gbps > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return report;
}

void BandwidthLogStore::for_each_shard(const std::function<void(std::size_t)>& fn) {
  if (pool_ && shards_.size() > 1) {
    pool_->parallel_for(0, shards_.size(), fn);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) fn(s);
  }
}

}  // namespace smn::telemetry
