#include "telemetry/log_store.h"

namespace smn::telemetry {

void BandwidthLogStore::ingest(const BandwidthLog& log) {
  for (const BandwidthRecord& r : log.records()) {
    const util::SimTime day = (r.timestamp / util::kDay) * util::kDay;
    segments_[day].append(r);
  }
}

std::size_t BandwidthLogStore::coarsen_older_than(util::SimTime now, util::SimTime max_fine_age,
                                                  util::SimTime window) {
  const TimeCoarsener coarsener(window);
  std::size_t retired = 0;
  for (auto it = segments_.begin(); it != segments_.end();) {
    const util::SimTime segment_end = it->first + util::kDay;
    if (now - segment_end < max_fine_age) {
      ++it;
      continue;
    }
    const CoarseBandwidthLog summarized = coarsener.coarsen(it->second);
    for (const WindowSummary& s : summarized.summaries()) coarse_.append(s);
    retired += it->second.record_count();
    it = segments_.erase(it);
  }
  return retired;
}

BandwidthLog BandwidthLogStore::fine_range(util::SimTime begin, util::SimTime end) const {
  BandwidthLog out;
  for (const auto& [day, segment] : segments_) {
    if (day >= end || day + util::kDay <= begin) continue;
    for (const BandwidthRecord& r : segment.records()) {
      if (r.timestamp >= begin && r.timestamp < end) out.append(r);
    }
  }
  out.sort();
  return out;
}

LogStoreStats BandwidthLogStore::stats() const noexcept {
  LogStoreStats s;
  for (const auto& [_, segment] : segments_) {
    s.fine_records += segment.record_count();
    s.fine_bytes += segment.approximate_bytes();
  }
  s.coarse_summaries = coarse_.summary_count();
  s.coarse_bytes = coarse_.approximate_bytes();
  return s;
}

}  // namespace smn::telemetry
