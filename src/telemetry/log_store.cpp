#include "telemetry/log_store.h"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.h"
#include "util/stats.h"

namespace smn::telemetry {

BandwidthLogStore::BandwidthLogStore(util::SimTime streaming_window) : window_(streaming_window) {
  if (window_ <= 0) {
    throw std::invalid_argument("BandwidthLogStore: streaming window must be positive");
  }
}

void BandwidthLogStore::ingest(util::SimTime timestamp, util::PairId pair, double bw_gbps) {
  SMN_DCHECK(pair != util::kInvalidPairId, "ingest with an invalid PairId");
  SMN_DCHECK(timestamp >= 0, "negative timestamps break day-segment keying");
  const util::SimTime day = (timestamp / util::kDay) * util::kDay;
  segments_[day].append(timestamp, pair, bw_gbps);
  accums_[day][accum_key(pair, (timestamp / window_) * window_, window_)].push_back(bw_gbps);
}

void BandwidthLogStore::ingest(const BandwidthLog& log) {
  const auto timestamps = log.timestamps();
  const auto pairs = log.pair_ids();
  const auto bw = log.bandwidths();
  for (std::size_t i = 0; i < log.record_count(); ++i) {
    ingest(timestamps[i], pairs[i], bw[i]);
  }
}

void BandwidthLogStore::seal_day(util::SimTime day, DayAccumulators& accums) {
  SMN_DCHECK(segments_.find(day) != segments_.end(),
             "sealing a day with no fine segment");
  // Emit in the batch coarsener's order — (src name, dst name, window
  // start) — so sealed output is byte-identical to a batch pass.
  std::vector<std::uint64_t> keys;
  keys.reserve(accums.size());
  for (const auto& [key, _] : accums) keys.push_back(key);
  const auto rank = pair_name_ranks(segments_.at(day).pair_ids());
  std::sort(keys.begin(), keys.end(), [&](std::uint64_t a, std::uint64_t b) {
    const auto pa = rank.at(static_cast<util::PairId>(a >> 32));
    const auto pb = rank.at(static_cast<util::PairId>(b >> 32));
    if (pa != pb) return pa < pb;
    return (a & 0xFFFFFFFFu) < (b & 0xFFFFFFFFu);
  });
  for (const std::uint64_t key : keys) {
    const util::Summary stats = util::summarize(accums.at(key));
    WindowSummary s;
    s.pair = static_cast<util::PairId>(key >> 32);
    s.window_start = static_cast<util::SimTime>(key & 0xFFFFFFFFu) * window_;
    s.window_length = window_;
    s.sample_count = stats.count;
    s.mean = stats.mean;
    s.p50 = stats.p50;
    s.p95 = stats.p95;
    s.min = stats.min;
    s.max = stats.max;
    coarse_.append(s);
  }
}

std::size_t BandwidthLogStore::coarsen_older_than(util::SimTime now, util::SimTime max_fine_age,
                                                  util::SimTime window) {
  SMN_CHECK(window > 0, "coarsening window must be positive");
  // Sealing from accumulators is only valid when they were built for this
  // window and windows never straddle the day-segment boundary.
  const bool streaming = (window == window_) && (util::kDay % window_ == 0);
  const TimeCoarsener coarsener(window);
  std::size_t retired = 0;
  for (auto it = segments_.begin(); it != segments_.end();) {
    const util::SimTime segment_end = it->first + util::kDay;
    if (now - segment_end < max_fine_age) {
      ++it;
      continue;
    }
    const auto accum_it = accums_.find(it->first);
    if (streaming && accum_it != accums_.end()) {
      seal_day(it->first, accum_it->second);
    } else {
      const CoarseBandwidthLog summarized = coarsener.coarsen(it->second);
      for (const WindowSummary& s : summarized.summaries()) coarse_.append(s);
    }
    if (accum_it != accums_.end()) accums_.erase(accum_it);
    retired += it->second.record_count();
    it = segments_.erase(it);
  }
  return retired;
}

BandwidthLog BandwidthLogStore::fine_range(util::SimTime begin, util::SimTime end) const {
  BandwidthLog out;
  for (const auto& [day, segment] : segments_) {
    if (day >= end || day + util::kDay <= begin) continue;
    const auto timestamps = segment.timestamps();
    const auto pairs = segment.pair_ids();
    const auto bw = segment.bandwidths();
    for (std::size_t i = 0; i < segment.record_count(); ++i) {
      if (timestamps[i] >= begin && timestamps[i] < end) {
        out.append(timestamps[i], pairs[i], bw[i]);
      }
    }
  }
  out.sort();
  return out;
}

LogStoreStats BandwidthLogStore::stats() const noexcept {
  LogStoreStats s;
  for (const auto& [_, segment] : segments_) {
    s.fine_records += segment.record_count();
    s.fine_bytes += segment.approximate_bytes();
  }
  for (const auto& [_, accums] : accums_) {
    for (const auto& [_key, samples] : accums) s.open_window_samples += samples.size();
  }
  s.coarse_summaries = coarse_.summary_count();
  s.coarse_bytes = coarse_.approximate_bytes();
  return s;
}

}  // namespace smn::telemetry
