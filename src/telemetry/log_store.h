// Telemetry log store: the bandwidth-log shard of the CLDS. Fine records
// are held in daily segments; a background coarsening pass rewrites old
// segments into window summaries ("coarsenings in time", §6), keeping the
// store's footprint bounded while recent data stays fully fine-grained.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "telemetry/bandwidth_log.h"
#include "telemetry/time_coarsening.h"

namespace smn::telemetry {

/// Footprint report of the store.
struct LogStoreStats {
  std::size_t fine_records = 0;
  std::size_t coarse_summaries = 0;
  std::size_t fine_bytes = 0;
  std::size_t coarse_bytes = 0;

  std::size_t total_bytes() const noexcept { return fine_bytes + coarse_bytes; }
};

class BandwidthLogStore {
 public:
  /// Appends records into day-keyed fine segments.
  void ingest(const BandwidthLog& log);

  /// Rewrites fine segments older than `max_fine_age` (relative to `now`)
  /// into summaries with `window`. Returns the number of records retired.
  std::size_t coarsen_older_than(util::SimTime now, util::SimTime max_fine_age,
                                 util::SimTime window);

  /// Fine records in [begin, end), across segments, timestamp-sorted.
  BandwidthLog fine_range(util::SimTime begin, util::SimTime end) const;

  /// All coarse summaries produced by retention passes so far.
  const CoarseBandwidthLog& coarse() const noexcept { return coarse_; }

  LogStoreStats stats() const noexcept;

 private:
  std::map<util::SimTime, BandwidthLog> segments_;  ///< key: day start
  CoarseBandwidthLog coarse_;
};

}  // namespace smn::telemetry
