// Telemetry log store: the bandwidth-log shard of the CLDS. Fine records
// are held in day-keyed columnar segments; ingest additionally folds every
// record into an open per-(pair, window) accumulator for the store's
// configured coarsening window, so the background retention pass
// ("coarsenings in time", §6) seals already-built summaries instead of
// re-scanning and re-keying fine segments. Sealed summaries are
// byte-identical to what a batch TimeCoarsener pass over the same segment
// would produce (same samples, same util::summarize, same emission order).
#pragma once

#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

#include "telemetry/bandwidth_log.h"
#include "telemetry/time_coarsening.h"

namespace smn::telemetry {

/// Footprint report of the store.
struct LogStoreStats {
  std::size_t fine_records = 0;
  std::size_t coarse_summaries = 0;
  std::size_t fine_bytes = 0;
  std::size_t coarse_bytes = 0;
  /// Samples currently buffered in open window accumulators.
  std::size_t open_window_samples = 0;

  std::size_t total_bytes() const noexcept { return fine_bytes + coarse_bytes; }
};

class BandwidthLogStore {
 public:
  /// `streaming_window` is the coarsening window the ingest-time
  /// accumulators are built for; retention passes requesting that window
  /// seal summaries in O(open windows). Must divide a day (so windows
  /// never straddle segment boundaries); other values fall back to batch
  /// coarsening at retention time.
  explicit BandwidthLogStore(util::SimTime streaming_window = util::kHour);

  /// Appends one record into its day segment and open window accumulator.
  void ingest(util::SimTime timestamp, util::PairId pair, double bw_gbps);

  /// Appends all records of `log` (columnar copy, no string re-keying).
  void ingest(const BandwidthLog& log);

  /// Rewrites fine segments older than `max_fine_age` (relative to `now`)
  /// into summaries with `window`. Returns the number of records retired.
  /// When `window` equals the streaming window, summaries are sealed from
  /// the ingest-time accumulators; otherwise the segment is batch-coarsened.
  std::size_t coarsen_older_than(util::SimTime now, util::SimTime max_fine_age,
                                 util::SimTime window);

  /// Fine records in [begin, end), across segments, timestamp-sorted.
  BandwidthLog fine_range(util::SimTime begin, util::SimTime end) const;

  /// All coarse summaries produced by retention passes so far.
  const CoarseBandwidthLog& coarse() const noexcept { return coarse_; }

  util::SimTime streaming_window() const noexcept { return window_; }

  LogStoreStats stats() const noexcept;

 private:
  /// Open accumulators of one day segment: (pair, window_start) -> samples
  /// in ingest order (matching the segment's record order, so sealed
  /// summaries are identical to a batch pass over the segment).
  using DayAccumulators = std::unordered_map<std::uint64_t, std::vector<double>>;

  static std::uint64_t accum_key(util::PairId pair, util::SimTime window_start,
                                 util::SimTime window) noexcept {
    return (static_cast<std::uint64_t>(pair) << 32) |
           static_cast<std::uint32_t>(window_start / window);
  }

  /// Seals every accumulator of `day` into coarse_, in the batch emission
  /// order (src name, dst name, window_start).
  void seal_day(util::SimTime day, DayAccumulators& accums);

  util::SimTime window_;
  std::map<util::SimTime, BandwidthLog> segments_;    ///< key: day start
  std::map<util::SimTime, DayAccumulators> accums_;   ///< key: day start
  CoarseBandwidthLog coarse_;
};

}  // namespace smn::telemetry
