// Telemetry log store: the bandwidth-log shard of the CLDS. The store is
// partitioned by PairId hash into N independent shards (one per thread-pool
// worker), each owning its own day-keyed columnar segments, open
// per-(pair, window) accumulators, and retention seal. Bulk ingest
// partitions the batch once (a counting sort over shards) and then runs the
// per-shard append loops as a parallel_for with per-shard locks; the
// retention pass seals each shard's due days in parallel and merges the
// sealed summaries in (src name, dst name, window) order. Every record of a
// pair lands in exactly one shard with stream order preserved, so the
// merged fine_range() / coarse() views are byte-identical to what the
// single-shard store produces ("coarsenings in time", §6, still hold
// bit-exactly under partitioning).
//
// On top of the per-pair accumulators each shard tracks demand drift: an
// EWMA of observed bandwidth per pair, compared against the demand-matrix
// snapshot of the last TE solve (set_demand_baseline). drift() folds the
// per-shard deviations in PairId order — deterministic for any shard or
// thread count — into one aggregate level the controller can threshold to
// fire an early re-solve.
//
// Tiered storage (DESIGN.md §10): with `spill_dir` configured, sealing a
// day does not discard its fine columns — each (shard, day) segment is
// serialized to a flat little-endian column file (telemetry/spill_file.h)
// and the in-memory segment is freed, keeping only unsealed days resident.
// fine_range() transparently maps spilled days back (util/MmapFile) and
// merges them with the resident segments, so reads are byte-identical to a
// store that never sealed anything. Re-ingest into an already-spilled day
// opens a fresh resident slab; the next seal writes a second generation
// file, and reads merge generations in ingest order.
//
// Concurrent snapshot reads (DESIGN.md §14): read_view() captures an
// immutable ReadView — per-shard {day slab, published row count} pairs plus
// the spilled-generation lists and the coarse high-water mark — under brief
// per-shard metadata locks (O(days), no row copies). The view is then
// queried with NO store lock at all: resident rows live in epoch-published
// StableLog columns (readable lock-free up to the captured count while
// ingest keeps appending past it), spilled rows read straight off their
// mmap'd files, and retention cannot invalidate the view because slabs are
// shared_ptr-owned (a retired slab stays alive until the last view drops
// it) and spill files are never deleted. fine_range() itself is one
// read_view().fine_range() call, so the quiesced and concurrent read paths
// are literally the same code — byte-identical by construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/bandwidth_log.h"
#include "telemetry/stable_log.h"
#include "telemetry/time_coarsening.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace smn::telemetry {

/// Footprint report of the store. `fine_*` covers resident segments only;
/// the `spilled_*` fields cover the cold tier on disk.
struct LogStoreStats {
  std::size_t fine_records = 0;
  std::size_t coarse_summaries = 0;
  std::size_t fine_bytes = 0;
  std::size_t coarse_bytes = 0;
  /// In-memory columnar bytes of resident fine segments (20 B/record).
  std::size_t resident_bytes = 0;
  /// Samples currently buffered in open window accumulators.
  std::size_t open_window_samples = 0;
  /// Fine records currently held by each shard (occupancy / skew gauge).
  std::vector<std::size_t> shard_records;
  /// Cold tier: sealed fine records serialized to spill files.
  std::size_t spilled_records = 0;
  std::size_t spilled_files = 0;
  std::size_t spilled_bytes = 0;  ///< on-disk bytes, headers included
  /// Lifetime mapping traffic: spill files mapped / released by reads.
  std::uint64_t spill_maps = 0;
  std::uint64_t spill_unmaps = 0;
  /// Snapshot read path: lifetime ReadViews acquired, and views alive now
  /// (each live view can pin retired day slabs in memory).
  std::uint64_t views_acquired = 0;
  std::uint64_t views_live = 0;

  std::size_t total_bytes() const noexcept { return fine_bytes + coarse_bytes; }
};

/// Demand snapshot of the last TE solve, in store-native (PairId, gbps)
/// form. te::DemandMatrix::to_baseline() produces one.
struct DemandBaseline {
  std::vector<std::pair<util::PairId, double>> entries;
  util::SimTime solved_at = 0;
};

/// Aggregate drift of observed demand vs the last baseline.
struct DriftReport {
  /// Sum of per-pair |observed - expected| over the baseline total;
  /// +inf when demand appeared against an all-zero baseline.
  double level = 0.0;
  double deviation_gbps = 0.0;
  double baseline_gbps = 0.0;
  /// Pairs with at least one post-baseline observation contributing a
  /// deviation term.
  std::size_t pairs_tracked = 0;
  bool has_baseline = false;
};

struct LogStoreConfig {
  /// The coarsening window the ingest-time accumulators are built for;
  /// retention passes requesting that window seal summaries in
  /// O(open windows). Must divide a day (so windows never straddle segment
  /// boundaries); other values fall back to batch coarsening at retention.
  util::SimTime streaming_window = util::kHour;
  /// Number of independent shards (>= 1). Records are routed by PairId
  /// hash, so all records of a pair share a shard and keep stream order.
  std::size_t shards = 1;
  /// Worker threads for bulk ingest / retention. 0 resolves to
  /// min(shards, hardware_concurrency); a resolved value <= 1 runs serial.
  std::size_t ingest_threads = 0;
  /// EWMA smoothing factor of the per-pair observed-demand tracker.
  double drift_alpha = 0.2;
  /// Directory of the cold tier. Empty disables spilling (sealed fine
  /// segments are dropped after coarsening — the pre-spill behavior).
  /// Non-empty: created if missing; each store instance needs its own
  /// directory (file names are only unique per store).
  std::string spill_dir;
  /// Verify the column checksum every time a spill file is mapped back.
  /// Costs one pass over the file per map; disable only in benches that
  /// isolate raw map+read cost.
  bool spill_verify_checksum = true;
  /// Take over a spill directory whose pid lockfile is still present.
  /// Every store with a spill_dir writes a `LOCK` file on construction and
  /// SMN_CHECK-fails when one already exists (two live stores writing the
  /// same directory silently interleave generations). Failover is the one
  /// legitimate exception: the adopter sets `steal` to claim a dead
  /// controller's directory and then replays it via recover_spill_files().
  bool spill_steal_lock = false;
};

class BandwidthLogStore {
 private:
  // The storage types come first so the public ReadView can name them.
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr util::SimTime kNoDay = std::numeric_limits<util::SimTime>::min();

  /// Open accumulator of one (pair, day): samples in ingest order, split
  /// into runs of consecutive same-window records (one run per window for
  /// in-order streams; out-of-order streams reopen a window as a new run
  /// and the seal re-concatenates runs in record order).
  struct PairDayAccum {
    std::vector<double> samples;
    std::vector<util::SimTime> run_window;   ///< window start of each run
    std::vector<std::uint32_t> run_begin;    ///< first sample index of each run
  };

  /// One day segment of one shard plus its open accumulators (by slot).
  /// Rows live in a StableLog so snapshot readers can consume a published
  /// prefix lock-free while ingest appends; the accumulators stay
  /// writer-only state behind the shard mutex (views never touch them).
  struct DaySlab {
    StableLog seg;
    std::vector<PairDayAccum> accums;
  };

  /// One sealed-and-spilled generation of a (shard, day) segment. Spill
  /// files are never deleted or rewritten, so a copied SpillEntry stays
  /// servable for the process lifetime.
  struct SpillEntry {
    std::string path;
    std::uint64_t records = 0;
    std::uint64_t file_bytes = 0;
  };

  /// State shared between the store and every ReadView it hands out, so a
  /// view stays self-contained (it never dereferences the store). The
  /// atomics are internally synchronized; coarse_rows follows the
  /// EpochTable writer contract with retention_mutex_ as the writer lock.
  struct ViewCore {
    explicit ViewCore(bool verify) : verify_checksum(verify) {}
    const bool verify_checksum;
    /// Every coarse summary ever emitted, in emission order — the
    /// concurrently-readable twin of coarse() (whose CoarseBandwidthLog
    /// index rebuilds are not safe under concurrent readers). Appended in
    /// lockstep with coarse_ by the retention pass.
    util::EpochTable<WindowSummary> coarse_rows{1024};
    std::atomic<std::uint64_t> views_acquired{0};
    std::atomic<std::uint64_t> views_live{0};
    /// Lifetime spill mapping traffic (reads are const; counters are not
    /// state, so they stay atomics rather than joining a shard lock).
    std::atomic<std::uint64_t> spill_maps{0};
    std::atomic<std::uint64_t> spill_unmaps{0};
  };

 public:
  /// Single-shard store (the pre-sharding behavior and default).
  explicit BandwidthLogStore(util::SimTime streaming_window = util::kHour)
      : BandwidthLogStore(LogStoreConfig{.streaming_window = streaming_window}) {}

  explicit BandwidthLogStore(const LogStoreConfig& config);

  /// Releases the spill-dir lockfile (when this store holds one).
  ~BandwidthLogStore();

  BandwidthLogStore(const BandwidthLogStore&) = delete;
  BandwidthLogStore& operator=(const BandwidthLogStore&) = delete;

  /// An immutable snapshot of the store's readable state, queried with no
  /// store lock (DESIGN.md §14). Holding a view pins its resident day
  /// slabs (shared_ptr) even across retention, so reads stay byte-identical
  /// to the store at acquisition time restricted to the captured per-slab
  /// row counts. Move-only; cheap to acquire (O(days) metadata) and cheap
  /// to hold (row storage is shared, not copied). A view acquired
  /// concurrently with a retention pass may cover a just-retired day both
  /// fine (pinned slab) and coarse (published summary) — consumers
  /// time-partition fine vs coarse at the retention boundary, as the
  /// controller does, when they need exclusivity.
  class ReadView {
   public:
    ReadView(const ReadView&) = delete;
    ReadView& operator=(const ReadView&) = delete;
    ReadView(ReadView&&) noexcept = default;
    ReadView& operator=(ReadView&&) = delete;
    ~ReadView();

    /// Fine records in [begin, end), merged across shards and tiers,
    /// timestamp-sorted — same merge, same output bytes as the store's
    /// fine_range() (which is implemented as exactly this call on a fresh
    /// view). Lock-free against concurrent ingest and retention.
    BandwidthLog fine_range(util::SimTime begin, util::SimTime end) const;

    /// Fine records covered by this view (resident prefix + spilled).
    std::size_t fine_rows() const noexcept { return fine_rows_; }

    /// Coarse summaries published when the view was taken; coarse_at(i)
    /// for i below coarse_count() reads them lock-free in emission order.
    std::size_t coarse_count() const noexcept { return coarse_limit_; }
    const WindowSummary& coarse_at(std::size_t i) const;

    /// Interner generation captured with the view: every pair id in the
    /// view decodes within it.
    util::IdSpaceSnapshot ids() const noexcept { return ids_; }

    /// Upper bound of the covered time range (last resident row / spilled
    /// day end); 0 for an empty view. The snapshot-age gauge is
    /// now - high_water().
    util::SimTime high_water() const noexcept { return high_water_; }

   private:
    friend class BandwidthLogStore;

    struct ResidentDay {
      util::SimTime day = 0;
      std::shared_ptr<const DaySlab> slab;
      std::size_t rows = 0;  ///< published row count at acquisition
    };
    struct ShardView {
      std::vector<ResidentDay> resident;  ///< ascending day order
      /// Spilled generation lists, ascending day order (copied entries —
      /// generations appended later are invisible to this view).
      std::vector<std::pair<util::SimTime, std::vector<SpillEntry>>> spilled;
    };

    ReadView() = default;

    std::vector<ShardView> shards_;
    std::size_t coarse_limit_ = 0;
    std::size_t fine_rows_ = 0;
    util::SimTime high_water_ = 0;
    util::IdSpaceSnapshot ids_;
    std::shared_ptr<ViewCore> core_;  ///< null only after move-from
  };

  /// Captures a ReadView under brief per-shard metadata locks. Never
  /// blocks on a query in flight; ingest is held out only for the O(days)
  /// metadata walk of one shard at a time.
  ReadView read_view() const;

  /// Appends one record into its shard's day segment and open window
  /// accumulator. Thread-safe against concurrent ingest.
  void ingest(util::SimTime timestamp, util::PairId pair, double bw_gbps);

  /// Appends all records of `log`: one counting partition over shards, then
  /// per-shard append loops across the ingest pool (serial when the store
  /// has one shard or one thread). State is identical to per-record ingest.
  void ingest(const BandwidthLog& log);

  /// Rewrites fine segments older than `max_fine_age` (relative to `now`)
  /// into summaries with `window`. Returns the number of records retired.
  /// When `window` equals the streaming window, summaries are sealed from
  /// the ingest-time accumulators; otherwise segments are batch-coarsened.
  /// Either way each due day is processed shard-parallel and merged in the
  /// single-shard emission order (src name, dst name, window start).
  /// Retention passes are serialized on retention_mutex_ (they also write
  /// the epoch-published coarse row table, which needs one writer).
  std::size_t coarsen_older_than(util::SimTime now, util::SimTime max_fine_age,
                                 util::SimTime window) SMN_EXCLUDES(retention_mutex_);

  /// Fine records in [begin, end), merged across shards, timestamp-sorted.
  /// Byte-identical to the single-shard store's output. Spilled days
  /// overlapping the range are mapped back transparently and merged with
  /// resident segments, so with spilling enabled the result matches a
  /// store that never sealed anything. Implemented as
  /// read_view().fine_range(begin, end): one merge implementation serves
  /// the quiesced and the concurrent path.
  BandwidthLog fine_range(util::SimTime begin, util::SimTime end) const;

  /// True when the cold tier is configured (config.spill_dir non-empty).
  bool spill_enabled() const noexcept { return !spill_dir_.empty(); }

  /// Failover replay: scans `spill_dir` for `shard<s>_day<d>_gen<g>.col`
  /// files written by a dead store instance and re-registers them in this
  /// store's cold tier, so fine_range() serves the adopted region's sealed
  /// state byte-identically. Requires spilling enabled, an empty cold tier
  /// (fresh store), and the same shard count as the writer — the filename
  /// carries the shard index, and PairId -> shard routing only matches
  /// under the same shard count. Every file is opened and validated
  /// (magic, version, checksum) before registration. Returns the number of
  /// fine records recovered.
  std::size_t recover_spill_files();

  /// All coarse summaries produced by retention passes so far. Quiesced
  /// accessor: safe only when no retention pass is running (the summary
  /// index may rebuild during one). Concurrent readers snapshot through
  /// ReadView::coarse_at instead.
  const CoarseBandwidthLog& coarse() const noexcept { return coarse_; }

  util::SimTime streaming_window() const noexcept { return window_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }

  LogStoreStats stats() const;

  // --- Drift tracking (streaming TE re-solve triggers) ---

  /// Installs the demand snapshot of a TE solve as the drift baseline and
  /// resets the per-pair observation EWMAs, so drift measures movement
  /// since this solve. An empty baseline disables tracking.
  void set_demand_baseline(const DemandBaseline& baseline);

  /// Aggregate drift vs the current baseline; deterministic for any shard
  /// and thread count (per-pair terms are folded in PairId order).
  DriftReport drift() const;

 private:
  /// Per-pair drift state of one shard (by slot).
  struct PairDrift {
    double observed = 0.0;   ///< EWMA of ingested bandwidth since baseline
    double expected = 0.0;   ///< demand of the last TE solve
    bool has_observed = false;
    bool has_expected = false;
  };

  struct Shard {
    mutable std::mutex mutex;
    /// Key: day start. shared_ptr so a ReadView can pin a slab across its
    /// retirement; the map entry itself is erased by retention as before.
    std::map<util::SimTime, std::shared_ptr<DaySlab>> days SMN_GUARDED_BY(mutex);
    /// Cached slab of open_day.
    DaySlab* open SMN_GUARDED_BY(mutex) = nullptr;
    util::SimTime open_day SMN_GUARDED_BY(mutex) = kNoDay;
    /// PairId -> slot (kNoSlot if unseen).
    std::vector<std::uint32_t> local_of SMN_GUARDED_BY(mutex);
    /// Slot -> PairId.
    std::vector<util::PairId> pairs SMN_GUARDED_BY(mutex);
    /// By slot.
    std::vector<PairDrift> drift SMN_GUARDED_BY(mutex);
    bool drift_enabled SMN_GUARDED_BY(mutex) = false;
    /// Cold tier of this shard: day -> spill files in generation (ingest)
    /// order. A day can appear here and in `days` at once after re-ingest.
    std::map<util::SimTime, std::vector<SpillEntry>> spilled SMN_GUARDED_BY(mutex);
  };

  std::size_t shard_of(util::PairId pair) const noexcept {
    // Knuth multiplicative hash, then a multiply-shift range reduction
    // (uniform over [0, shards) with no hardware divide — shard_of runs
    // once per record on the bulk-ingest hot path).
    const std::uint32_t h = pair * 2654435761u;
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(h) * shards_.size()) >> 32);
  }

  /// Staged records of one shard, in stream order (columnar value copies,
  /// so the per-shard loops read their inputs contiguously instead of
  /// gathering through an index array, and segments fill by bulk column
  /// copies).
  struct StagedColumns {
    std::span<const util::SimTime> timestamps;
    std::span<const util::PairId> pairs;
    std::span<const double> bw_gbps;
  };

  /// Slot of `pair` in `shard`, assigning one on first sight.
  static std::uint32_t slot_of(Shard& shard, util::PairId pair)
      SMN_REQUIRES(shard.mutex);

  /// Slab of `day` in `shard`, opening it on first touch (refreshes the
  /// open-day cache).
  DaySlab& open_slab_locked(Shard& shard, util::SimTime day) SMN_REQUIRES(shard.mutex);

  /// Appends one record into `shard` (caller holds the shard's mutex).
  void append_locked(Shard& shard, util::SimTime timestamp, util::PairId pair,
                     double bw_gbps) SMN_REQUIRES(shard.mutex);

  /// Bulk-appends staged records into `shard`: day-runs are copied into the
  /// day segment as whole columns, then the accumulator/drift state is
  /// updated per record (takes the shard's mutex).
  void append_batch(Shard& shard, const StagedColumns& records);

  /// Accumulator/drift part of one append (caller holds the shard's mutex
  /// and has already placed the record into `slab`'s segment).
  void accumulate_locked(Shard& shard, DaySlab& slab, util::SimTime timestamp,
                         util::PairId pair, double bw_gbps)
      SMN_REQUIRES(shard.mutex);

  /// Seals `shard`'s slab of `day` into `*out` from the streaming
  /// accumulators (summaries unordered).
  void seal_day_locked(Shard& shard, util::SimTime day,
                       std::vector<WindowSummary>* out) SMN_REQUIRES(shard.mutex);

  /// Batch-coarsens `shard`'s slab of `day` with `coarsener` into `*out`.
  void batch_day_locked(Shard& shard, util::SimTime day,
                        const TimeCoarsener& coarsener,
                        std::vector<WindowSummary>* out) SMN_REQUIRES(shard.mutex);

  /// Serializes shard `s`'s slab of `day` to a new-generation spill file and
  /// registers it in the shard's cold tier (must run before the slab is
  /// erased, while the columns still exist).
  void spill_day_locked(std::size_t s, Shard& shard, util::SimTime day)
      SMN_REQUIRES(shard.mutex);

  /// Retires shard `s`'s slab of `day` under ONE mutex acquisition:
  /// summarize into `*out` (streaming seal or batch coarsen), spill when the
  /// cold tier is configured, then erase the slab. The single critical
  /// section makes retention atomic against concurrent ingest — a record
  /// appended to a due day lands either before the summary (and is
  /// coarsened) or after the erase (and reopens the day as fresh fine
  /// state), never in between, where it would be silently dropped. Returns
  /// the fine records retired.
  std::size_t retire_shard_day(std::size_t s, util::SimTime day, bool streaming,
                               const TimeCoarsener& coarsener,
                               std::vector<WindowSummary>* out);

  /// Runs `fn(s)` for every shard, across the pool when it exists.
  void for_each_shard(const std::function<void(std::size_t)>& fn);

  /// Writes the pid lockfile under `spill_dir_` (SMN_CHECK-fails on a
  /// pre-existing lock unless `steal`).
  void acquire_spill_lock(bool steal);

  util::SimTime window_;
  double drift_alpha_;
  std::string spill_dir_;                  ///< empty = cold tier disabled
  bool holds_spill_lock_ = false;          ///< this store wrote the LOCK file
  std::vector<Shard> shards_;              ///< sized at construction, never resized
  std::unique_ptr<util::ThreadPool> pool_; ///< null when resolved threads <= 1
  /// Serializes retention passes: each pass is the single writer of the
  /// epoch-published coarse row table (core_->coarse_rows) and of coarse_.
  std::mutex retention_mutex_;
  /// Written only by retention passes (under retention_mutex_); the
  /// coarse() accessor reads it quiesced-only by documented contract, so
  /// it is deliberately not GUARDED_BY — concurrent readers go through
  /// ReadView::coarse_at over core_->coarse_rows instead.
  CoarseBandwidthLog coarse_;
  /// Shared with every ReadView (see ViewCore).
  std::shared_ptr<ViewCore> core_;
  bool baseline_set_ = false;              ///< mutated by set_demand_baseline only
};

}  // namespace smn::telemetry
