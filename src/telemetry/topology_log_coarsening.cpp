#include "telemetry/topology_log_coarsening.h"

#include <map>
#include <stdexcept>

namespace smn::telemetry {

TopologyLogCoarsener::TopologyLogCoarsener(const topology::WanTopology& wan,
                                           graph::Partition partition) {
  if (!partition.valid_for(wan.graph())) {
    throw std::invalid_argument("TopologyLogCoarsener: partition does not cover the WAN");
  }
  for (graph::NodeId n = 0; n < wan.datacenter_count(); ++n) {
    dc_to_group_.emplace(wan.datacenter(n).name,
                         partition.group_names[partition.group_of[n]]);
  }
}

std::string TopologyLogCoarsener::group_of(const std::string& dc_name) const {
  const auto it = dc_to_group_.find(dc_name);
  return it == dc_to_group_.end() ? std::string{} : it->second;
}

BandwidthLog TopologyLogCoarsener::coarsen(const BandwidthLog& fine) const {
  // Aggregate per (epoch, group pair). Unknown datacenters are dropped —
  // the coarse view cannot represent them.
  std::map<std::tuple<util::SimTime, std::string, std::string>, double> sums;
  for (const BandwidthRecord& r : fine.records()) {
    const auto src_it = dc_to_group_.find(r.src);
    const auto dst_it = dc_to_group_.find(r.dst);
    if (src_it == dc_to_group_.end() || dst_it == dc_to_group_.end()) continue;
    if (src_it->second == dst_it->second) continue;  // intra-supernode traffic vanishes
    sums[{r.timestamp, src_it->second, dst_it->second}] += r.bw_gbps;
  }
  BandwidthLog coarse;
  for (const auto& [key, bw] : sums) {
    BandwidthRecord record;
    record.timestamp = std::get<0>(key);
    record.src = std::get<1>(key);
    record.dst = std::get<2>(key);
    record.bw_gbps = bw;
    coarse.append(std::move(record));
  }
  coarse.sort();
  return coarse;
}

}  // namespace smn::telemetry
