#include "telemetry/topology_log_coarsening.h"

#include <stdexcept>
#include <unordered_map>

namespace smn::telemetry {

TopologyLogCoarsener::TopologyLogCoarsener(const topology::WanTopology& wan,
                                           graph::Partition partition) {
  if (!partition.valid_for(wan.graph())) {
    throw std::invalid_argument("TopologyLogCoarsener: partition does not cover the WAN");
  }
  util::IdSpace& ids = util::IdSpace::global();
  // Intern group names once; the per-datacenter map is then DcId → DcId.
  std::vector<util::DcId> group_ids;
  group_ids.reserve(partition.group_names.size());
  for (const std::string& name : partition.group_names) group_ids.push_back(ids.dc(name));
  for (graph::NodeId n = 0; n < wan.datacenter_count(); ++n) {
    const util::DcId dc = ids.dc(wan.datacenter(n).name);
    if (dc >= dc_to_group_.size()) dc_to_group_.resize(dc + 1, util::kInvalidDcId);
    dc_to_group_[dc] = group_ids[partition.group_of[n]];
  }
}

std::string TopologyLogCoarsener::group_of(const std::string& dc_name) const {
  const util::IdSpace& ids = util::IdSpace::global();
  const auto dc = ids.find_dc(dc_name);
  if (!dc) return {};
  const util::DcId group = group_of(*dc);
  return group == util::kInvalidDcId ? std::string{} : ids.dc_name(group);
}

BandwidthLog TopologyLogCoarsener::coarsen(const BandwidthLog& fine) const {
  // Aggregate per (epoch, group pair). Unknown datacenters are dropped —
  // the coarse view cannot represent them. The fine pair → group pair map
  // is cached per distinct fine pair, so the per-record work is one hash
  // probe on a u32 key.
  util::IdSpace& ids = util::IdSpace::global();
  std::unordered_map<util::PairId, util::PairId> group_pair_of;  // kInvalidPairId == dropped
  struct Key {
    util::SimTime ts;
    util::PairId pair;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(
          (static_cast<std::uint64_t>(k.ts) * 0x9E3779B97F4A7C15ull) ^ k.pair);
    }
  };
  std::unordered_map<Key, double, KeyHash> sums;
  const auto timestamps = fine.timestamps();
  const auto pairs = fine.pair_ids();
  const auto bw = fine.bandwidths();
  for (std::size_t i = 0; i < fine.record_count(); ++i) {
    auto it = group_pair_of.find(pairs[i]);
    if (it == group_pair_of.end()) {
      const util::DcId src_group = group_of(ids.pair_src(pairs[i]));
      const util::DcId dst_group = group_of(ids.pair_dst(pairs[i]));
      util::PairId mapped = util::kInvalidPairId;
      if (src_group != util::kInvalidDcId && dst_group != util::kInvalidDcId &&
          src_group != dst_group) {  // intra-supernode traffic vanishes
        mapped = ids.pair(src_group, dst_group);
      }
      it = group_pair_of.emplace(pairs[i], mapped).first;
    }
    if (it->second == util::kInvalidPairId) continue;
    sums[Key{timestamps[i], it->second}] += bw[i];
  }
  BandwidthLog coarse;
  coarse.reserve(sums.size());
  for (const auto& [key, total] : sums) coarse.append(key.ts, key.pair, total);
  coarse.sort();
  return coarse;
}

}  // namespace smn::telemetry
