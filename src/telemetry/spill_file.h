// On-disk format of one sealed (shard, day) fine segment — the cold tier
// of the BandwidthLogStore (DESIGN.md §10). One file holds the three
// columns of one day segment verbatim, so a mapped file reads back with
// the exact spans the resident segment would have produced:
//
//   header (64 bytes, little-endian):
//     magic           u64   0x31'4C'49'50'53'4E'4D'53 ("SMNSPIL1")
//     version         u32   1
//     reserved        u32   0
//     record_count    u64
//     day             i64   day-segment start (SimTime seconds)
//     off_timestamps  u64   byte offset of the SimTime column
//     off_bandwidths  u64   byte offset of the double column
//     off_pairs       u64   byte offset of the PairId column
//     checksum        u64   FNV-1a 64 over the three column byte ranges,
//                           in (timestamps, bandwidths, pairs) order
//   columns: SimTime[n], double[n], PairId[n] — each 8-byte aligned, in
//   header order, so mapped pointers satisfy alignment sanitizers.
//
// Writes go through a `.tmp` sibling plus rename, so a crash mid-write
// never leaves a half-file behind under the spill directory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/interner.h"
#include "util/mmap_file.h"
#include "util/sim_time.h"

namespace smn::telemetry {

/// FNV-1a 64 offset basis — the seed for chained fnv1a() calls.
inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;

/// FNV-1a 64 over `bytes`, folded into `hash` (chain ranges by passing the
/// previous result). Shared by the spill files and the federation
/// CoarseExport wire format, which reuses these header conventions.
std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t bytes);

/// Serializes one day segment's columns to `path` (atomically, via
/// `path + ".tmp"` and rename). All three spans must have equal length.
/// Returns the file size in bytes. Throws std::runtime_error on I/O
/// failure.
std::size_t write_spill_file(const std::string& path, util::SimTime day,
                             std::span<const util::SimTime> timestamps,
                             std::span<const double> bandwidths,
                             std::span<const util::PairId> pairs);

/// A spill file mapped back into memory. The column accessors alias the
/// mapping directly (zero-copy on the mmap path); the segment must outlive
/// every span taken from it.
class SpilledSegment {
 public:
  /// Maps and validates `path`: magic, version, offsets/size coherence,
  /// and (when `verify_checksum`) the column checksum. Throws
  /// std::runtime_error on any mismatch — a corrupt spill file must never
  /// feed silent garbage into a fine_range() merge. `allow_mmap = false`
  /// forces the read() fallback (tests cover both paths).
  static SpilledSegment open(const std::string& path, bool verify_checksum = true,
                             bool allow_mmap = true);

  std::size_t record_count() const noexcept { return records_; }
  util::SimTime day() const noexcept { return day_; }
  std::size_t file_bytes() const noexcept { return map_.size(); }
  bool is_mapped() const noexcept { return map_.is_mapped(); }

  std::span<const util::SimTime> timestamps() const noexcept {
    return {timestamps_, records_};
  }
  std::span<const double> bandwidths() const noexcept { return {bandwidths_, records_}; }
  std::span<const util::PairId> pair_ids() const noexcept { return {pairs_, records_}; }

 private:
  util::MmapFile map_;
  std::size_t records_ = 0;
  util::SimTime day_ = 0;
  const util::SimTime* timestamps_ = nullptr;
  const double* bandwidths_ = nullptr;
  const util::PairId* pairs_ = nullptr;
};

}  // namespace smn::telemetry
