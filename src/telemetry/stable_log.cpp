#include "telemetry/stable_log.h"

#include <unordered_map>

#include "util/contracts.h"

namespace smn::telemetry {

void StableLog::append_columns(std::span<const util::SimTime> timestamps,
                               std::span<const util::PairId> pairs,
                               std::span<const double> bw_gbps) {
  SMN_DCHECK(timestamps.size() == pairs.size() && pairs.size() == bw_gbps.size(),
             "StableLog columns must stay the same length");
  const std::size_t n = rows_.load(std::memory_order_relaxed);
  timestamps_.append(timestamps);
  pairs_.append(pairs);
  bw_.append(bw_gbps);
  rows_.store(n + timestamps.size(), std::memory_order_release);
}

void StableLog::emit_time_filtered(BandwidthLog* out, std::size_t limit, util::SimTime begin,
                                   util::SimTime end) const {
  // All three columns share one chunk size, so each timestamp piece maps to
  // an equally-shaped piece of the pair and bandwidth columns.
  timestamps_.for_each_span(0, limit, [&](std::size_t off, std::span<const util::SimTime> ts) {
    out->append_time_filtered(ts, pairs_.chunk_span(off, ts.size()),
                              bw_.chunk_span(off, ts.size()), begin, end);
  });
}

BandwidthLog StableLog::materialize(std::size_t limit) const {
  BandwidthLog out;
  out.reserve(limit);
  timestamps_.for_each_span(0, limit, [&](std::size_t off, std::span<const util::SimTime> ts) {
    out.append_columns(ts, pairs_.chunk_span(off, ts.size()), bw_.chunk_span(off, ts.size()));
  });
  return out;
}

std::size_t StableLog::approximate_listing_bytes() const {
  // "2025-06-01T00:00, us-e1, eu-w1, 1250\n" — timestamp (16) + separators
  // (6) + value (~6) + names; name lengths cached per pair id (the same
  // estimate BandwidthLog::approximate_bytes uses).
  const util::IdSpace& ids = util::IdSpace::global();
  std::unordered_map<util::PairId, std::size_t> name_bytes;
  std::size_t bytes = 0;
  const std::size_t n = rows();
  for (std::size_t i = 0; i < n; ++i) {
    const util::PairId p = pairs_[i];
    auto it = name_bytes.find(p);
    if (it == name_bytes.end()) {
      it = name_bytes.emplace(p, ids.src_name(p).size() + ids.dst_name(p).size()).first;
    }
    bytes += 16 + 6 + 6 + it->second + 1;
  }
  return bytes;
}

}  // namespace smn::telemetry
