// Epoch-published columnar day segment: the concurrently-readable sibling
// of BandwidthLog (DESIGN.md §14). A resident (shard, day) segment must be
// readable by snapshot queries WHILE ingest keeps appending to it; the
// vector-backed BandwidthLog cannot do that (a push_back can reallocate a
// column under a concurrent reader), so day slabs store their rows here:
// three EpochTable columns whose chunks never move, plus one atomic row
// count published with release order after all three column writes of a
// row. A reader that captured `rows() == n` can read rows [0, n) lock-free
// for the segment's lifetime — that captured count IS the ReadView's
// per-slab high-water mark.
//
// Writers (ingest) stay serialized by the owning shard's mutex, exactly as
// they were for the vector segment; this class adds no writer-side lock.
// Seal-time consumers (batch coarsening, spill serialization) materialize
// a BandwidthLog copy — one copy per (shard, day) per retention pass, off
// the hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>

#include "telemetry/bandwidth_log.h"
#include "util/epoch_table.h"
#include "util/interner.h"
#include "util/sim_time.h"

namespace smn::telemetry {

class StableLog {
 public:
  /// All three columns share `chunk_rows`, so their chunk boundaries align
  /// and a row's fields always live at the same chunk-relative offset.
  explicit StableLog(std::size_t chunk_rows = 4096)
      : timestamps_(chunk_rows), pairs_(chunk_rows), bw_(chunk_rows) {}

  /// Appends one row. Writer side: callers serialize appends behind the
  /// owning shard's mutex (the EpochTable writer contract).
  void append(util::SimTime timestamp, util::PairId pair, double bw_gbps) {
    const std::size_t n = rows_.load(std::memory_order_relaxed);
    timestamps_.stage(0, timestamp);
    pairs_.stage(0, pair);
    bw_.stage(0, bw_gbps);
    timestamps_.publish(1);
    pairs_.publish(1);
    bw_.publish(1);
    rows_.store(n + 1, std::memory_order_release);
  }

  /// Bulk column append; publishes the row count once at the end, so a
  /// concurrent reader sees the whole batch or none of its tail.
  void append_columns(std::span<const util::SimTime> timestamps,
                      std::span<const util::PairId> pairs, std::span<const double> bw_gbps);

  /// Published row count — the reader's epoch. Rows below a captured value
  /// are readable lock-free on the capturing thread.
  std::size_t rows() const noexcept { return rows_.load(std::memory_order_acquire); }

  bool empty() const noexcept { return rows() == 0; }

  /// Appends every row of [0, limit) whose timestamp falls in [begin, end)
  /// onto `out`, preserving row order — the snapshot read primitive.
  /// `limit` must be a rows() value this thread has observed.
  void emit_time_filtered(BandwidthLog* out, std::size_t limit, util::SimTime begin,
                          util::SimTime end) const;

  /// Copies rows [0, limit) into a plain BandwidthLog (seal-time paths:
  /// batch coarsening and spill serialization need contiguous columns).
  BandwidthLog materialize(std::size_t limit) const;

  /// Timestamp of row `i` (same reader contract as emit_time_filtered).
  util::SimTime timestamp_at(std::size_t i) const { return timestamps_[i]; }

  /// In-memory footprint of published rows (20 B/row, matching
  /// BandwidthLog::memory_bytes).
  std::size_t memory_bytes() const noexcept {
    return rows() * (sizeof(util::SimTime) + sizeof(util::PairId) + sizeof(double));
  }

  /// Approximate Listing-1 serialized size of published rows (the
  /// fine_bytes stats gauge; same estimate as BandwidthLog).
  std::size_t approximate_listing_bytes() const;

 private:
  util::EpochTable<util::SimTime> timestamps_;
  util::EpochTable<util::PairId> pairs_;
  util::EpochTable<double> bw_;
  /// Published row count. Stored with release AFTER the three column
  /// writes of every covered row; readers acquire it and then read the
  /// columns with no further synchronization.
  std::atomic<std::size_t> rows_{0};
};

}  // namespace smn::telemetry
