// Demand forecasting from bandwidth logs (§4): "in wide-area SDNs, these
// historical logs are used to forecast future demand [19, 20, 26, 46]."
// The forecasters here are the standard operational baselines:
//
//   * seasonal-naive — next week looks like last week at the same epoch
//     (captures the diurnal/weekly structure that dominates WAN traffic);
//   * EWMA — exponentially weighted moving average (captures level
//     shifts, ignores seasonality);
//   * seasonal + growth — seasonal-naive scaled by the trailing
//     week-over-week growth ratio (captures the §4 long-term trend).
//
// Forecasters run on per-pair series extracted from either fine logs or
// coarse reconstructions, which is how the coarsening experiments measure
// what summarization does to forecast quality.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/bandwidth_log.h"

namespace smn::telemetry {

/// A per-pair, fixed-epoch series (values at start + i * epoch).
struct Series {
  util::SimTime start = 0;
  util::SimTime epoch = util::kTelemetryEpoch;
  std::vector<double> values;

  std::size_t size() const noexcept { return values.size(); }
};

/// Extracts a dense series for `src`->`dst` from `log` (missing epochs are
/// linearly interpolated; leading/trailing gaps repeat the edge value).
/// Returns an empty series when the pair never appears.
Series extract_series(const BandwidthLog& log, const std::string& src, const std::string& dst,
                      util::SimTime epoch = util::kTelemetryEpoch);

/// Id-addressed overload: the same densification for an interned pair
/// handle. kInvalidPairId (or a pair absent from the log) yields an empty
/// series.
Series extract_series(const BandwidthLog& log, util::PairId pair,
                      util::SimTime epoch = util::kTelemetryEpoch);

/// One-pass bulk extraction: a dense series for every distinct pair in
/// `log`, in ascending PairId order. Equivalent to calling the id-addressed
/// extract_series per pair, but scans the log once instead of once per pair
/// — the shape the per-pair demand forecaster needs.
std::vector<std::pair<util::PairId, Series>> extract_all_series(
    const BandwidthLog& log, util::SimTime epoch = util::kTelemetryEpoch);

enum class ForecastMethod { kSeasonalNaive, kEwma, kSeasonalGrowth };

std::string forecast_method_name(ForecastMethod method);

struct ForecastOptions {
  /// Season length in epochs (one week of five-minute epochs by default).
  std::size_t season = static_cast<std::size_t>(util::kWeek / util::kTelemetryEpoch);
  double ewma_alpha = 0.2;
  /// Measured demand drift vs the last TE solve (the store's
  /// DriftReport::level), fed in by the adaptive control loop (DESIGN.md
  /// §15). At the default 0 every method is byte-identical to the
  /// drift-blind forecast. Positive drift discounts stale history: the
  /// EWMA's effective alpha rises toward 1 so the level estimate
  /// re-converges on post-shift data, and the seasonal methods re-anchor
  /// last season's template on the trailing recent level — under a level
  /// shift the old absolute values are wrong even when the shape is right.
  double drift_level = 0.0;
  /// Decay knob: how fast drift saturates the re-weighting,
  /// weight = 1 - exp(-drift_decay * drift_level), in [0, 1).
  double drift_decay = 4.0;
  /// Trailing epochs defining the "recent level" the seasonal methods
  /// re-anchor on under drift (one day of telemetry epochs by default).
  std::size_t drift_recent_window =
      static_cast<std::size_t>(util::kDay / util::kTelemetryEpoch);
};

/// Forecasts `horizon` epochs past the end of `history`. Requires at least
/// one season of history for the seasonal methods (falls back to EWMA
/// otherwise).
std::vector<double> forecast(const Series& history, std::size_t horizon, ForecastMethod method,
                             const ForecastOptions& options = {});

/// Walk-forward evaluation: repeatedly forecast the next `horizon` epochs
/// from a growing prefix (starting at `min_history`), compare against the
/// actuals, and return the MAPE over all forecast points.
double forecast_mape(const Series& actuals, ForecastMethod method, std::size_t horizon,
                     std::size_t min_history, const ForecastOptions& options = {});

}  // namespace smn::telemetry
