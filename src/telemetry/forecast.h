// Demand forecasting from bandwidth logs (§4): "in wide-area SDNs, these
// historical logs are used to forecast future demand [19, 20, 26, 46]."
// The forecasters here are the standard operational baselines:
//
//   * seasonal-naive — next week looks like last week at the same epoch
//     (captures the diurnal/weekly structure that dominates WAN traffic);
//   * EWMA — exponentially weighted moving average (captures level
//     shifts, ignores seasonality);
//   * seasonal + growth — seasonal-naive scaled by the trailing
//     week-over-week growth ratio (captures the §4 long-term trend).
//
// Forecasters run on per-pair series extracted from either fine logs or
// coarse reconstructions, which is how the coarsening experiments measure
// what summarization does to forecast quality.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "telemetry/bandwidth_log.h"

namespace smn::telemetry {

/// A per-pair, fixed-epoch series (values at start + i * epoch).
struct Series {
  util::SimTime start = 0;
  util::SimTime epoch = util::kTelemetryEpoch;
  std::vector<double> values;

  std::size_t size() const noexcept { return values.size(); }
};

/// Extracts a dense series for `src`->`dst` from `log` (missing epochs are
/// linearly interpolated; leading/trailing gaps repeat the edge value).
/// Returns an empty series when the pair never appears.
Series extract_series(const BandwidthLog& log, const std::string& src, const std::string& dst,
                      util::SimTime epoch = util::kTelemetryEpoch);

enum class ForecastMethod { kSeasonalNaive, kEwma, kSeasonalGrowth };

std::string forecast_method_name(ForecastMethod method);

struct ForecastOptions {
  /// Season length in epochs (one week of five-minute epochs by default).
  std::size_t season = static_cast<std::size_t>(util::kWeek / util::kTelemetryEpoch);
  double ewma_alpha = 0.2;
};

/// Forecasts `horizon` epochs past the end of `history`. Requires at least
/// one season of history for the seasonal methods (falls back to EWMA
/// otherwise).
std::vector<double> forecast(const Series& history, std::size_t horizon, ForecastMethod method,
                             const ForecastOptions& options = {});

/// Walk-forward evaluation: repeatedly forecast the next `horizon` epochs
/// from a growing prefix (starting at `min_history`), compare against the
/// actuals, and return the MAPE over all forecast points.
double forecast_mape(const Series& actuals, ForecastMethod method, std::size_t horizon,
                     std::size_t min_history, const ForecastOptions& options = {});

}  // namespace smn::telemetry
