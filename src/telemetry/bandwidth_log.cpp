#include "telemetry/bandwidth_log.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "util/contracts.h"
#include "util/string_util.h"

namespace smn::telemetry {

std::unordered_map<util::PairId, std::uint32_t> pair_name_ranks(
    std::span<const util::PairId> pairs) {
  std::vector<util::PairId> unique(pairs.begin(), pairs.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  const util::IdSpace& ids = util::IdSpace::global();
  std::sort(unique.begin(), unique.end(),
            [&](util::PairId a, util::PairId b) { return ids.pair_name_less(a, b); });
  std::unordered_map<util::PairId, std::uint32_t> rank;
  rank.reserve(unique.size());
  for (std::uint32_t i = 0; i < unique.size(); ++i) rank.emplace(unique[i], i);
  return rank;
}

BandwidthRecord BandwidthLog::record_at(std::size_t i) const {
  const util::IdSpace& ids = util::IdSpace::global();
  return BandwidthRecord{timestamps_.at(i), ids.src_name(pairs_[i]), ids.dst_name(pairs_[i]),
                         bw_[i]};
}

std::vector<BandwidthRecord> BandwidthLog::records() const {
  std::vector<BandwidthRecord> out;
  out.reserve(record_count());
  const util::IdSpace& ids = util::IdSpace::global();
  for (std::size_t i = 0; i < record_count(); ++i) {
    out.push_back(
        BandwidthRecord{timestamps_[i], ids.src_name(pairs_[i]), ids.dst_name(pairs_[i]), bw_[i]});
  }
  return out;
}

void BandwidthLog::append_time_filtered(std::span<const util::SimTime> timestamps,
                                        std::span<const util::PairId> pairs,
                                        std::span<const double> bw_gbps, util::SimTime begin,
                                        util::SimTime end) {
  SMN_DCHECK(pairs.size() == timestamps.size() && bw_gbps.size() == timestamps.size(),
             "filtered append with diverging column lengths");
  // Segments are mostly in order, so in-range records arrive in long runs;
  // copy each run as whole columns instead of a per-record append.
  const std::size_t n = timestamps.size();
  std::size_t i = 0;
  while (i < n) {
    while (i < n && (timestamps[i] < begin || timestamps[i] >= end)) ++i;
    std::size_t j = i;
    while (j < n && timestamps[j] >= begin && timestamps[j] < end) ++j;
    if (j > i) {
      append_columns(timestamps.subspan(i, j - i), pairs.subspan(i, j - i),
                     bw_gbps.subspan(i, j - i));
    }
    i = j;
  }
}

void BandwidthLog::sort() {
  SMN_DCHECK(pairs_.size() == timestamps_.size() && bw_.size() == timestamps_.size(),
             "columnar SoA columns diverged");
  const auto rank = pair_name_ranks(pairs_);
  std::vector<std::uint32_t> order(record_count());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (timestamps_[a] != timestamps_[b]) return timestamps_[a] < timestamps_[b];
    return rank.at(pairs_[a]) < rank.at(pairs_[b]);
  });
  std::vector<util::SimTime> ts(record_count());
  std::vector<util::PairId> pr(record_count());
  std::vector<double> bw(record_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    ts[i] = timestamps_[order[i]];
    pr[i] = pairs_[order[i]];
    bw[i] = bw_[order[i]];
  }
  timestamps_ = std::move(ts);
  pairs_ = std::move(pr);
  bw_ = std::move(bw);
}

std::pair<util::SimTime, util::SimTime> BandwidthLog::time_range() const noexcept {
  if (timestamps_.empty()) return {0, 0};
  util::SimTime lo = timestamps_.front();
  util::SimTime hi = lo;
  for (const util::SimTime t : timestamps_) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  return {lo, hi};
}

std::vector<util::PairId> BandwidthLog::pair_ids_first_seen() const {
  std::vector<util::PairId> out;
  std::unordered_map<util::PairId, bool> seen;
  for (const util::PairId p : pairs_) {
    if (seen.emplace(p, true).second) out.push_back(p);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> BandwidthLog::pairs() const {
  std::vector<std::pair<std::string, std::string>> out;
  const util::IdSpace& ids = util::IdSpace::global();
  for (const util::PairId p : pair_ids_first_seen()) {
    out.emplace_back(ids.src_name(p), ids.dst_name(p));
  }
  return out;
}

std::map<util::PairId, std::vector<std::pair<util::SimTime, double>>>
BandwidthLog::series_by_pair_id() const {
  std::map<util::PairId, std::vector<std::pair<util::SimTime, double>>> out;
  for (std::size_t i = 0; i < record_count(); ++i) {
    out[pairs_[i]].emplace_back(timestamps_[i], bw_[i]);
  }
  return out;
}

std::map<std::pair<std::string, std::string>, std::vector<std::pair<util::SimTime, double>>>
BandwidthLog::series_by_pair() const {
  std::map<std::pair<std::string, std::string>, std::vector<std::pair<util::SimTime, double>>> out;
  const util::IdSpace& ids = util::IdSpace::global();
  for (auto& [pair, series] : series_by_pair_id()) {
    out.emplace(std::make_pair(ids.src_name(pair), ids.dst_name(pair)), std::move(series));
  }
  return out;
}

double BandwidthLog::total_volume() const noexcept {
  double total = 0.0;
  for (const double v : bw_) total += v;
  return total;
}

std::string BandwidthLog::to_listing_format() const {
  std::ostringstream out;
  out << "# Format: ts, src_dc, dst_dc, bw_Gbps\n";
  const util::IdSpace& ids = util::IdSpace::global();
  for (std::size_t i = 0; i < record_count(); ++i) {
    out << util::format_iso8601(timestamps_[i]) << ", " << ids.src_name(pairs_[i]) << ", "
        << ids.dst_name(pairs_[i]) << ", " << util::format_double(bw_[i], 0) << '\n';
  }
  return out.str();
}

BandwidthLog BandwidthLog::from_listing_format(const std::string& text,
                                               ListingParseStats* stats) {
  BandwidthLog log;
  ListingParseStats local;
  util::IdSpace& ids = util::IdSpace::global();
  std::istringstream in(text);
  std::string line;
  util::SimTime last_ts = std::numeric_limits<util::SimTime>::min();
  while (std::getline(in, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = util::split(trimmed, ',');
    if (fields.size() != 4) {
      ++local.bad_field_count;
      continue;
    }
    util::SimTime ts = 0;
    if (!util::parse_iso8601(std::string(util::trim(fields[0])), ts)) {
      ++local.bad_timestamp;
      continue;
    }
    const std::string_view src = util::trim(fields[1]);
    const std::string_view dst = util::trim(fields[2]);
    double bw = 0.0;
    try {
      bw = std::stod(std::string(util::trim(fields[3])));
    } catch (...) {
      ++local.bad_value;
      continue;
    }
    if (!std::isfinite(bw)) {
      ++local.non_finite;
      continue;
    }
    if (bw < 0.0) {
      ++local.negative;
      continue;
    }
    if (src.empty() || dst.empty()) {
      ++local.empty_name;
      continue;
    }
    if (ts < last_ts) {
      ++local.out_of_order;
      continue;
    }
    last_ts = ts;
    log.append(ts, ids.pair_of_names(src, dst), bw);
    ++local.parsed;
  }
  if (stats != nullptr) *stats = local;
  return log;
}

BandwidthLog BandwidthLog::from_listing_format(const std::string& text, std::size_t* skipped) {
  ListingParseStats stats;
  BandwidthLog log = from_listing_format(text, &stats);
  if (skipped != nullptr) *skipped = stats.skipped();
  return log;
}

std::size_t BandwidthLog::approximate_bytes() const noexcept {
  // "2025-06-01T00:00, us-e1, eu-w1, 1250\n" — timestamp (16) + separators
  // (6) + value (~6) + names. Name lengths are cached per pair id.
  const util::IdSpace& ids = util::IdSpace::global();
  std::unordered_map<util::PairId, std::size_t> name_bytes;
  std::size_t bytes = 0;
  for (const util::PairId p : pairs_) {
    auto it = name_bytes.find(p);
    if (it == name_bytes.end()) {
      it = name_bytes.emplace(p, ids.src_name(p).size() + ids.dst_name(p).size()).first;
    }
    bytes += 16 + 6 + 6 + it->second + 1;
  }
  return bytes;
}

}  // namespace smn::telemetry
