#include "telemetry/bandwidth_log.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace smn::telemetry {

void BandwidthLog::sort() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const BandwidthRecord& a, const BandwidthRecord& b) {
                     if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
                     if (a.src != b.src) return a.src < b.src;
                     return a.dst < b.dst;
                   });
}

std::pair<util::SimTime, util::SimTime> BandwidthLog::time_range() const noexcept {
  if (records_.empty()) return {0, 0};
  util::SimTime lo = records_.front().timestamp;
  util::SimTime hi = lo;
  for (const BandwidthRecord& r : records_) {
    lo = std::min(lo, r.timestamp);
    hi = std::max(hi, r.timestamp);
  }
  return {lo, hi};
}

std::vector<std::pair<std::string, std::string>> BandwidthLog::pairs() const {
  std::vector<std::pair<std::string, std::string>> out;
  std::map<std::pair<std::string, std::string>, bool> seen;
  for (const BandwidthRecord& r : records_) {
    const auto key = std::make_pair(r.src, r.dst);
    if (!seen.contains(key)) {
      seen.emplace(key, true);
      out.push_back(key);
    }
  }
  return out;
}

std::map<std::pair<std::string, std::string>, std::vector<std::pair<util::SimTime, double>>>
BandwidthLog::series_by_pair() const {
  std::map<std::pair<std::string, std::string>, std::vector<std::pair<util::SimTime, double>>> out;
  for (const BandwidthRecord& r : records_) {
    out[{r.src, r.dst}].emplace_back(r.timestamp, r.bw_gbps);
  }
  return out;
}

double BandwidthLog::total_volume() const noexcept {
  double total = 0.0;
  for (const BandwidthRecord& r : records_) total += r.bw_gbps;
  return total;
}

std::string BandwidthLog::to_listing_format() const {
  std::ostringstream out;
  out << "# Format: ts, src_dc, dst_dc, bw_Gbps\n";
  for (const BandwidthRecord& r : records_) {
    out << util::format_iso8601(r.timestamp) << ", " << r.src << ", " << r.dst << ", "
        << util::format_double(r.bw_gbps, 0) << '\n';
  }
  return out.str();
}

BandwidthLog BandwidthLog::from_listing_format(const std::string& text, std::size_t* skipped) {
  BandwidthLog log;
  std::size_t bad = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = util::split(trimmed, ',');
    if (fields.size() != 4) {
      ++bad;
      continue;
    }
    BandwidthRecord record;
    if (!util::parse_iso8601(std::string(util::trim(fields[0])), record.timestamp)) {
      ++bad;
      continue;
    }
    record.src = std::string(util::trim(fields[1]));
    record.dst = std::string(util::trim(fields[2]));
    try {
      record.bw_gbps = std::stod(std::string(util::trim(fields[3])));
    } catch (...) {
      ++bad;
      continue;
    }
    if (record.src.empty() || record.dst.empty() || record.bw_gbps < 0.0) {
      ++bad;
      continue;
    }
    log.append(std::move(record));
  }
  if (skipped != nullptr) *skipped = bad;
  return log;
}

std::size_t BandwidthLog::approximate_bytes() const noexcept {
  // "2025-06-01T00:00, us-e1, eu-w1, 1250\n" — timestamp (16) + separators
  // (6) + value (~6) + names.
  std::size_t bytes = 0;
  for (const BandwidthRecord& r : records_) {
    bytes += 16 + 6 + 6 + r.src.size() + r.dst.size() + 1;
  }
  return bytes;
}

}  // namespace smn::telemetry
