#include "telemetry/traffic_generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>
#include <stdexcept>

namespace smn::telemetry {
namespace {

// Continent -> diurnal phase (fraction of day the local peak shifts by).
double continent_phase(const std::string& continent) noexcept {
  if (continent == "na") return 0.00;
  if (continent == "sa") return 0.05;
  if (continent == "eu") return 0.25;
  if (continent == "af") return 0.30;
  if (continent == "me") return 0.35;
  if (continent == "as") return 0.45;
  if (continent == "oc") return 0.60;
  return 0.0;
}

// Deterministic 64-bit mix for per-(pair, epoch) noise streams.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL ^ b * 0xbf58476d1ce4e5b9ULL ^
                    c * 0x94d049bb133111ebULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

TrafficGenerator::TrafficGenerator(const topology::WanTopology& wan, TrafficConfig config)
    : wan_(wan), config_(config) {
  if (config_.epoch <= 0) throw std::invalid_argument("TrafficGenerator: epoch must be positive");
  if (config_.duration <= 0) {
    throw std::invalid_argument("TrafficGenerator: duration must be positive");
  }
  const std::size_t n = wan_.datacenter_count();
  if (n < 2) throw std::invalid_argument("TrafficGenerator: need at least two datacenters");

  util::Rng rng(config_.seed);
  const std::size_t all_pairs = n * (n - 1);
  std::size_t wanted = config_.active_pairs == 0 ? all_pairs : config_.active_pairs;
  wanted = std::min(wanted, all_pairs);

  // Sample distinct ordered pairs.
  std::vector<std::size_t> indices;
  if (wanted == all_pairs) {
    indices.resize(all_pairs);
    for (std::size_t i = 0; i < all_pairs; ++i) indices[i] = i;
  } else if (config_.intra_continent_fraction <= 0.0) {
    // Floyd's sampling over the flattened ordered-pair index space.
    std::vector<bool> chosen(all_pairs, false);
    for (std::size_t i = all_pairs - wanted; i < all_pairs; ++i) {
      const auto draw =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i)));
      if (chosen[draw]) {
        chosen[i] = true;
        indices.push_back(i);
      } else {
        chosen[draw] = true;
        indices.push_back(draw);
      }
    }
    std::sort(indices.begin(), indices.end());
  } else {
    // Locality-biased rejection sampling: a `intra_continent_fraction`
    // share of pairs stays within one continent.
    std::vector<std::vector<graph::NodeId>> by_continent;
    {
      // First-seen continent order; a handful of continents makes the
      // linear scan cheaper than any map (and keeps strings out of keys).
      std::vector<const std::string*> continent_names;
      for (graph::NodeId node = 0; node < n; ++node) {
        const std::string& continent = wan_.datacenter(node).continent;
        std::size_t slot = continent_names.size();
        for (std::size_t c = 0; c < continent_names.size(); ++c) {
          if (*continent_names[c] == continent) {
            slot = c;
            break;
          }
        }
        if (slot == continent_names.size()) {
          continent_names.push_back(&continent);
          by_continent.emplace_back();
        }
        by_continent[slot].push_back(node);
      }
    }
    const auto flat_index = [n](graph::NodeId src, graph::NodeId dst) {
      return static_cast<std::size_t>(src) * (n - 1) +
             (dst > src ? static_cast<std::size_t>(dst) - 1 : static_cast<std::size_t>(dst));
    };
    std::set<std::size_t> chosen;
    std::size_t attempts = 0;
    while (chosen.size() < wanted && attempts < wanted * 200) {
      ++attempts;
      graph::NodeId src = 0, dst = 0;
      if (rng.bernoulli(config_.intra_continent_fraction)) {
        const auto& bucket = by_continent[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(by_continent.size()) - 1))];
        if (bucket.size() < 2) continue;
        src = bucket[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(bucket.size()) - 1))];
        dst = bucket[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(bucket.size()) - 1))];
      } else {
        src = static_cast<graph::NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        dst = static_cast<graph::NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      }
      if (src == dst) continue;
      chosen.insert(flat_index(src, dst));
    }
    indices.assign(chosen.begin(), chosen.end());
  }

  pairs_.reserve(indices.size());
  for (const std::size_t flat : indices) {
    const auto src = static_cast<graph::NodeId>(flat / (n - 1));
    std::size_t rem = flat % (n - 1);
    const auto dst = static_cast<graph::NodeId>(rem >= src ? rem + 1 : rem);
    TrafficPair pair;
    pair.src = src;
    pair.dst = dst;
    pair.high_volume = rng.bernoulli(config_.high_volume_fraction);
    const double tier_mean =
        pair.high_volume ? config_.high_volume_mean_gbps : config_.low_volume_mean_gbps;
    // Pareto with mean tier_mean: scale = mean * (shape-1)/shape.
    const double scale = tier_mean * (config_.pareto_shape - 1.0) / config_.pareto_shape;
    pair.base_gbps = std::min(rng.pareto(scale, config_.pareto_shape), tier_mean * 20.0);
    pair.diurnal_phase = continent_phase(wan_.datacenter(src).continent);
    pairs_.push_back(pair);
  }

  // Regime scopes: resolve each event's continent filter against the
  // sampled pairs once, so latent_demand_at is a flat multiplier lookup.
  regime_scope_.reserve(config_.regimes.size());
  for (const RegimeEvent& event : config_.regimes) {
    if (event.factor <= 0.0) {
      throw std::invalid_argument("TrafficGenerator: regime factor must be positive");
    }
    if (event.duration < 0) {
      throw std::invalid_argument("TrafficGenerator: regime duration must be non-negative");
    }
    const bool scoped = event.kind != RegimeKind::kLevelShift;
    if (scoped && event.continent.empty()) {
      throw std::invalid_argument("TrafficGenerator: scoped regime event needs a continent");
    }
    std::vector<double> scope(pairs_.size(), 1.0);
    for (std::size_t p = 0; p < pairs_.size(); ++p) {
      bool applies = true;
      if (event.kind == RegimeKind::kFlashCrowd) {
        applies = wan_.datacenter(pairs_[p].dst).continent == event.continent;
      } else if (event.kind == RegimeKind::kRegionalEvacuation) {
        applies = wan_.datacenter(pairs_[p].src).continent == event.continent ||
                  wan_.datacenter(pairs_[p].dst).continent == event.continent;
      }
      if (applies) scope[p] = event.factor;
    }
    regime_scope_.push_back(std::move(scope));
  }
}

std::size_t TrafficGenerator::epoch_count() const noexcept {
  return static_cast<std::size_t>((config_.duration + config_.epoch - 1) / config_.epoch);
}

double TrafficGenerator::latent_demand_at(std::size_t index, util::SimTime t) const {
  const TrafficPair& pair = pairs_.at(index);
  const double tod = util::time_of_day_fraction(t);
  const double diurnal =
      1.0 + config_.diurnal_amplitude *
                std::sin(2.0 * std::numbers::pi * (tod - pair.diurnal_phase));
  const int dow = util::day_of_week(t);
  // 2025-01-01 is Wednesday => dow 3 = Saturday, dow 4 = Sunday.
  const double weekly = (dow == 3 || dow == 4) ? config_.weekend_factor : 1.0;
  const double holiday = util::is_holiday(t) ? config_.holiday_spike_factor : 1.0;
  const double years = static_cast<double>(t) / static_cast<double>(util::kYear);
  const double growth = std::pow(1.0 + config_.annual_growth, years);
  double regime = 1.0;
  for (std::size_t e = 0; e < config_.regimes.size(); ++e) {
    const RegimeEvent& event = config_.regimes[e];
    if (t < event.at) continue;
    if (event.duration > 0 && t >= event.at + event.duration) continue;
    regime *= regime_scope_[e][index];
  }
  // Multiplying by the neutral 1.0 is an exact IEEE identity, so a trace
  // with no active regimes stays bit-identical to the pre-regime generator.
  return pair.base_gbps * diurnal * weekly * holiday * growth * regime;
}

double TrafficGenerator::demand_at(std::size_t index, util::SimTime t) const {
  const auto epoch_index = static_cast<std::uint64_t>(t / config_.epoch);
  const std::uint64_t h = mix(config_.seed, index, epoch_index);
  util::Rng noise_rng(h);
  const double noise = noise_rng.lognormal(0.0, config_.noise_sigma);
  return latent_demand_at(index, t) * noise;
}

BandwidthLog TrafficGenerator::generate() const {
  // Pair names are interned once; the epoch loop appends columnar rows with
  // no string construction at all.
  util::IdSpace& ids = util::IdSpace::global();
  std::vector<util::PairId> pair_ids;
  pair_ids.reserve(pairs_.size());
  for (const TrafficPair& pair : pairs_) {
    pair_ids.push_back(ids.pair(wan_.dc_id(pair.src), wan_.dc_id(pair.dst)));
  }
  BandwidthLog log;
  const std::size_t epochs = epoch_count();
  log.reserve(epochs * pairs_.size());
  for (std::size_t e = 0; e < epochs; ++e) {
    const util::SimTime t = config_.start + static_cast<util::SimTime>(e) * config_.epoch;
    for (std::size_t p = 0; p < pairs_.size(); ++p) {
      log.append(t, pair_ids[p], demand_at(p, t));
    }
  }
  return log;
}

}  // namespace smn::telemetry
